"""Per-function control-flow graphs with await points and exception edges.

This is the flow-sensitive substrate under the ``asyncsafe`` rule
family (R006-R008).  :func:`build_cfg` turns one ``def`` / ``async
def`` into a statement-granularity graph:

- one :class:`CFGNode` per simple statement, branch test, loop head,
  ``with`` enter, except handler, or synthetic join (``entry``,
  ``exit``, ``error``, handler ``dispatch``, ``finally``,
  ``loop-exit``);
- ``NORMAL`` edges for sequential/branch flow, ``EXCEPTION`` edges
  from every statement to the innermost enclosing handler dispatch
  (or ``finally`` join, or the synthetic ``error`` exit when nothing
  encloses it);
- ``try``/``except``/``else``/``finally`` routed faithfully: the
  ``else`` body is *not* covered by the handlers, unmatched
  exceptions fall through the ``finally`` join outward, and abrupt
  exits (``return``/``break``/``continue``) thread through every
  enclosing ``finally`` before reaching their target;
- await points recorded per node.  A node *suspends* when it contains
  an ``await`` (or is an ``async for`` head / ``async with``
  enter/exit), or — interprocedurally — when it calls a coroutine
  defined in the same module (``await``-less coroutine calls spawned
  via ``create_task``/``ensure_future`` do not suspend the caller and
  are excluded).

Exception edges carry a ``can_cancel`` tag: true when the source node
suspends or raises.  A suspension point is where ``CancelledError``
can be delivered, so escape analyses (R007) follow only those edges;
reply-accounting (R008) follows every edge into a handler because any
statement may raise into it.

Dataflow runs over the graph with :func:`forward_dataflow`: a plain
union-join worklist fixpoint over ``frozenset`` states, which is all
the shipped rules need and terminates for any monotone transfer on a
finite value domain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

__all__ = [
    "CFG",
    "CFGEdge",
    "CFGNode",
    "EXCEPTION",
    "NORMAL",
    "build_cfg",
    "forward_dataflow",
    "iter_function_defs",
    "module_coroutine_names",
]

NORMAL = "normal"
EXCEPTION = "exception"

#: Wrappers that schedule a coroutine instead of suspending on it.
_SPAWN_WRAPPERS = frozenset({"create_task", "ensure_future"})

#: Context-manager name fragments treated as mutual-exclusion guards.
_GUARD_FRAGMENTS = ("lock", "mutex", "sem", "guard")


@dataclass(frozen=True)
class CFGEdge:
    """One directed edge; ``can_cancel`` marks cancellation delivery."""

    src: int
    dst: int
    kind: str
    can_cancel: bool = False


@dataclass
class CFGNode:
    """One CFG node: a statement (or synthetic join) plus its edges."""

    index: int
    kind: str
    stmt: ast.AST | None = None
    awaits: tuple[ast.AST, ...] = ()
    suspends: bool = False
    guarded: bool = False
    succ: list[CFGEdge] = field(default_factory=list)

    @property
    def line(self) -> int:
        """Source line of the underlying statement (0 for synthetics)."""
        return getattr(self.stmt, "lineno", 0)

    @property
    def col(self) -> int:
        """Source column of the underlying statement."""
        return getattr(self.stmt, "col_offset", 0)


@dataclass
class CFG:
    """The control-flow graph of one function."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: list[CFGNode]
    entry: int
    exit: int
    error: int

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def await_points(self) -> list[ast.AST]:
        """Every recorded ``await`` expression, in node-creation order."""
        points: list[ast.AST] = []
        for node in self.nodes:
            points.extend(node.awaits)
        return points

    def reachable_from(self, index: int) -> frozenset[int]:
        """Indices reachable from ``index`` following any edge."""
        seen = {index}
        stack = [index]
        while stack:
            for edge in self.nodes[stack.pop()].succ:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    stack.append(edge.dst)
        return frozenset(seen)

    def reaches_exit(self, index: int) -> bool:
        """Whether ``index`` can reach the normal or error exit."""
        reached = self.reachable_from(index)
        return self.exit in reached or self.error in reached


def iter_function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in ``tree``, outer before inner."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def module_coroutine_names(tree: ast.AST) -> frozenset[str]:
    """Bare names of every ``async def`` in the module.

    Used for the interprocedural half of suspension detection: a call
    to ``self._send`` counts as a suspension point when ``_send`` is a
    coroutine defined anywhere in the same module.
    """
    return frozenset(
        node.name for node in ast.walk(tree) if isinstance(node, ast.AsyncFunctionDef)
    )


def _dotted_name(expr: ast.AST) -> str:
    """``a.b.c`` for attribute chains rooted at a Name, else ``''``."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return ""


def _looks_like_guard(expr: ast.expr) -> bool:
    """Whether a context-manager expression names a lock-ish object."""
    target = expr.func if isinstance(expr, ast.Call) else expr
    chain = _dotted_name(target).lower()
    return any(fragment in chain for fragment in _GUARD_FRAGMENTS)


def _scan_suspensions(
    expr: ast.AST, coroutine_names: frozenset[str], awaits: list[ast.AST]
) -> bool:
    """Collect awaits under ``expr``; return whether it suspends.

    Suspension means an ``await`` or a direct call to a same-module
    coroutine, excluding coroutine calls wrapped in a task-spawning
    call (those hand the coroutine to the loop without yielding here).
    Does not descend into nested function definitions or lambdas.
    """
    suspends = False
    if isinstance(expr, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return False
    if isinstance(expr, ast.Await):
        awaits.append(expr)
        suspends = True
    if isinstance(expr, ast.Call):
        tail = _dotted_name(expr.func).rsplit(".", 1)[-1]
        if tail in coroutine_names:
            suspends = True
        if tail in _SPAWN_WRAPPERS:
            # The argument coroutine is scheduled, not awaited: ignore
            # its coroutine-call verdict, but a literal await inside
            # the arguments still suspends the caller.
            before = len(awaits)
            for child in ast.iter_child_nodes(expr):
                _scan_suspensions(child, coroutine_names, awaits)
            return suspends or len(awaits) > before
    for child in ast.iter_child_nodes(expr):
        if _scan_suspensions(child, coroutine_names, awaits):
            suspends = True
    return suspends


@dataclass
class _FinallyCtx:
    """An enclosing ``finally`` block under construction."""

    join: int
    continuations: set[int]


@dataclass
class _LoopCtx:
    """An enclosing loop: jump targets and the finally depth at entry."""

    head: int
    after: int
    finally_depth: int


#: A pending edge awaiting its destination: ``(src, kind, can_cancel)``.
_Frontier = list[tuple[int, str, bool]]


class _Builder:
    def __init__(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        coroutine_names: frozenset[str],
    ) -> None:
        self.func = func
        self.coroutine_names = coroutine_names
        self.nodes: list[CFGNode] = []
        self._guard_depth = 0
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.error = self._new("error")
        self._exc_stack: list[int] = [self.error]
        self._finally_stack: list[_FinallyCtx] = []
        self._loop_stack: list[_LoopCtx] = []

    def build(self) -> CFG:
        frontier = self._stmts(self.func.body, [(self.entry, NORMAL, False)])
        self._connect(frontier, self.exit)
        return CFG(
            func=self.func,
            nodes=self.nodes,
            entry=self.entry,
            exit=self.exit,
            error=self.error,
        )

    # ------------------------------------------------------------------
    def _new(
        self,
        kind: str,
        stmt: ast.AST | None = None,
        exprs: Sequence[ast.AST] | None = None,
        *,
        force_suspends: bool = False,
    ) -> int:
        awaits: list[ast.AST] = []
        suspends = force_suspends
        scan_roots: Sequence[ast.AST]
        if exprs is not None:
            scan_roots = exprs
        elif stmt is not None:
            scan_roots = list(ast.iter_child_nodes(stmt))
        else:
            scan_roots = ()
        for root in scan_roots:
            if _scan_suspensions(root, self.coroutine_names, awaits):
                suspends = True
        node = CFGNode(
            index=len(self.nodes),
            kind=kind,
            stmt=stmt,
            awaits=tuple(awaits),
            suspends=suspends,
            guarded=self._guard_depth > 0,
        )
        self.nodes.append(node)
        return node.index

    def _connect(self, frontier: _Frontier, dst: int) -> None:
        for src, kind, can_cancel in frontier:
            self.nodes[src].succ.append(CFGEdge(src, dst, kind, can_cancel))

    def _exc_edge(self, index: int) -> None:
        node = self.nodes[index]
        can_cancel = node.suspends or isinstance(node.stmt, ast.Raise)
        node.succ.append(
            CFGEdge(index, self._exc_stack[-1], EXCEPTION, can_cancel)
        )

    def _route_abrupt(self, dest: int, crossing: Sequence[_FinallyCtx]) -> int:
        """Thread an abrupt jump through enclosing finallys to ``dest``."""
        target = dest
        for ctx in crossing:  # outermost first; innermost runs first
            ctx.continuations.add(target)
            target = ctx.join
        return target

    # ------------------------------------------------------------------
    def _stmts(self, body: Sequence[ast.stmt], frontier: _Frontier) -> _Frontier:
        for stmt in body:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: _Frontier) -> _Frontier:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, frontier)
        if isinstance(stmt, (ast.Try, *_TRY_STAR)):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, frontier)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, frontier)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return self._jump(stmt, frontier)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # A nested definition is a plain binding at this level; its
            # body's awaits belong to the nested scope, not this CFG.
            index = self._new("stmt", stmt, exprs=())
            self._connect(frontier, index)
            self._exc_edge(index)
            return [(index, NORMAL, False)]
        index = self._new("stmt", stmt)
        self._connect(frontier, index)
        self._exc_edge(index)
        return [(index, NORMAL, False)]

    def _if(self, stmt: ast.If, frontier: _Frontier) -> _Frontier:
        index = self._new("branch", stmt, exprs=[stmt.test])
        self._connect(frontier, index)
        self._exc_edge(index)
        merged = self._stmts(stmt.body, [(index, NORMAL, False)])
        if stmt.orelse:
            merged = merged + self._stmts(stmt.orelse, [(index, NORMAL, False)])
        else:
            merged = merged + [(index, NORMAL, False)]
        return merged

    def _while(self, stmt: ast.While, frontier: _Frontier) -> _Frontier:
        index = self._new("loop", stmt, exprs=[stmt.test])
        after = self._new("loop-exit", stmt, exprs=())
        self._connect(frontier, index)
        self._exc_edge(index)
        self._loop_stack.append(
            _LoopCtx(head=index, after=after, finally_depth=len(self._finally_stack))
        )
        body = self._stmts(stmt.body, [(index, NORMAL, False)])
        self._connect(body, index)
        self._loop_stack.pop()
        const_true = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        falls: _Frontier = [] if const_true else [(index, NORMAL, False)]
        tail = self._stmts(stmt.orelse, falls) if stmt.orelse else falls
        self._connect(tail, after)
        return [(after, NORMAL, False)]

    def _for(self, stmt: ast.For | ast.AsyncFor, frontier: _Frontier) -> _Frontier:
        index = self._new(
            "loop", stmt, exprs=[stmt.iter],
            force_suspends=isinstance(stmt, ast.AsyncFor),
        )
        after = self._new("loop-exit", stmt, exprs=())
        self._connect(frontier, index)
        self._exc_edge(index)
        self._loop_stack.append(
            _LoopCtx(head=index, after=after, finally_depth=len(self._finally_stack))
        )
        body = self._stmts(stmt.body, [(index, NORMAL, False)])
        self._connect(body, index)
        self._loop_stack.pop()
        exhausted: _Frontier = [(index, NORMAL, False)]
        tail = self._stmts(stmt.orelse, exhausted) if stmt.orelse else exhausted
        self._connect(tail, after)
        return [(after, NORMAL, False)]

    def _with(self, stmt: ast.With | ast.AsyncWith, frontier: _Frontier) -> _Frontier:
        is_async = isinstance(stmt, ast.AsyncWith)
        index = self._new(
            "with", stmt,
            exprs=[item.context_expr for item in stmt.items],
            force_suspends=is_async,
        )
        self._connect(frontier, index)
        self._exc_edge(index)
        guarded = is_async and any(
            _looks_like_guard(item.context_expr) for item in stmt.items
        )
        if guarded:
            self._guard_depth += 1
        body = self._stmts(stmt.body, [(index, NORMAL, False)])
        if guarded:
            self._guard_depth -= 1
        if is_async:
            # __aexit__ is its own suspension (and cancellation) point.
            exit_index = self._new("with-exit", stmt, exprs=(), force_suspends=True)
            self._connect(body, exit_index)
            self._exc_edge(exit_index)
            body = [(exit_index, NORMAL, False)]
        return body

    def _match(self, stmt: ast.Match, frontier: _Frontier) -> _Frontier:
        index = self._new("branch", stmt, exprs=[stmt.subject])
        self._connect(frontier, index)
        self._exc_edge(index)
        merged: _Frontier = []
        exhaustive = False
        for case in stmt.cases:
            merged.extend(self._stmts(case.body, [(index, NORMAL, False)]))
            if (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                exhaustive = True
        if not exhaustive:
            merged.append((index, NORMAL, False))
        return merged

    def _return(self, stmt: ast.Return, frontier: _Frontier) -> _Frontier:
        index = self._new("stmt", stmt)
        self._connect(frontier, index)
        self._exc_edge(index)
        target = self._route_abrupt(self.exit, self._finally_stack)
        self.nodes[index].succ.append(CFGEdge(index, target, NORMAL, False))
        return []

    def _raise(self, stmt: ast.Raise, frontier: _Frontier) -> _Frontier:
        index = self._new("stmt", stmt)
        self._connect(frontier, index)
        self.nodes[index].succ.append(
            CFGEdge(index, self._exc_stack[-1], EXCEPTION, True)
        )
        return []

    def _jump(self, stmt: ast.Break | ast.Continue, frontier: _Frontier) -> _Frontier:
        index = self._new("stmt", stmt)
        self._connect(frontier, index)
        if self._loop_stack:
            loop = self._loop_stack[-1]
            dest = loop.after if isinstance(stmt, ast.Break) else loop.head
            crossing = self._finally_stack[loop.finally_depth:]
            target = self._route_abrupt(dest, crossing)
        else:  # break/continue outside a loop: syntactically invalid,
            # but keep the graph well-formed for partial inputs.
            target = self.error
        self.nodes[index].succ.append(CFGEdge(index, target, NORMAL, False))
        return []

    def _try(self, stmt: ast.Try, frontier: _Frontier) -> _Frontier:
        outer = self._exc_stack[-1]
        fin: _FinallyCtx | None = None
        if stmt.finalbody:
            join = self._new("finally", stmt, exprs=())
            fin = _FinallyCtx(join=join, continuations={outer})
        escape = fin.join if fin is not None else outer
        dispatch: int | None = None
        if stmt.handlers:
            dispatch = self._new("dispatch", stmt, exprs=())
        if fin is not None:
            self._finally_stack.append(fin)

        self._exc_stack.append(dispatch if dispatch is not None else escape)
        body = self._stmts(stmt.body, frontier)
        self._exc_stack.pop()

        # Handlers and the else body raise past this try, not into it.
        self._exc_stack.append(escape)
        handler_tails: _Frontier = []
        if dispatch is not None:
            for handler in stmt.handlers:
                hindex = self._new("handler", handler, exprs=())
                self.nodes[dispatch].succ.append(
                    CFGEdge(dispatch, hindex, NORMAL, False)
                )
                handler_tails.extend(
                    self._stmts(handler.body, [(hindex, NORMAL, False)])
                )
            # No handler matched: the exception keeps unwinding.
            self.nodes[dispatch].succ.append(
                CFGEdge(dispatch, escape, EXCEPTION, True)
            )
        tail = self._stmts(stmt.orelse, body) if stmt.orelse else body
        self._exc_stack.pop()

        merged = tail + handler_tails
        if fin is None:
            return merged
        self._finally_stack.pop()
        self._connect(merged, fin.join)
        final_tail = self._stmts(stmt.finalbody, [(fin.join, NORMAL, False)])
        for target in sorted(fin.continuations):
            self._connect(final_tail, target)
        return final_tail


_TRY_STAR: tuple[type, ...] = (
    (ast.TryStar,) if hasattr(ast, "TryStar") else ()
)


def build_cfg(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    coroutine_names: frozenset[str] = frozenset(),
) -> CFG:
    """The CFG of ``func``; see the module docstring for the shape."""
    return _Builder(func, coroutine_names).build()


def forward_dataflow(
    cfg: CFG,
    *,
    init: frozenset,
    transfer: Callable[[CFGNode, frozenset], tuple[frozenset, frozenset]],
    follow: Callable[[CFGEdge], bool] | None = None,
) -> dict[int, frozenset]:
    """Union-join forward fixpoint; returns the in-state per node.

    ``transfer(node, in_state)`` returns ``(normal_out, exc_out)`` —
    the states to push along ``NORMAL`` and ``EXCEPTION`` edges
    respectively.  ``follow`` filters edges (default: all).  States
    are ``frozenset``s joined by union, so any transfer over a finite
    domain terminates.
    """
    states: dict[int, frozenset] = {cfg.entry: init}
    work = [cfg.entry]
    while work:
        index = work.pop()
        node = cfg.nodes[index]
        normal_out, exc_out = transfer(node, states.get(index, frozenset()))
        for edge in node.succ:
            if follow is not None and not follow(edge):
                continue
            out = exc_out if edge.kind == EXCEPTION else normal_out
            current = states.get(edge.dst)
            joined = out if current is None else (current | out)
            if joined != current:
                states[edge.dst] = joined
                work.append(edge.dst)
    return states

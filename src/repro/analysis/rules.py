"""The repo-specific lint rules, one class per invariant.

Each rule guards an invariant the paper (and the PR history) showed to
be load-bearing.  Rules are pure AST visitors: no imports of the
checked code, no type inference — every check is decidable from the
source text alone, so ``repro lint`` is fast and has no false
"works on my machine" modes.

==== =====================================================================
Id   Invariant
==== =====================================================================
R001 validation must survive ``python -O`` (no ``assert`` in ``src/``)
R002 scheduling is deterministic (no wall clock, no unseeded RNG,
     no iteration over unordered sets)
R003 flows stay integral — Theorem 2 (no float literals/coercions
     touching ``flow``/``capacity``/``lower`` in flow arithmetic)
R004 module encapsulation (no cross-module ``_private`` reach-ins)
R005 asyncio hygiene in ``service/`` and ``wire/`` (no blocking calls /
     solver loops without a yield point inside ``async def``)
R006 no shared-state read-modify-write spanning an ``await``
     (flow-sensitive; see :mod:`repro.analysis.asyncsafe`)
R007 acquired resources release or hand off custody on every exit,
     including cancellation edges (see :mod:`repro.analysis.asyncsafe`)
R008 ``wire/server.py`` conforms to the request→reply state machine
     declared by ``wire/protocol.py`` (see
     :mod:`repro.analysis.asyncsafe`)
==== =====================================================================

R001–R005 are single-function syntactic visitors defined below;
R006–R008 are flow-sensitive and live in
:mod:`repro.analysis.asyncsafe`, built on the CFG/dataflow core in
:mod:`repro.analysis.cfg`.  The rule catalog with rationale and
examples lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.engine import Finding, ModuleContext

__all__ = [
    "Rule",
    "AssertIsNotValidation",
    "DeterministicScheduling",
    "IntegralFlows",
    "ModuleEncapsulation",
    "AsyncioHygiene",
    "default_rules",
]


class Rule:
    """Base class: a stable id, a scope predicate, and a checker."""

    id: str = "R999"
    title: str = ""

    def applies(self, modpath: str) -> bool:
        """Whether this rule runs on the module at ``modpath``."""
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``; must not mutate the context."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``."""
        return Finding(
            self.id, ctx.path,
            getattr(node, "lineno", 1), getattr(node, "col_offset", 0),
            message,
        )


class AssertIsNotValidation(Rule):
    """R001 — ``assert`` is stripped by ``python -O``; raise instead.

    PR 2's bug class: scheduler integrality checks written as asserts
    silently vanished under ``-O``, so the ``-O`` CI tier validated
    nothing.  Library code must use real raises with descriptive
    messages; tests (which never run under ``-O`` in this repo's CI
    tiers that matter) are out of scope because they live outside
    ``src/``.
    """

    id = "R001"
    title = "no bare assert for runtime validation"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx, node,
                    "bare assert is stripped under 'python -O'; raise a real "
                    "exception with a descriptive message instead",
                )


def _call_chain(node: ast.AST) -> str:
    """Dotted name of a call target (``np.random.default_rng``), or ''."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class DeterministicScheduling(Rule):
    """R002 — scheduling decisions must be reproducible from the seed.

    Every benchmark, differential test (warm vs cold), and chaos run
    relies on byte-identical reruns.  Flagged:

    - ``import random`` / ``from random import ...`` (global,
      unseedable-per-run state);
    - wall-clock reads: ``time.time()``, ``time.time_ns()``,
      ``datetime.now()/utcnow()/today()``, ``date.today()``;
    - numpy legacy global RNG (``np.random.rand`` etc.) and unseeded
      ``np.random.default_rng()``;
    - iteration over syntactically-certain unordered containers (set
      literals, set comprehensions, ``set(...)``/``frozenset(...)``
      calls) in ``for`` statements and comprehensions — hash order
      feeding a scheduling decision is a heisenbug factory.

    ``util/rng.py`` (the sanctioned seed funnel) and
    ``service/clock.py`` (the sanctioned clock) are exempt.
    """

    id = "R002"
    title = "deterministic scheduling (seeded RNG, no wall clock)"

    EXEMPT = ("util/rng.py", "service/clock.py")
    WALL_CLOCK = {
        "time.time", "time.time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today", "date.today",
    }

    def applies(self, modpath: str) -> bool:
        return modpath not in self.EXEMPT

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node,
                            "stdlib 'random' uses hidden global state; take a "
                            "seed and go through repro.util.rng.make_rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx, node,
                        "stdlib 'random' uses hidden global state; take a "
                        "seed and go through repro.util.rng.make_rng",
                    )
            elif isinstance(node, ast.Call):
                chain = _call_chain(node.func)
                if chain in self.WALL_CLOCK:
                    yield self.finding(
                        ctx, node,
                        f"wall-clock read '{chain}()' makes runs "
                        "unreproducible; thread the service Clock (or a "
                        "virtual tick) instead",
                    )
                elif chain.startswith(("np.random.", "numpy.random.")):
                    tail = chain.rsplit(".", 1)[1]
                    if tail == "default_rng" and not (node.args or node.keywords):
                        yield self.finding(
                            ctx, node,
                            "unseeded np.random.default_rng(); pass a seed or "
                            "use repro.util.rng.make_rng",
                        )
                    elif tail not in {"default_rng", "Generator", "SeedSequence"}:
                        yield self.finding(
                            ctx, node,
                            f"numpy legacy global RNG 'np.random.{tail}'; use "
                            "a seeded Generator from repro.util.rng",
                        )
            for iter_node in self._iteration_targets(node):
                if self._is_unordered(iter_node):
                    yield self.finding(
                        ctx, iter_node,
                        "iteration over an unordered set: hash order leaks "
                        "into scheduling decisions; sort it or keep a list",
                    )

    @staticmethod
    def _iteration_targets(node: ast.AST) -> Sequence[ast.expr]:
        if isinstance(node, ast.For):
            return [node.iter]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return [gen.iter for gen in node.generators]
        return ()

    @staticmethod
    def _is_unordered(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in {"set", "frozenset"}
        return False


class IntegralFlows(Rule):
    """R003 — Theorem 2 needs *exact* integer flows end to end.

    Max-flow = max-allocation only holds when augmentation is exact:
    one float rounding error and ``decompose_paths`` either invents or
    drops a circuit.  Within the flow-arithmetic modules (``flows/``,
    ``core/transform.py``, ``core/incremental.py``) this rule flags:

    - ``float`` annotations (or float-literal defaults) on the
      flow-carrying names ``flow`` / ``capacity`` / ``lower`` /
      ``target_flow`` / ``flow_limit``;
    - assignments (plain or augmented) to ``.flow`` / ``.capacity`` /
      ``.lower`` attributes whose right-hand side contains a float
      literal or a ``float(...)`` call;
    - ``float(...)`` coercion of any flow-carrying name or attribute;
    - flow-valued functions (name contains ``flow`` but not ``cost``)
      annotated ``-> float`` or returning a float literal — the bug
      class behind the PR-7 sweep: ``blocking_flow(...) -> float`` and
      ``return 0.0`` quietly re-floated values the arc fields kept
      integral.

    Cost arithmetic is deliberately out of scope: min-cost runs on
    float costs/potentials (the paper's ``w(e)``), and the LP modules
    (``flows/lp.py``, ``flows/multicommodity.py``) are a relaxation
    whose extraction step re-establishes integrality — they are exempt
    from the return-type checks.
    """

    id = "R003"
    title = "integral flow arithmetic (Theorem 2)"

    SCOPE_PREFIX = "flows/"
    SCOPE_FILES = {"core/transform.py", "core/incremental.py"}
    # The LP relaxation legitimately traffics in fractional flows.
    RELAXATION_FILES = {"flows/lp.py", "flows/multicommodity.py"}
    FLOW_ATTRS = {"flow", "capacity", "lower"}
    FLOW_NAMES = FLOW_ATTRS | {"target_flow", "flow_limit"}

    def applies(self, modpath: str) -> bool:
        return modpath.startswith(self.SCOPE_PREFIX) or modpath in self.SCOPE_FILES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            yield from self._check_annotations(ctx, node)
            if ctx.modpath not in self.RELAXATION_FILES:
                yield from self._check_flow_returns(ctx, node)
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if any(
                    isinstance(t, ast.Attribute) and t.attr in self.FLOW_ATTRS
                    for t in targets
                ) and self._has_float(node.value):
                    yield self.finding(
                        ctx, node,
                        "float value assigned to a flow-carrying attribute; "
                        "flows/capacities/lower bounds must stay int "
                        "(Theorem 2 integrality)",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
                and len(node.args) == 1
                and self._is_flow_name(node.args[0])
            ):
                yield self.finding(
                    ctx, node,
                    "float(...) coercion of a flow quantity; keep it int "
                    "(Theorem 2 integrality)",
                )

    def _check_annotations(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.AnnAssign):
            name = self._target_name(node.target)
            if name in self.FLOW_NAMES and self._annotates_float(node.annotation):
                yield self.finding(
                    ctx, node,
                    f"'{name}' annotated float; flow-carrying fields are int "
                    "(Theorem 2 integrality)",
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            a = node.args
            for arg in [*a.posonlyargs, *a.args, *a.kwonlyargs]:
                if arg.arg in self.FLOW_NAMES and self._annotates_float(arg.annotation):
                    yield Finding(
                        self.id, ctx.path, arg.lineno, arg.col_offset,
                        f"parameter '{arg.arg}' annotated float; flow "
                        "quantities are int (Theorem 2 integrality)",
                    )

    def _check_flow_returns(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Finding]:
        """Flag float leaks at the return boundary of flow functions.

        A function whose name mentions ``flow`` (and not ``cost``)
        computes a flow value; annotating it ``-> float`` or returning
        a float literal re-floats a quantity the arc fields keep
        integral, and the coercion survives every downstream ``==``
        check right up until a half unit appears.
        """
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        name = node.name.lower()
        if "flow" not in name or "cost" in name:
            return
        if self._annotates_float(node.returns):
            yield self.finding(
                ctx, node,
                f"flow-valued function '{node.name}' annotated '-> float'; "
                "flow values are int (Theorem 2 integrality)",
            )
        for sub in self._walk_own_body(node):
            if (
                isinstance(sub, ast.Return)
                and sub.value is not None
                and self._has_float(sub.value)
            ):
                yield self.finding(
                    ctx, sub,
                    f"float literal returned from flow-valued function "
                    f"'{node.name}'; return an int (Theorem 2 integrality)",
                )

    @staticmethod
    def _walk_own_body(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk ``fn`` without descending into nested function defs."""
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _target_name(target: ast.expr) -> str:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return ""

    @staticmethod
    def _annotates_float(ann: ast.expr | None) -> bool:
        """True when the annotation is or contains bare ``float``.

        ``float | None`` counts; ``int | float`` counts too — a flow
        field that *may* be float is one rounding away from fractional.
        """
        if ann is None:
            return False
        return any(
            isinstance(sub, ast.Name) and sub.id == "float"
            for sub in ast.walk(ann)
        )

    @classmethod
    def _has_float(cls, expr: ast.expr) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "float"
            ):
                return True
        return False

    @classmethod
    def _is_flow_name(cls, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in cls.FLOW_NAMES
        if isinstance(expr, ast.Attribute):
            return expr.attr in cls.FLOW_ATTRS
        return False


class ModuleEncapsulation(Rule):
    """R004 — ``_private`` state is module-private, not repo-private.

    The warm-start engine's O(E) sync scan assumes nothing outside
    :mod:`repro.flows.graph` / :mod:`repro.core.incremental` /
    :mod:`repro.core.model` mutates their internals behind their
    backs; a cross-module ``obj._attr`` reach-in is exactly such a
    back door (PR 3's leaked-lease bug rode one).  Accessing ``_x``
    on ``self``/``cls``, or on another instance *inside the module
    that owns the attribute* (Rust-style module privacy — e.g.
    ``copy()`` wiring up a sibling), is fine; everything else must go
    through a sanctioned public API.
    """

    id = "R004"
    title = "no cross-module private-attribute access"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_") or attr.startswith("__"):
                continue
            base = node.value
            if isinstance(base, ast.Name) and base.id in {"self", "cls"}:
                continue
            if attr in ctx.own_private_attrs:
                continue
            yield self.finding(
                ctx, node,
                f"cross-module access to private attribute '{attr}'; go "
                "through the owning class's public API (or add one)",
            )


class AsyncioHygiene(Rule):
    """R005 — the service event loop must never be silently starved.

    One blocked coroutine stalls *every* lease in flight.  Inside
    ``async def`` in ``service/``, ``wire/``, or ``fabric/`` (the TCP
    front-end runs on the same loop as the tick loop, and each fabric
    cell's loop carries every acquire in that cell) this rule flags:

    - known blocking calls (``time.sleep``, ``os.system``,
      ``subprocess.*``, ``socket.*``, ``urllib.request.*``);
    - a sync ``for``/``while`` loop that calls a solver entry point
      (``schedule``, ``dinic``, ``min_cost_flow``, ...) but contains
      no ``await`` / ``async for`` / ``async with`` — a batched solve
      per tick is by design, an unbounded solver loop between yield
      points is not.
    """

    id = "R005"
    title = "asyncio hygiene in service/, wire/, and fabric/"

    BLOCKING = {
        "time.sleep", "os.system", "os.wait", "input",
    }
    BLOCKING_PREFIXES = ("subprocess.", "socket.", "urllib.request.")
    SOLVER_NAMES = {
        "schedule", "schedule_incremental", "dinic", "edmonds_karp",
        "ford_fulkerson", "push_relabel", "min_cost_flow",
        "min_cost_circulation", "network_simplex", "greedy_schedule",
        "random_binding_schedule", "estimate_blocking",
        "simulate_queueing", "solve",
    }

    def applies(self, modpath: str) -> bool:
        return modpath.startswith(("service/", "wire/", "fabric/"))

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async(ctx, node)

    def _check_async(self, ctx: ModuleContext, fn: ast.AsyncFunctionDef) -> Iterator[Finding]:
        for node in self._walk_same_function(fn):
            if isinstance(node, ast.Call):
                chain = _call_chain(node.func)
                if chain in self.BLOCKING or chain.startswith(self.BLOCKING_PREFIXES):
                    yield self.finding(
                        ctx, node,
                        f"blocking call '{chain}' inside 'async def "
                        f"{fn.name}' starves the event loop; await the "
                        "async equivalent (e.g. clock.sleep)",
                    )
            elif isinstance(node, (ast.For, ast.While)):
                if self._solver_loop_without_yield(node):
                    yield self.finding(
                        ctx, node,
                        f"sync solver loop inside 'async def {fn.name}' has "
                        "no yield point; await between solves (one batched "
                        "solve per tick is the contract)",
                    )

    @classmethod
    def _walk_same_function(cls, fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Walk ``fn`` without descending into nested function defs."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))
        return

    @classmethod
    def _solver_loop_without_yield(cls, loop: ast.For | ast.While) -> bool:
        calls_solver = False
        for node in ast.walk(loop):
            if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
                return False
            if isinstance(node, ast.Call):
                chain = _call_chain(node.func)
                if chain.rsplit(".", 1)[-1] in cls.SOLVER_NAMES:
                    calls_solver = True
        return calls_solver


def default_rules() -> list[Rule]:
    """The shipped rule set, in id order."""
    # Imported here, not at module top: asyncsafe builds on the Rule
    # base class from this module, so a top-level import would cycle.
    from repro.analysis.asyncsafe import (
        AwaitInterleavingRaces,
        ResourceEscape,
        WireConformance,
    )

    return [
        AssertIsNotValidation(),
        DeterministicScheduling(),
        IntegralFlows(),
        ModuleEncapsulation(),
        AsyncioHygiene(),
        AwaitInterleavingRaces(),
        ResourceEscape(),
        WireConformance(),
    ]

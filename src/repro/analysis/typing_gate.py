"""The strict-typing gate: mypy configuration as checked-in data.

The ``py.typed`` marker in this package promises downstream users
that our annotations mean something.  This module makes that promise
auditable:

- :data:`STRICT_PACKAGES` — subpackages held to the strict flag set
  (:data:`STRICT_FLAGS`).  The flow/scheduling core is here because a
  type error in flow arithmetic is an integrality bug waiting to
  happen (Theorem 2), ``analysis`` is here because a linter that
  doesn't pass its own gate convinces nobody, and ``wire`` is here
  because new subsystems are strict from birth.
- :data:`PERMISSIVE_ALLOWLIST` — modules temporarily excused from
  strictness.  The list is frozen by
  ``tests/analysis/test_typing_gate.py`` against a recorded baseline:
  shrinking it is a normal PR, growing it fails the build.  New code
  is strict by birth.

``repro typecheck`` shells out to ``python -m mypy`` when it is
installed (CI installs it; the sandboxed dev container may not) and
reports a distinct exit code (:data:`EXIT_UNAVAILABLE`) otherwise, so
callers can tell "typing gate failed" from "typing gate could not
run".
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "EXIT_UNAVAILABLE",
    "PERMISSIVE_ALLOWLIST",
    "STRICT_FLAGS",
    "STRICT_PACKAGES",
    "TypecheckResult",
    "mypy_available",
    "mypy_command",
    "run_typecheck",
]

#: Exit code for "mypy is not installed here" (distinct from pass=0 / fail=1).
EXIT_UNAVAILABLE = 3

#: Subpackages (relative to ``repro``) checked with :data:`STRICT_FLAGS`.
#: ``service`` and ``faults`` joined when the async-safety analyzer
#: (R006–R008) made them the most invariant-dense code in the tree.
STRICT_PACKAGES: tuple[str, ...] = (
    "flows", "core", "analysis", "wire", "service", "faults", "fabric",
)

#: The strict flag set.  A curated subset of ``--strict``: everything
#: that catches real defects in annotated code, minus the flags that
#: only generate churn on numpy-facing signatures (tracked in
#: ``docs/static-analysis.md``).
STRICT_FLAGS: tuple[str, ...] = (
    "--disallow-untyped-defs",
    "--disallow-incomplete-defs",
    "--check-untyped-defs",
    "--no-implicit-optional",
    "--warn-redundant-casts",
    "--warn-unused-ignores",
    "--warn-unreachable",
)

#: Modules excused from the strict gate, as dotted paths under
#: ``repro``.  MUST ONLY SHRINK — the baseline test fails on growth.
#: Each entry names why it is here; delete the entry when the module
#: is brought up to strictness.
PERMISSIVE_ALLOWLIST: tuple[str, ...] = (
    # Legacy surface predating the gate; argparse Namespace plumbing.
    "cli",
    # Token-architecture simulator: large untyped state machines.
    "distributed.elements",
    "distributed.logic",
    "distributed.machine",
    "distributed.monitor",
    "distributed.simulator",
    # numpy-sampling heavy; Generator unions not yet threaded through.
    "sim.blocking",
    "sim.queueing",
    "sim.runner",
    "sim.workload",
    # ASCII renderer: cosmetic, low type density.
    "networks.render",
)


@dataclass(frozen=True)
class TypecheckResult:
    """Outcome of one ``run_typecheck`` invocation."""

    exit_code: int
    output: str
    command: tuple[str, ...]

    @property
    def available(self) -> bool:
        """False when mypy was not installed in this environment."""
        return self.exit_code != EXIT_UNAVAILABLE


def package_root() -> Path:
    """Filesystem root of the ``repro`` package being checked."""
    return Path(__file__).resolve().parent.parent


def mypy_available() -> bool:
    """Whether ``python -m mypy`` can run in this environment."""
    try:
        import mypy  # noqa: F401  (probe only)
    except ImportError:
        return shutil.which("mypy") is not None
    return True


def mypy_command(strict_only: bool = True) -> tuple[str, ...]:
    """The mypy invocation for the gate (exposed for CI and tests).

    With ``strict_only`` (the default, and what CI runs) only
    :data:`STRICT_PACKAGES` are checked, with :data:`STRICT_FLAGS`.
    Otherwise the whole package is checked permissively — useful for
    chipping away at :data:`PERMISSIVE_ALLOWLIST`.
    """
    root = package_root()
    base = (
        sys.executable, "-m", "mypy",
        "--ignore-missing-imports",  # numpy stubs may be absent in CI
        "--no-error-summary",
    )
    if strict_only:
        targets = tuple(str(root / pkg) for pkg in STRICT_PACKAGES)
        return base + STRICT_FLAGS + targets
    return base + (str(root),)


def run_typecheck(strict_only: bool = True) -> TypecheckResult:
    """Run the typing gate; never raises on a missing toolchain."""
    cmd = mypy_command(strict_only=strict_only)
    if not mypy_available():
        return TypecheckResult(
            EXIT_UNAVAILABLE,
            "mypy is not installed in this environment; the typing gate "
            "runs in CI (pip install mypy to run it locally)",
            cmd,
        )
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    output = (proc.stdout or "") + (proc.stderr or "")
    return TypecheckResult(proc.returncode, output.strip(), cmd)

"""The lint engine: file walking, AST parsing, suppressions, reporting.

The engine is deliberately small: it turns every ``.py`` file under
the given paths into a :class:`ModuleContext` (source + parsed AST +
package-relative module path), hands the context to each registered
:class:`~repro.analysis.rules.Rule`, and reconciles the raw findings
against inline suppressions.

Suppression grammar
-------------------
A finding on line ``L`` is suppressed by a trailing comment on that
line of the form::

    x = risky()  # repro: noqa R003 -- LP relaxation is cost-side float math

The justification after ``--`` is **mandatory**: a suppression without
one, naming an unknown rule id, or matching no finding at all is
itself reported under the meta rule :data:`META_RULE` (``R000``), so
the suppression inventory can only shrink and never rots.  This is the
policy half of the ROADMAP's "invariants enforced at lint time" goal:
opting out of an invariant is possible, but it must say *why*, in the
diff, where review sees it.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintEngine",
    "LintError",
    "LintReport",
    "META_RULE",
    "ModuleContext",
    "Suppression",
]

#: Meta rule id for malformed / unused suppressions and parse errors.
META_RULE = "R000"

#: Suppression grammar: the noqa marker, a rule-id list, then a
#: mandatory ``--``-separated justification (see the module docstring).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b"
    r"(?P<rules>(?:[ \t,]+R\d{3})*)"
    r"[ \t]*(?:--[ \t]*(?P<why>.*?))?[ \t]*$"
)


class LintError(Exception):
    """A path handed to the engine could not be linted at all."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a precise source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``file:line:col: RXXX message`` — clickable in most shells."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form (stable keys, used by ``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa`` comment."""

    path: str
    line: int
    rules: tuple[str, ...]
    justification: str


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: str
    #: Path relative to the ``repro`` package root (``flows/graph.py``),
    #: or the plain filename when the file lives outside the package.
    modpath: str
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)

    #: Single-underscore attributes assigned on ``self`` anywhere in
    #: this module.  Module-private access (a class touching its own
    #: internals, even through another instance) is sanctioned; rules
    #: use this to distinguish it from cross-module reach-ins.
    own_private_attrs: frozenset[str] = frozenset()


@dataclass
class LintReport:
    """The outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any unsuppressed finding remains."""
        return 1 if self.findings else 0

    def stats(self) -> dict[str, object]:
        """Rule hit counts (active + suppressed) and suppression totals."""
        by_rule: dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        suppressed_by_rule: dict[str, int] = {}
        for f, _s in self.suppressed:
            suppressed_by_rule[f.rule] = suppressed_by_rule.get(f.rule, 0) + 1
        return {
            "files_checked": self.files_checked,
            "findings": len(self.findings),
            "by_rule": dict(sorted(by_rule.items())),
            "suppressed": len(self.suppressed),
            "suppressed_by_rule": dict(sorted(suppressed_by_rule.items())),
            "suppression_comments": len(self.suppressions),
        }

    def to_json(self) -> str:
        """The full report as a JSON document (``--format json``)."""
        return json.dumps(
            {
                "findings": [f.to_json() for f in self.findings],
                "stats": self.stats(),
            },
            indent=2,
            sort_keys=True,
        )


def _module_path(path: Path) -> str:
    """``path`` relative to the ``repro`` package root, ``/``-joined.

    Rules scope themselves by subpackage (``flows/``, ``service/``);
    anchoring at the last ``repro`` path component makes that work for
    both ``src/repro/...`` checkouts and installed trees.
    """
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i + 1:])
    return path.name


def _own_private_attrs(tree: ast.AST) -> frozenset[str]:
    """Single-underscore attributes this module assigns on ``self``."""
    found: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr.startswith("_")
            and not node.attr.startswith("__")
            and isinstance(node.ctx, ast.Store)
        ):
            found.add(node.attr)
    return frozenset(found)


def _comment_tokens(source: str) -> Iterator[tuple[int, int, str]]:
    """``(line, col, text)`` for every real comment in ``source``.

    Tokenised rather than regex-matched so that docstrings and string
    literals *mentioning* the suppression syntax (this module has a
    few) are never mistaken for suppressions.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return


def parse_suppressions(path: str, source: str, known_rules: Iterable[str]) -> tuple[list[Suppression], list[Finding]]:
    """Extract ``# repro: noqa`` comments; malformed ones become findings.

    Returns ``(valid_suppressions, meta_findings)``.  A suppression is
    valid only when it names at least one known rule id **and**
    carries a nonempty justification after ``--``.
    """
    known = set(known_rules)
    suppressions: list[Suppression] = []
    meta: list[Finding] = []
    for lineno, col, text in _comment_tokens(source):
        if "repro:" not in text or "noqa" not in text:
            continue
        m = _NOQA_RE.search(text)
        if m is None:
            meta.append(Finding(
                META_RULE, path, lineno, col,
                "unparseable suppression; use '# repro: noqa RXXX -- justification'",
            ))
            continue
        rules = tuple(re.findall(r"R\d{3}", m.group("rules") or ""))
        why = (m.group("why") or "").strip()
        if not rules:
            meta.append(Finding(
                META_RULE, path, lineno, col,
                "suppression names no rule id; spell out which RXXX it silences",
            ))
            continue
        unknown = [r for r in rules if r not in known]
        if unknown:
            meta.append(Finding(
                META_RULE, path, lineno, col,
                f"suppression names unknown rule(s) {', '.join(unknown)}",
            ))
            continue
        if not why:
            meta.append(Finding(
                META_RULE, path, lineno, col,
                "suppression without justification; append '-- <why this is safe>'",
            ))
            continue
        suppressions.append(Suppression(path, lineno, rules, why))
    return suppressions, meta


def changed_files(paths: Sequence[str | Path]) -> list[Path]:
    """``.py`` files under ``paths`` that differ from git HEAD.

    The union of staged, unstaged, and untracked changes — the set a
    pre-commit hook cares about.  Files deleted from the worktree are
    skipped.  Raises :class:`LintError` when git is unavailable or the
    working directory is not inside a repository, so callers fail loud
    rather than silently linting nothing.
    """
    import subprocess

    def git(*argv: str) -> str:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True, check=False
            )
        except OSError as exc:
            raise LintError(f"git unavailable: {exc}") from exc
        if proc.returncode != 0:
            raise LintError(
                f"git {' '.join(argv)} failed: {proc.stderr.strip()}"
            )
        return proc.stdout

    toplevel = Path(git("rev-parse", "--show-toplevel").strip())
    names: set[str] = set()
    for out in (
        git("diff", "--name-only", "HEAD"),
        git("ls-files", "--others", "--exclude-standard"),
    ):
        names.update(line.strip() for line in out.splitlines() if line.strip())
    roots = [Path(p).resolve() for p in paths]
    selected: list[Path] = []
    for name in sorted(names):
        candidate = toplevel / name
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        resolved = candidate.resolve()
        if any(
            resolved == root or root in resolved.parents for root in roots
        ):
            selected.append(candidate)
    return selected


class LintEngine:
    """Run a set of rules over files and reconcile suppressions."""

    def __init__(self, rules: Sequence["object"] | None = None) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules = list(rules)

    def rule_ids(self) -> list[str]:
        """Ids of the registered rules (stable order)."""
        return [r.id for r in self.rules]

    def known_rule_ids(self) -> set[str]:
        """Rule ids suppressions may legitimately name.

        The union of this engine's rules and the shipped catalog: a
        rule-scoped run (``--select``, or a single-rule engine in a
        test) must not report a valid suppression for an unselected
        shipped rule as "unknown".
        """
        from repro.analysis.rules import default_rules

        return set(self.rule_ids()) | {r.id for r in default_rules()}

    # ------------------------------------------------------------------
    def iter_files(self, paths: Sequence[str | Path]) -> Iterator[Path]:
        """All ``.py`` files under ``paths``, sorted for determinism."""
        seen: set[Path] = set()
        for p in paths:
            root = Path(p)
            if root.is_dir():
                candidates: Iterable[Path] = sorted(root.rglob("*.py"))
            elif root.is_file():
                candidates = [root]
            else:
                raise LintError(f"no such file or directory: {root}")
            for c in candidates:
                rc = c.resolve()
                if rc not in seen:
                    seen.add(rc)
                    yield c

    def lint_file(self, path: Path) -> tuple[list[Finding], list[Suppression], list[Finding]]:
        """Lint one file: ``(raw_findings, suppressions, meta_findings)``."""
        rel = str(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            return (
                [Finding(META_RULE, rel, exc.lineno or 1, exc.offset or 0,
                         f"syntax error: {exc.msg}")],
                [],
                [],
            )
        lines = source.splitlines()
        ctx = ModuleContext(
            path=rel,
            modpath=_module_path(path),
            source=source,
            tree=tree,
            lines=lines,
            own_private_attrs=_own_private_attrs(tree),
        )
        findings: list[Finding] = []
        for rule in self.rules:
            if rule.applies(ctx.modpath):
                findings.extend(rule.check(ctx))
        suppressions, meta = parse_suppressions(rel, source, self.known_rule_ids())
        return findings, suppressions, meta

    def run(self, paths: Sequence[str | Path]) -> LintReport:
        """Lint every file under ``paths`` and return the report."""
        report = LintReport()
        for path in self.iter_files(paths):
            findings, suppressions, meta = self.lint_file(path)
            report.files_checked += 1
            report.suppressions.extend(suppressions)
            used: set[tuple[int, tuple[str, ...]]] = set()
            by_line: dict[int, list[Suppression]] = {}
            for s in suppressions:
                by_line.setdefault(s.line, []).append(s)
            for f in sorted(findings, key=lambda f: (f.line, f.col, f.rule)):
                hit = next(
                    (s for s in by_line.get(f.line, ()) if f.rule in s.rules),
                    None,
                )
                if hit is not None:
                    report.suppressed.append((f, hit))
                    used.add((hit.line, hit.rules))
                else:
                    report.findings.append(f)
            # Unused suppressions rot: they claim an invariant is being
            # waived on a line that no longer violates it.  Judged only
            # when every rule the suppression names actually ran — a
            # rule-scoped run cannot tell whether an unselected rule
            # still fires on that line.
            active = set(self.rule_ids())
            for s in suppressions:
                if not set(s.rules) <= active:
                    continue
                if (s.line, s.rules) not in used:
                    report.findings.append(Finding(
                        META_RULE, s.path, s.line, 0,
                        f"unused suppression for {', '.join(s.rules)}; "
                        "remove it (nothing on this line violates the rule)",
                    ))
            report.findings.extend(meta)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report

"""Flow-sensitive async-safety rules: R006, R007, R008.

These rules run on the CFGs from :mod:`repro.analysis.cfg` and guard
the bug classes PRs 2-6 fixed by hand in the service/wire stack:

==== =================================================================
Id   Invariant
==== =================================================================
R006 no read-modify-write on shared mutable state (``self.*`` or
     module globals) spanning an ``await`` without re-reading or a
     lock guard — the canonical asyncio data race
R007 every path that acquires a tracked resource (a lease grant)
     releases it or hands off custody on **all** exits, including
     exception and cancellation edges; wrapping an acquire in
     ``asyncio.wait_for`` (which strands late grants — the PR-6
     late-LEASE leak) is flagged outright
R008 ``wire/server.py`` conforms to the request→reply state machine
     declared in ``wire/protocol.py``: every request kind dispatched,
     every handler path sends exactly one correlated reply, no reply
     kind a request cannot receive, pushes only from push-capable
     kinds
==== =================================================================

Conservatism is asymmetric by design.  R007 treats passing a held
name as a call argument, storing it into an attribute/subscript,
returning it, or calling ``.release()``/``.close()`` on it as a
custody handoff — so a helper that merely *inspects* the lease will
mask a leak (a false negative), but the rule never cries wolf about
the repo's sanctioned custody patterns.  R006 only reports writes
whose right-hand side provably uses a value read before a suspension
point.  All three anchor findings at real statements so the standard
``# repro: noqa RXXX -- why`` machinery applies unchanged.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.analysis.cfg import (
    CFG,
    CFGNode,
    EXCEPTION,
    build_cfg,
    forward_dataflow,
    iter_function_defs,
    module_coroutine_names,
)
from repro.analysis.engine import Finding, ModuleContext
from repro.analysis.rules import Rule

__all__ = [
    "AwaitInterleavingRaces",
    "ResourceEscape",
    "WireConformance",
]

#: Modules whose coroutines mutate shared service state.
ASYNC_SCOPE = ("service/", "wire/", "faults/", "fabric/")


def _module_globals(tree: ast.AST) -> frozenset[str]:
    """Names assigned at module level (the shared-global universe)."""
    if not isinstance(tree, ast.Module):
        return frozenset()
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return frozenset(names)


def _shared_reads(expr: ast.AST, globals_: frozenset[str]) -> frozenset[str]:
    """Shared locations (``self.x`` / module globals) read under ``expr``."""
    reads: set[str] = set()
    for sub in ast.walk(expr):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
            and isinstance(sub.ctx, ast.Load)
        ):
            reads.add(f"self.{sub.attr}")
        elif (
            isinstance(sub, ast.Name)
            and sub.id in globals_
            and isinstance(sub.ctx, ast.Load)
        ):
            reads.add(f"global {sub.id}")
    return frozenset(reads)


def _written_shared_locs(target: ast.expr, globals_: frozenset[str]) -> frozenset[str]:
    """Shared locations a store target writes (``self.x``, ``self.x[k]``)."""
    if isinstance(target, ast.Name):
        if target.id in globals_:
            return frozenset({f"global {target.id}"})
        return frozenset()
    node: ast.expr = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return frozenset({f"self.{node.attr}"})
        node = node.value
    return frozenset()


def _name_loads(expr: ast.AST) -> frozenset[str]:
    """Plain names read under ``expr``."""
    return frozenset(
        sub.id
        for sub in ast.walk(expr)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    )


def _contains_await(expr: ast.AST) -> bool:
    return any(isinstance(sub, ast.Await) for sub in ast.walk(expr))


def _analysis_roots(node: CFGNode) -> tuple[ast.AST, ...]:
    """The AST roots this node actually evaluates.

    Compound statements (``if``/``while``/``for``/``with``/``match``)
    appear in the CFG as header nodes whose ``stmt`` is the full
    compound AST; walking that would double-count body statements,
    which belong to their own nodes.  Header nodes evaluate only their
    condition/iterable/context expressions.
    """
    stmt = node.stmt
    if stmt is None:
        return ()
    if node.kind == "stmt":
        return (stmt,)
    if node.kind == "branch":
        if isinstance(stmt, ast.If):
            return (stmt.test,)
        if isinstance(stmt, ast.Match):
            return (stmt.subject,)
    if node.kind == "loop":
        if isinstance(stmt, ast.While):
            return (stmt.test,)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return (stmt.iter,)
    if node.kind == "with" and isinstance(stmt, (ast.With, ast.AsyncWith)):
        return tuple(item.context_expr for item in stmt.items)
    return ()


def _assign_parts(
    stmt: ast.AST,
) -> tuple[list[ast.expr], ast.expr | None]:
    """``(store_targets, value)`` for assignment-like statements."""
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets), stmt.value
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.target], stmt.value
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target], stmt.value
    return [], None


def _target_names(targets: Sequence[ast.expr]) -> list[str]:
    """Plain local names bound by assignment targets (incl. tuples)."""
    names: list[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                elt.id for elt in target.elts if isinstance(elt, ast.Name)
            )
    return names


class AwaitInterleavingRaces(Rule):
    """R006 — shared-state read-modify-write must not span an await.

    While a coroutine is suspended, any other task on the loop may
    mutate ``self.*`` or module globals; writing back a value derived
    from a pre-suspension read silently undoes the interleaved update
    (the lost-update race the asyncio docs warn about).  The dataflow
    taints every local with the shared locations it was derived from,
    marks the taint *stale* at each suspension point — an ``await``,
    an ``async for``/``async with`` boundary, or (interprocedurally) a
    direct call to a same-module coroutine — and reports a write to a
    shared location whose right-hand side uses a local stale-derived
    from that same location.  Suspension points inside an ``async
    with`` over a lock-ish context manager do not mark taint stale:
    the region is mutually exclusive, which is the sanctioned guard.
    Re-reading the location after the last ``await`` is the other
    sanctioned fix and clears the taint naturally.
    """

    id = "R006"
    title = "await-interleaving race on shared state"

    def applies(self, modpath: str) -> bool:
        return modpath.startswith(ASYNC_SCOPE)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        globals_ = _module_globals(ctx.tree)
        coroutines = module_coroutine_names(ctx.tree)
        for fn in iter_function_defs(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            cfg = build_cfg(fn, coroutine_names=coroutines)
            yield from self._check_function(ctx, cfg, globals_)

    # ------------------------------------------------------------------
    def _check_function(
        self, ctx: ModuleContext, cfg: CFG, globals_: frozenset[str]
    ) -> Iterator[Finding]:
        def transfer(
            node: CFGNode, state: frozenset
        ) -> tuple[frozenset, frozenset]:
            out: set[tuple[str, str, bool]] = set(state)
            stmt = node.stmt
            targets, value = _assign_parts(stmt) if stmt is not None else ([], None)
            if value is not None and not isinstance(stmt, ast.AugAssign):
                names = _target_names(targets)
                if names:
                    bound = frozenset(names)
                    reads = _shared_reads(value, globals_)
                    out = {e for e in out if e[0] not in bound}
                    for name in names:
                        for loc in sorted(reads):
                            out.add((name, loc, False))
            elif (
                node.kind == "loop"
                and isinstance(stmt, (ast.For, ast.AsyncFor))
            ):
                names = _target_names([stmt.target])
                if names:
                    bound = frozenset(names)
                    reads = _shared_reads(stmt.iter, globals_)
                    out = {e for e in out if e[0] not in bound}
                    for name in names:
                        for loc in sorted(reads):
                            out.add((name, loc, False))
            if node.suspends and not node.guarded:
                out = {(var, loc, True) for (var, loc, _stale) in out}
            result = frozenset(out)
            return result, result

        states = forward_dataflow(cfg, init=frozenset(), transfer=transfer)
        for node in cfg.nodes:
            stmt = node.stmt
            if node.index not in states or stmt is None:
                continue
            targets, value = _assign_parts(stmt)
            if value is None:
                continue
            written: set[str] = set()
            for target in targets:
                written |= _written_shared_locs(target, globals_)
            if not written:
                continue
            in_state = states[node.index]
            value_names = _name_loads(value)
            value_reads = _shared_reads(value, globals_)
            spans_await = _contains_await(value)
            for loc in sorted(written):
                stale = sorted(
                    var
                    for (var, derived_loc, is_stale) in in_state
                    if is_stale and derived_loc == loc and var in value_names
                )
                if stale:
                    yield self.finding(
                        ctx, stmt,
                        f"'{loc}' is rewritten using '{stale[0]}', which was "
                        "read before an await; another task may have updated "
                        "it while this coroutine was suspended — re-read it "
                        "after resuming or guard the region with a lock",
                    )
                elif spans_await and (
                    loc in value_reads or isinstance(stmt, ast.AugAssign)
                ):
                    yield self.finding(
                        ctx, stmt,
                        f"read-modify-write of '{loc}' spans an await in one "
                        "statement: the old value is read before the "
                        "suspension and written back after it; split the "
                        "statement and re-read, or guard with a lock",
                    )


class ResourceEscape(Rule):
    """R007 — acquired resources must be released or handed off on
    every exit, including cancellation edges.

    The static generalisation of the leak bugs fixed by hand in PRs 2,
    5 and 6: a lease acquired into a local is *held*; custody ends
    when the local is passed to any call, stored into an attribute or
    subscript, returned, or has ``.release()``/``.close()`` called on
    it.  A held local reaching the function's normal exit leaks; a
    suspension point (where ``CancelledError`` is delivered) or a
    ``raise`` whose exception edge escapes the function while a local
    is held leaks under cancellation — the PR-2 cancelled-acquire
    shape.  The acquiring statement's own exception edge is exempt:
    the service guarantees a failed or cancelled ``acquire`` grants
    nothing (that is precisely PR 2's server-side fix).

    ``asyncio.wait_for(<...>.acquire(...), t)`` is flagged outright:
    the timeout cancels the local waiter but the grant can still land
    (the PR-6 late-LEASE leak); pass ``timeout=`` to the acquire call
    so the granting side owns the deadline.
    """

    id = "R007"
    title = "resource custody must not escape"

    #: Call-name tails that produce a tracked resource.
    ACQUIRE_TAILS = frozenset({"acquire", "acquire_with_retry", "checkout"})
    #: Methods on the resource itself that end custody.
    RELEASE_METHODS = frozenset({"release", "close"})

    def applies(self, modpath: str) -> bool:
        return modpath.startswith(ASYNC_SCOPE)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        coroutines = module_coroutine_names(ctx.tree)
        for fn in iter_function_defs(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            yield from self._check_wait_for(ctx, fn)
            cfg = build_cfg(fn, coroutine_names=coroutines)
            yield from self._check_function(ctx, cfg)

    # ------------------------------------------------------------------
    def _acquire_call(self, expr: ast.AST) -> ast.Call | None:
        """The acquire-producing call under ``expr``, if any."""
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                tail = self._call_tail(sub)
                if tail in self.ACQUIRE_TAILS:
                    return sub
        return None

    @staticmethod
    def _call_tail(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return ""

    def _check_wait_for(
        self, ctx: ModuleContext, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for sub in ast.walk(fn):
            if (
                isinstance(sub, ast.Call)
                and self._call_tail(sub) == "wait_for"
                and sub.args
                and self._acquire_call(sub.args[0]) is not None
            ):
                yield self.finding(
                    ctx, sub,
                    "asyncio.wait_for around an acquire: the timeout cancels "
                    "the local waiter but the grant can still land with no "
                    "holder (the PR-6 late-LEASE leak); pass timeout= to the "
                    "acquire call instead so the granting side owns the "
                    "deadline",
                )

    def _acquired_name(self, stmt: ast.AST | None) -> str | None:
        """Local bound to a fresh acquire by this statement, if any."""
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return None
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return None
        if self._acquire_call(stmt.value) is None:
            return None
        return target.id

    def _custody_sinks(self, stmt: ast.AST) -> frozenset[str]:
        """Local names whose custody this statement hands off."""
        sinks: set[str] = set()
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                for arg in sub.args:
                    if isinstance(arg, ast.Name):
                        sinks.add(arg.id)
                    elif isinstance(arg, ast.Starred) and isinstance(
                        arg.value, ast.Name
                    ):
                        sinks.add(arg.value.id)
                for keyword in sub.keywords:
                    if isinstance(keyword.value, ast.Name):
                        sinks.add(keyword.value.id)
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in self.RELEASE_METHODS
                    and isinstance(sub.func.value, ast.Name)
                ):
                    sinks.add(sub.func.value.id)
            elif isinstance(sub, ast.Assign):
                stored = any(
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    for target in sub.targets
                )
                if stored:
                    sinks |= _name_loads(sub.value)
            elif isinstance(sub, ast.Return) and sub.value is not None:
                sinks |= _name_loads(sub.value)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value is not None:
                sinks |= _name_loads(sub.value)
        return frozenset(sinks)

    def _check_function(self, ctx: ModuleContext, cfg: CFG) -> Iterator[Finding]:
        acquires = [
            node for node in cfg.nodes if self._acquired_name(node.stmt) is not None
        ]
        if not acquires:
            return

        def transfer(
            node: CFGNode, state: frozenset
        ) -> tuple[frozenset, frozenset]:
            roots = _analysis_roots(node)
            if not roots:
                return state, state
            sinks: frozenset[str] = frozenset()
            for root in roots:
                sinks |= self._custody_sinks(root)
            base = state - sinks
            acquired = self._acquired_name(node.stmt)
            if acquired is not None:
                # The acquiring await's own exception edge grants
                # nothing (PR 2's service-side guarantee): exc out is
                # the pre-acquisition state.
                return base | {acquired}, state
            return base, base

        def follow(edge: object) -> bool:
            kind = getattr(edge, "kind", "")
            can_cancel = getattr(edge, "can_cancel", False)
            return kind != EXCEPTION or bool(can_cancel)

        states = forward_dataflow(
            cfg, init=frozenset(), transfer=transfer, follow=follow
        )
        seen: set[tuple[int, str, str]] = set()
        for node in cfg.nodes:
            if node.index not in states:
                continue
            normal_out, exc_out = transfer(node, states[node.index])
            for edge in node.succ:
                if not follow(edge):
                    continue
                out = exc_out if edge.kind == EXCEPTION else normal_out
                if edge.dst == cfg.exit:
                    held, flavour = out, "leaves"
                elif edge.dst == cfg.error:
                    held, flavour = out, "escapes"
                else:
                    continue
                anchor = node.stmt if node.stmt is not None else cfg.func
                for var in sorted(held):
                    key = (
                        getattr(anchor, "lineno", 0),
                        var,
                        flavour,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    if flavour == "leaves":
                        yield self.finding(
                            ctx, anchor,
                            f"'{var}' still holds its resource on a path "
                            f"leaving '{cfg.func.name}'; release it or hand "
                            "off custody before every exit",
                        )
                    else:
                        yield self.finding(
                            ctx, anchor,
                            f"a cancellation or exception here escapes "
                            f"'{cfg.func.name}' while '{var}' still holds "
                            "its resource (the PR-2 cancelled-acquire leak "
                            "shape); release it in a finally or except "
                            "block",
                        )


class WireConformance(Rule):
    """R008 — the wire server must implement the protocol state machine.

    The request→reply state machine is *derived from the protocol
    module itself*: ``REQUEST_KINDS``, ``REPLY_SCHEMA`` (request kind
    → admissible correlated reply kinds), ``PUSH_KINDS`` (kinds the
    server may send unprompted under ``PUSH_ID``), and the
    ``make_*`` constructor → frame-kind map recovered from their
    ``return Frame("KIND", ...)`` bodies.  Checks, in order:

    - **exhaustiveness** — every request kind appears in a
      ``frame.kind == "KIND"`` dispatch comparison somewhere;
    - **admissible replies** — a handler bound to kind K (called from
      K's dispatch branch with the frame as a direct argument) may
      only send correlated replies in ``REPLY_SCHEMA[K]``; pushes
      (``make_*(PUSH_ID, ...)`` anywhere in the module) must use a
      kind in ``PUSH_KINDS``;
    - **exactly one correlated reply per path** — over each handler's
      CFG, every path that completes normally (including handled
      exceptions) sends exactly one correlated reply; paths that
      abort by raising are exempt (the connection teardown owns
      those).
    """

    id = "R008"
    title = "wire protocol conformance"

    SERVER_MODPATH = "wire/server.py"

    def applies(self, modpath: str) -> bool:
        return modpath == self.SERVER_MODPATH

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        schema = self._load_protocol(ctx)
        if isinstance(schema, Finding):
            yield schema
            return
        request_kinds, reply_schema, push_kinds, ctor_kinds = schema
        dispatch_fn, comparisons = self._find_dispatch(ctx.tree, request_kinds)
        if dispatch_fn is None:
            yield Finding(
                self.id, ctx.path, 1, 0,
                "no request dispatch found: expected frame.kind == "
                "\"<REQUEST_KIND>\" comparisons somewhere in this module",
            )
            return
        handled = frozenset(kind for kind, _fv, _body in comparisons)
        for kind in request_kinds:
            if kind not in handled:
                yield self.finding(
                    ctx, dispatch_fn,
                    f"request kind '{kind}' is never dispatched: every "
                    "kind in protocol.REQUEST_KINDS needs a handler branch",
                )
        coroutines = module_coroutine_names(ctx.tree)
        yield from self._check_push_sends(ctx, push_kinds, ctor_kinds)
        bindings, inline_findings = self._bind_handlers(
            ctx, comparisons, reply_schema, ctor_kinds
        )
        yield from inline_findings
        for handler_name, (kinds, frame_param) in sorted(bindings.items()):
            fn = self._find_function(ctx.tree, handler_name)
            if fn is None:
                continue
            allowed: set[str] = set()
            for kind in kinds:
                allowed |= set(reply_schema.get(kind, ()))
            cfg = build_cfg(fn, coroutine_names=coroutines)
            yield from self._check_handler(
                ctx, cfg, frame_param, frozenset(allowed),
                sorted(kinds), ctor_kinds,
            )

    # ------------------------------------------------------------------
    # Protocol extraction
    # ------------------------------------------------------------------
    def _load_protocol(
        self, ctx: ModuleContext
    ) -> (
        tuple[
            tuple[str, ...],
            Mapping[str, tuple[str, ...]],
            tuple[str, ...],
            Mapping[str, str],
        ]
        | Finding
    ):
        protocol_path = Path(ctx.path).parent / "protocol.py"
        try:
            source = protocol_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(protocol_path))
        except (OSError, SyntaxError):
            return Finding(
                self.id, ctx.path, 1, 0,
                "cannot derive the request→reply state machine: no "
                "parseable protocol.py next to this module",
            )
        constants = self._module_literals(tree)
        request_kinds = constants.get("REQUEST_KINDS")
        reply_schema = constants.get("REPLY_SCHEMA")
        push_kinds = constants.get("PUSH_KINDS")
        if not isinstance(request_kinds, tuple) or not isinstance(
            reply_schema, dict
        ):
            return Finding(
                self.id, ctx.path, 1, 0,
                "protocol.py must declare REQUEST_KINDS (tuple) and "
                "REPLY_SCHEMA (dict of request kind -> reply kinds) for "
                "conformance checking",
            )
        if not isinstance(push_kinds, tuple):
            push_kinds = ()
        ctor_kinds: dict[str, str] = {}
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not node.name.startswith("make_"):
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Return)
                    and isinstance(sub.value, ast.Call)
                    and isinstance(sub.value.func, ast.Name)
                    and sub.value.func.id == "Frame"
                    and sub.value.args
                    and isinstance(sub.value.args[0], ast.Constant)
                    and isinstance(sub.value.args[0].value, str)
                ):
                    ctor_kinds[node.name] = sub.value.args[0].value
        return request_kinds, reply_schema, push_kinds, ctor_kinds

    @staticmethod
    def _module_literals(tree: ast.Module) -> dict[str, object]:
        values: dict[str, object] = {}
        for stmt in tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            try:
                values[target.id] = ast.literal_eval(value)
            except (ValueError, SyntaxError):
                continue
        return values

    # ------------------------------------------------------------------
    # Dispatch discovery
    # ------------------------------------------------------------------
    @staticmethod
    def _kind_test(test: ast.expr, request_kinds: tuple[str, ...]) -> tuple[str, str] | None:
        """``(kind, frame_var)`` for a ``<var>.kind == "KIND"`` test."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.left, ast.Attribute)
            and test.left.attr == "kind"
            and isinstance(test.left.value, ast.Name)
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, str)
        ):
            return None
        kind = test.comparators[0].value
        if kind not in request_kinds:
            return None
        return kind, test.left.value.id

    def _find_dispatch(
        self, tree: ast.AST, request_kinds: tuple[str, ...]
    ) -> tuple[
        ast.FunctionDef | ast.AsyncFunctionDef | None,
        list[tuple[str, str, list[ast.stmt]]],
    ]:
        """The function holding the dispatch chain, plus its branches.

        Branches are ``(kind, frame_var, body)``; the dispatch function
        is the one containing the most request-kind comparisons.
        """
        best: ast.FunctionDef | ast.AsyncFunctionDef | None = None
        best_branches: list[tuple[str, str, list[ast.stmt]]] = []
        for fn in iter_function_defs(tree):
            branches: list[tuple[str, str, list[ast.stmt]]] = []
            for node in ast.walk(fn):
                if isinstance(node, ast.If):
                    match = self._kind_test(node.test, request_kinds)
                    if match is not None:
                        branches.append((match[0], match[1], node.body))
            if len(branches) > len(best_branches):
                best, best_branches = fn, branches
        return best, best_branches

    # ------------------------------------------------------------------
    # Branch and handler checks
    # ------------------------------------------------------------------
    def _correlated_sends(
        self,
        stmt: ast.AST,
        frame_var: str,
        ctor_kinds: Mapping[str, str],
    ) -> list[tuple[ast.Call, str]]:
        """``make_*`` calls correlated to ``frame_var.request_id``."""
        sends: list[tuple[ast.Call, str]] = []
        for sub in ast.walk(stmt):
            if not (isinstance(sub, ast.Call) and sub.args):
                continue
            name = self._ctor_name(sub)
            if name not in ctor_kinds:
                continue
            first = sub.args[0]
            if (
                isinstance(first, ast.Attribute)
                and first.attr == "request_id"
                and isinstance(first.value, ast.Name)
                and first.value.id == frame_var
            ):
                sends.append((sub, ctor_kinds[name]))
        return sends

    @staticmethod
    def _ctor_name(call: ast.Call) -> str:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return ""

    def _check_push_sends(
        self,
        ctx: ModuleContext,
        push_kinds: tuple[str, ...],
        ctor_kinds: Mapping[str, str],
    ) -> Iterator[Finding]:
        for sub in ast.walk(ctx.tree):
            if not (isinstance(sub, ast.Call) and sub.args):
                continue
            name = self._ctor_name(sub)
            if name not in ctor_kinds:
                continue
            first = sub.args[0]
            if isinstance(first, ast.Name) and first.id == "PUSH_ID":
                kind = ctor_kinds[name]
                if kind not in push_kinds:
                    yield self.finding(
                        ctx, sub,
                        f"'{kind}' frame sent under PUSH_ID, but only "
                        f"{list(push_kinds)} may be pushed unprompted",
                    )

    def _bind_handlers(
        self,
        ctx: ModuleContext,
        comparisons: list[tuple[str, str, list[ast.stmt]]],
        reply_schema: Mapping[str, tuple[str, ...]],
        ctor_kinds: Mapping[str, str],
    ) -> tuple[dict[str, tuple[set[str], str]], list[Finding]]:
        """Map handler name → (request kinds, frame param slot).

        Also validates inline branches (those that reply directly in
        the dispatch body instead of delegating): their sends must be
        admissible for the branch's kind, and a branch with neither a
        handler call nor a reply leaves the client hanging.  Returns
        the bindings plus any findings from those inline checks.
        """
        bindings: dict[str, tuple[set[str], str]] = {}
        inline_findings: list[Finding] = []
        for kind, frame_var, body in comparisons:
            bound_here = False
            sent_here = False
            for stmt in body:
                for sub in ast.walk(stmt):
                    if not isinstance(sub, ast.Call):
                        continue
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                        and any(
                            isinstance(arg, ast.Name) and arg.id == frame_var
                            for arg in sub.args
                        )
                    ):
                        index = next(
                            i
                            for i, arg in enumerate(sub.args)
                            if isinstance(arg, ast.Name) and arg.id == frame_var
                        )
                        kinds, param = bindings.setdefault(
                            func.attr, (set(), "")
                        )
                        kinds.add(kind)
                        bindings[func.attr] = (kinds, param or f"@{index}")
                        bound_here = True
                for call, reply_kind in self._correlated_sends(
                    stmt, frame_var, ctor_kinds
                ):
                    sent_here = True
                    if reply_kind not in reply_schema.get(kind, ()):
                        inline_findings.append(self.finding(
                            ctx, call,
                            f"'{reply_kind}' reply sent for a '{kind}' "
                            "request, which only admits "
                            f"{list(reply_schema.get(kind, ()))}",
                        ))
            if not bound_here and not sent_here:
                inline_findings.append(Finding(
                    self.id, ctx.path,
                    body[0].lineno if body else 1,
                    body[0].col_offset if body else 0,
                    f"dispatch branch for '{kind}' neither delegates to a "
                    "handler nor sends a reply; the client will hang",
                ))
        return bindings, inline_findings

    @staticmethod
    def _find_function(
        tree: ast.AST, name: str
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for fn in iter_function_defs(tree):
            if fn.name == name:
                return fn
        return None

    def _check_handler(
        self,
        ctx: ModuleContext,
        cfg: CFG,
        frame_param_slot: str,
        allowed: frozenset[str],
        kinds: list[str],
        ctor_kinds: Mapping[str, str],
    ) -> Iterator[Finding]:
        frame_var = self._resolve_frame_param(cfg.func, frame_param_slot)
        if frame_var is None:
            return

        def sends_in(node: CFGNode) -> list[tuple[ast.Call, str]]:
            sends: list[tuple[ast.Call, str]] = []
            for root in _analysis_roots(node):
                sends.extend(
                    self._correlated_sends(root, frame_var, ctor_kinds)
                )
            return sends

        # Admissible reply kinds, anywhere in the handler.
        for node in cfg.nodes:
            for call, reply_kind in sends_in(node):
                if reply_kind not in allowed:
                    yield self.finding(
                        ctx, call,
                        f"handler '{cfg.func.name}' sends '{reply_kind}' "
                        f"for request kind(s) {kinds}, which only admit "
                        f"{sorted(allowed)}",
                    )

        # Exactly one correlated reply per normally-completing path.
        def transfer(
            node: CFGNode, state: frozenset
        ) -> tuple[frozenset, frozenset]:
            count = len(sends_in(node))
            if count == 0:
                return state, state
            # The exception edge carries the pre-send state: a raise
            # mid-statement means the reply may not have gone out.
            normal = frozenset(min(c + count, 2) for c in state)
            return normal, state

        states = forward_dataflow(cfg, init=frozenset({0}), transfer=transfer)
        reported: set[int] = set()
        for node in cfg.nodes:
            if node.index not in states:
                continue
            in_state = states[node.index]
            if sends_in(node) and 1 in in_state and node.line not in reported:
                reported.add(node.line)
                yield self.finding(
                    ctx, node.stmt if node.stmt is not None else cfg.func,
                    f"handler '{cfg.func.name}' may send a second "
                    "correlated reply on this path; each request gets "
                    "exactly one reply",
                )
            normal_out, _exc = transfer(node, in_state)
            for edge in node.succ:
                if edge.dst != cfg.exit or edge.kind == EXCEPTION:
                    continue
                if 0 in normal_out and node.line not in reported:
                    reported.add(node.line)
                    anchor = node.stmt if node.stmt is not None else cfg.func
                    yield self.finding(
                        ctx, anchor,
                        f"this path completes '{cfg.func.name}' without "
                        "sending a correlated reply; the client will wait "
                        "forever",
                    )

    @staticmethod
    def _resolve_frame_param(
        fn: ast.FunctionDef | ast.AsyncFunctionDef, slot: str
    ) -> str | None:
        """Param name for the ``@<call-arg-index>`` slot recorded above."""
        if not slot.startswith("@"):
            return slot or None
        index = int(slot[1:])
        params = [arg.arg for arg in fn.args.args]
        if params and params[0] in {"self", "cls"}:
            index += 1
        if 0 <= index < len(params):
            return params[index]
        return None

"""Invariant-aware static analysis for the repro codebase.

The paper's correctness story is a set of *static* facts — flows are
integral (Theorem 2), scheduling is a deterministic function of the
seed, validation survives ``python -O`` — but until this subsystem
they were only enforced dynamically (property tests, a 2000-tick
chaos run).  ``repro.analysis`` moves enforcement to lint time:

- :mod:`repro.analysis.engine` — file walking, AST parsing, the
  ``# repro: noqa RXXX -- justification`` suppression protocol, text
  and JSON reporting;
- :mod:`repro.analysis.rules` — the syntactic rule catalog
  (R001–R005), one class per invariant;
- :mod:`repro.analysis.cfg` — per-function control-flow graphs with
  await points and exception edges, plus a forward-dataflow fixpoint
  solver, reusable by any flow-sensitive rule;
- :mod:`repro.analysis.asyncsafe` — the flow-sensitive async-safety
  rules (R006 await-interleaving races, R007 resource-custody escape
  analysis, R008 wire-protocol conformance);
- :mod:`repro.analysis.typing_gate` — the strict-mypy configuration
  (strict packages, permissive allowlist that may only shrink) and a
  gated runner for environments without mypy.

``python -m repro lint`` and ``python -m repro typecheck`` are the
CLI wrappers; ``docs/static-analysis.md`` is the human-facing rule
catalog and suppression policy.
"""

from repro.analysis.asyncsafe import (
    AwaitInterleavingRaces,
    ResourceEscape,
    WireConformance,
)
from repro.analysis.cfg import CFG, CFGEdge, CFGNode, build_cfg, forward_dataflow
from repro.analysis.engine import (
    Finding,
    LintEngine,
    LintError,
    LintReport,
    META_RULE,
    Suppression,
)
from repro.analysis.rules import Rule, default_rules
from repro.analysis.typing_gate import (
    EXIT_UNAVAILABLE,
    PERMISSIVE_ALLOWLIST,
    STRICT_PACKAGES,
    TypecheckResult,
    mypy_available,
    run_typecheck,
)

__all__ = [
    "AwaitInterleavingRaces",
    "CFG",
    "CFGEdge",
    "CFGNode",
    "EXIT_UNAVAILABLE",
    "Finding",
    "ResourceEscape",
    "WireConformance",
    "build_cfg",
    "forward_dataflow",
    "LintEngine",
    "LintError",
    "LintReport",
    "META_RULE",
    "PERMISSIVE_ALLOWLIST",
    "Rule",
    "STRICT_PACKAGES",
    "Suppression",
    "TypecheckResult",
    "default_rules",
    "mypy_available",
    "run_typecheck",
]

"""Invariant-aware static analysis for the repro codebase.

The paper's correctness story is a set of *static* facts — flows are
integral (Theorem 2), scheduling is a deterministic function of the
seed, validation survives ``python -O`` — but until this subsystem
they were only enforced dynamically (property tests, a 2000-tick
chaos run).  ``repro.analysis`` moves enforcement to lint time:

- :mod:`repro.analysis.engine` — file walking, AST parsing, the
  ``# repro: noqa RXXX -- justification`` suppression protocol, text
  and JSON reporting;
- :mod:`repro.analysis.rules` — the rule catalog (R001–R005), one
  class per invariant;
- :mod:`repro.analysis.typing_gate` — the strict-mypy configuration
  (strict packages, permissive allowlist that may only shrink) and a
  gated runner for environments without mypy.

``python -m repro lint`` and ``python -m repro typecheck`` are the
CLI wrappers; ``docs/static-analysis.md`` is the human-facing rule
catalog and suppression policy.
"""

from repro.analysis.engine import (
    Finding,
    LintEngine,
    LintError,
    LintReport,
    META_RULE,
    Suppression,
)
from repro.analysis.rules import Rule, default_rules
from repro.analysis.typing_gate import (
    EXIT_UNAVAILABLE,
    PERMISSIVE_ALLOWLIST,
    STRICT_PACKAGES,
    TypecheckResult,
    mypy_available,
    run_typecheck,
)

__all__ = [
    "EXIT_UNAVAILABLE",
    "Finding",
    "LintEngine",
    "LintError",
    "LintReport",
    "META_RULE",
    "PERMISSIVE_ALLOWLIST",
    "Rule",
    "STRICT_PACKAGES",
    "Suppression",
    "TypecheckResult",
    "default_rules",
    "mypy_available",
    "run_typecheck",
]

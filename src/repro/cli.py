"""Command-line interface: run schedulers and experiments from a shell.

Examples
--------
::

    python -m repro schedule --network omega --ports 8 --policy optimal --render
    python -m repro blocking --network cube --policy random_binding --trials 200
    python -m repro sweep --network omega --policies optimal greedy random_binding
    python -m repro queueing --network omega --rate 0.8 --policy optimal
    python -m repro serve --network omega --rate 0.8 --horizon 200 --seed 7
    python -m repro chaos --network omega --ports 32 --ticks 2000 --seed 7
    python -m repro wire-serve --network omega --ports 16 --port 7586
    python -m repro loadgen --port 7586 --rate 300 --duration 5 --seed 7
    python -m repro fabric-serve --cells 4 --ports 32 --rounds 40 --seed 7
    python -m repro fabric-bench --cells 1 2 4 8 --ports 32 --json
    python -m repro fabric-chaos --cells 4 --kill-cell 1 --kill-round 10
    python -m repro tokens --seed 31
    python -m repro lint --stats
    python -m repro typecheck

Every command is a thin wrapper over the library API and prints the
same tables the benchmark harness generates.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.core import MRSIN, OptimalScheduler, Request
from repro.core.heuristic import arbitrary_schedule, greedy_schedule, random_binding_schedule
from repro.distributed import DistributedScheduler
from repro.networks import (
    baseline,
    benes,
    clos,
    crossbar,
    cube,
    data_manipulator,
    delta,
    extra_stage_omega,
    flip,
    gamma,
    omega,
)
from repro.networks.render import render_circuits, render_network
from repro.sim.blocking import POLICIES, estimate_blocking
from repro.sim.queueing import simulate_queueing
from repro.sim.runner import sweep as run_sweep
from repro.sim.workload import WorkloadSpec, sample_instance
from repro.util.tables import Table

__all__ = ["main", "TOPOLOGIES"]

TOPOLOGIES: dict[str, Callable[[int], object]] = {
    "omega": omega,
    "flip": flip,
    "cube": cube,
    "delta": delta,
    "baseline": baseline,
    "benes": benes,
    "gamma": gamma,
    "data_manipulator": data_manipulator,
    "crossbar": lambda n: crossbar(n, n),
    "clos": lambda n: clos(max(n // 2, 1), 2, max(n // 2, 1)),
    "omega+1": lambda n: extra_stage_omega(n, 1),
    "omega+2": lambda n: extra_stage_omega(n, 2),
}


def _topology_builder(name: str, ports: int) -> Callable[[int], object]:
    """The registry builder for ``name``, validated against ``ports``.

    Some registry entries cannot realise every size: ``clos`` rounds
    odd ``n`` down to ``2*(n//2)`` ports, and the log-stage builders
    only accept powers of two.  Building a network of a different size
    than ``--ports`` asked for would silently skew every downstream
    statistic, so probe-build once and exit with a clear error on any
    mismatch.
    """
    builder = TOPOLOGIES[name]
    try:
        probe = builder(ports)
    except ValueError as exc:
        raise SystemExit(f"error: cannot build {name!r} with --ports {ports}: {exc}")
    if probe.n_processors != ports or probe.n_resources != ports:
        raise SystemExit(
            f"error: {name!r} with --ports {ports} builds a "
            f"{probe.n_processors}x{probe.n_resources} network, not "
            f"{ports}x{ports}; pick a port count the topology can realise "
            f"(e.g. an even size for clos)"
        )
    return builder


def _spec(args) -> WorkloadSpec:
    return WorkloadSpec(
        builder=_topology_builder(args.network, args.ports),
        n_ports=args.ports,
        request_density=args.request_density,
        free_density=args.free_density,
        occupied_circuits=args.occupied,
    )


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--network", choices=sorted(TOPOLOGIES), default="omega")
    p.add_argument("--ports", type=int, default=8, help="network size N")
    p.add_argument("--request-density", type=float, default=1.0)
    p.add_argument("--free-density", type=float, default=1.0)
    p.add_argument("--occupied", type=int, default=0,
                   help="circuits pre-established before scheduling")
    p.add_argument("--seed", type=int, default=0)


def cmd_schedule(args) -> int:
    """One scheduling cycle; print the mapping (and optionally the net)."""
    m = sample_instance(_spec(args), args.seed)
    if args.policy == "optimal":
        mapping = OptimalScheduler().schedule(m)
    elif args.policy == "distributed":
        mapping = DistributedScheduler().schedule(m).mapping
    elif args.policy == "greedy":
        mapping = greedy_schedule(m, order="random", rng=args.seed)
    elif args.policy == "random_binding":
        mapping = random_binding_schedule(m, rng=args.seed)
    else:
        mapping = arbitrary_schedule(m)
    n_req = len(m.schedulable_requests())
    print(f"{m.network.name}: {n_req} requests, "
          f"{len(m.free_resources())} free resources")
    print(f"{args.policy} allocated {len(mapping)}: {sorted(mapping.pairs)}")
    if args.render:
        m.apply_mapping(mapping)
        busy = {r.index for r in m.resources if r.busy}
        print()
        print(render_network(m.network, busy))
        print()
        print(render_circuits(m.network))
    return 0


def cmd_blocking(args) -> int:
    """Monte Carlo blocking estimate for one policy."""
    est = estimate_blocking(_spec(args), args.policy, trials=args.trials, seed=args.seed)
    lo, hi = est.ci95
    print(f"{args.policy} on {args.network}-{args.ports}: "
          f"P(block) = {est.probability:.4f}  [95% CI {lo:.4f}, {hi:.4f}]  "
          f"({est.blocked}/{est.possible} over {est.trials} trials)")
    return 0


def cmd_sweep(args) -> int:
    """Blocking sweep over request/free densities for several policies."""
    points = []
    for d in args.densities:
        spec = WorkloadSpec(builder=TOPOLOGIES[args.network], n_ports=args.ports,
                            request_density=d, free_density=d,
                            occupied_circuits=args.occupied)
        points.append((f"d={d:g}", spec))
    result = run_sweep(
        f"blocking sweep on {args.network}-{args.ports}",
        points, args.policies, trials=args.trials, seed=args.seed,
    )
    print(result.render())
    return 0


def cmd_queueing(args) -> int:
    """Steady-state queueing run (utilization / response time)."""
    m = MRSIN(_topology_builder(args.network, args.ports)(args.ports))
    res = simulate_queueing(
        m, policy=args.policy, arrival_rate=args.rate,
        mean_service=args.service, horizon=args.horizon, seed=args.seed,
    )
    table = Table(["metric", "value"], title=f"queueing: {args.network}-{args.ports}, "
                  f"λ={args.rate:g}, policy={args.policy}")
    table.add_row("offered load", f"{res.offered_load:.2f}")
    table.add_row("resource utilization", f"{res.utilization:.3f}")
    table.add_row("mean response time", f"{res.mean_response:.3f}")
    table.add_row("mean queue length", f"{res.mean_queue:.3f}")
    table.add_row("tasks completed", res.completed)
    print(table.render())
    return 0


def cmd_serve(args) -> int:
    """Finite-horizon run of the online allocation service."""
    from repro.service.driver import run_service
    from repro.service.server import ServiceFaulted

    spec = WorkloadSpec(
        builder=_topology_builder(args.network, args.ports),
        n_ports=args.ports,
        occupied_circuits=args.occupied,
        priority_levels=args.priority_levels,
    )
    try:
        result = run_service(
            spec,
            rate=args.rate,
            horizon=args.horizon,
            seed=args.seed,
            tick_interval=args.tick,
            max_batch=args.max_batch,
            queue_limit=args.queue_limit,
            degrade_watermark=args.watermark,
            request_timeout=args.timeout,
            transmission_time=args.transmission,
            mean_service=args.service,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    except ServiceFaulted as exc:
        # One line, nonzero exit: the run's snapshot is from a broken
        # service and must not be mistaken for a result.
        raise SystemExit(f"error: service faulted mid-run: {exc.__cause__!r}") from exc
    if args.json:
        import json

        print(json.dumps(result.snapshot, sort_keys=True))
    else:
        print(result.render())
    return 0


def cmd_wire_serve(args) -> int:
    """Serve an allocation service over TCP (see repro.wire)."""
    import asyncio
    import json

    from repro.core import MRSIN
    from repro.service.server import AllocationService, ServiceConfig
    from repro.util.rng import make_rng
    from repro.wire.server import WireServer

    builder = _topology_builder(args.network, args.ports)
    try:
        config = ServiceConfig(
            tick_interval=args.tick,
            max_batch=args.max_batch,
            queue_limit=args.queue_limit,
            degrade_watermark=args.watermark,
            default_timeout=args.timeout,
            fault_budget=args.fault_budget,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc

    async def _run() -> dict:
        service = AllocationService(MRSIN(builder(args.ports)), config=config)
        injector = None
        if args.fault_rate > 0:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(
                service.mrsin,
                rng=make_rng(args.seed),
                fault_rate=args.fault_rate,
                transient_fraction=args.transient,
                mean_repair=args.mean_repair,
            )
        async with service:
            async with WireServer(
                service,
                host=args.host,
                port=args.port,
                max_connections=args.max_connections,
            ) as server:
                host, port = server.address
                print(
                    f"wire-serve: {args.network}-{args.ports} listening on "
                    f"{host}:{port}",
                    flush=True,
                )
                clock = service.clock
                # The injector's Poisson process starts at t=0; feed it
                # elapsed serve time, not the loop clock's arbitrary epoch.
                started = clock.now()
                end = None if args.duration is None else started + args.duration
                while end is None or clock.now() < end:
                    await clock.sleep(config.tick_interval)
                    if injector is not None:
                        injector.inject(service, clock.now() - started)
                await server.drain()
                snapshot = service.snapshot()
                snapshot["wire"] = server.snapshot()
                return snapshot

    try:
        snapshot = asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        print("wire-serve: interrupted", file=sys.stderr)
        return 130
    except OSError as exc:
        raise SystemExit(f"error: cannot listen on {args.host}:{args.port}: {exc}")
    if args.json:
        print(json.dumps(snapshot, sort_keys=True))
    else:
        table = Table(["metric", "value"],
                      title=f"wire-serve: {args.network}-{args.ports}")
        for key in ("ticks", "submitted", "allocated", "released",
                    "timed_out", "rejected_full", "revoked"):
            table.add_row(key, snapshot[key])
        for key, value in sorted(snapshot["wire"].items()):
            table.add_row(f"wire {key}", value)
        print(table.render())
    return 0


def cmd_loadgen(args) -> int:
    """Open-loop load generation against a running wire-serve."""
    import asyncio
    import json

    from repro.wire.client import WireConnectionError
    from repro.wire.loadgen import LoadGenConfig, run_loadgen

    try:
        config = LoadGenConfig(
            rate=args.rate,
            duration=args.duration,
            processors=args.processors,
            arrival=args.arrival,
            connections=args.connections,
            seed=args.seed,
            request_timeout=args.timeout,
            mean_hold=args.hold,
            transmission=args.transmission,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    try:
        report = asyncio.run(run_loadgen(args.host, args.port, config))
    except WireConnectionError as exc:
        raise SystemExit(
            f"error: cannot reach {args.host}:{args.port}: {exc} "
            f"(is `repro wire-serve` running?)"
        ) from exc
    if args.json:
        print(json.dumps(report.to_json(), sort_keys=True))
    else:
        print(report.render())
    return 0


def cmd_chaos(args) -> int:
    """Fault/repair churn against the service, with hard invariants."""
    from repro.faults.chaos import BUILDERS, ChaosInvariantError, run_chaos

    try:
        report = run_chaos(
            topology=args.network,
            ports=args.ports,
            ticks=args.ticks,
            seed=args.seed,
            rate=args.rate,
            fault_rate=args.fault_rate,
            transient_fraction=args.transient,
            mean_repair=args.mean_repair,
            check_every=args.check_every,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    except ChaosInvariantError as exc:
        raise SystemExit(f"error: chaos invariant violated: {exc}") from exc
    print(report.render())
    return 0


def _fabric_config(args) -> "object":
    from repro.fabric.driver import FabricConfig

    try:
        return FabricConfig(
            topology=args.network,
            ports=args.ports,
            cells=args.cells,
            seed=args.seed,
            rounds=args.rounds,
            ticks_per_round=args.ticks_per_round,
            rate=args.rate,
            spill_after=args.spill_after,
            max_hold=args.max_hold,
            queue_limit=args.queue_limit,
            group_size=args.group_size,
            uplink=args.uplink,
            trunk=args.trunk,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def cmd_fabric_serve(args) -> int:
    """Run one sharded fabric workload (multi-process cells + broker)."""
    from repro.fabric.broker import FabricError
    from repro.fabric.driver import FabricConfig, run_fabric

    config = _fabric_config(args)
    if not isinstance(config, FabricConfig):  # pragma: no cover - narrowing
        raise SystemExit("error: bad fabric config")
    try:
        result = run_fabric(config)
    except FabricError as exc:
        raise SystemExit(f"error: fabric failed: {exc}") from exc
    if args.json:
        import json

        payload = {
            "totals": result.totals,
            "rounds_run": result.rounds_run,
            "drain_rounds": result.drain_rounds,
            "wall_s": result.wall_s,
            "critical_path_s": result.critical_path_s,
            "wall_allocs_per_sec": result.wall_allocs_per_sec,
            "aggregate_allocs_per_sec": result.aggregate_allocs_per_sec,
            "host_cpus": result.host_cpus,
            "snapshot": result.snapshot,
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        print(result.render())
    return 0


def cmd_fabric_bench(args) -> int:
    """Scaling sweep: the same per-cell load at increasing cell counts."""
    from repro.fabric.broker import FabricError
    from repro.fabric.driver import FabricConfig, sweep_cells

    config = _fabric_config(args)
    if not isinstance(config, FabricConfig):  # pragma: no cover - narrowing
        raise SystemExit("error: bad fabric config")
    try:
        sweep_result = sweep_cells(config, tuple(args.cell_counts))
    except FabricError as exc:
        raise SystemExit(f"error: fabric failed: {exc}") from exc
    if args.json:
        import json

        print(json.dumps(sweep_result, sort_keys=True))
    else:
        table = Table(
            ["cells", "offered", "allocated", "spilled", "agg allocs/s",
             "speedup", "wait p99"],
            title=f"fabric scaling: {args.network}-{args.ports} per cell",
        )
        for row in sweep_result["rows"]:
            table.add_row(
                row["cells"], row["offered"], row["allocated"],
                row["spill_allocated"],
                f"{row['aggregate_allocs_per_sec']:.0f}",
                f"{row['speedup_vs_1']:.2f}x",
                f"{row['wait_p99_ticks']:.2f}",
            )
        print(table.render())
        print("\naggregate = allocations / critical-path CPU seconds "
              "(one core per cell); wall-clock figures are in --json output")
    return 0


def cmd_fabric_chaos(args) -> int:
    """Whole-cell kill/rejoin chaos against a live fabric."""
    from repro.fabric.broker import FabricError, FabricInvariantError
    from repro.fabric.chaos import run_fabric_chaos
    from repro.fabric.driver import ChaosSchedule, FabricConfig

    config = _fabric_config(args)
    if not isinstance(config, FabricConfig):  # pragma: no cover - narrowing
        raise SystemExit("error: bad fabric config")
    try:
        schedule = ChaosSchedule(
            cell=args.kill_cell,
            kill_round=args.kill_round,
            rejoin_round=args.rejoin_round or None,
        )
        report = run_fabric_chaos(
            config, schedule, verify_determinism=args.verify_determinism
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    except FabricInvariantError as exc:
        raise SystemExit(f"error: fabric invariant violated: {exc}") from exc
    except FabricError as exc:
        raise SystemExit(f"error: fabric failed: {exc}") from exc
    print(report.render())
    return 0


def cmd_tokens(args) -> int:
    """Trace one distributed (token-propagation) scheduling cycle."""
    m = sample_instance(_spec(args), args.seed)
    outcome = DistributedScheduler(record=True).schedule(m)
    print(f"iterations: {outcome.iterations}, clocks: {outcome.clocks}, "
          f"allocated: {len(outcome.mapping)}")
    for state, bus in zip(outcome.state_trace, outcome.bus_trace):
        print(f"  [{bus}] {state.value}")
    if args.verbose:
        for t in outcome.token_trace:
            print(f"  it{t.iteration} {t.phase:>8s} clk{t.clock:3d}: {t.detail}")
    return 0


def cmd_lint(args) -> int:
    """Run the invariant lint (R001–R008) over the given paths."""
    from pathlib import Path

    from repro.analysis import LintEngine, LintError, default_rules
    from repro.analysis.engine import changed_files

    rules = default_rules()
    if args.select:
        wanted = {r.strip().upper() for s in args.select for r in s.split(",")}
        unknown = wanted - {r.id for r in rules}
        if unknown:
            raise SystemExit(f"error: unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.id in wanted]
    paths = args.paths or [str(Path(__file__).resolve().parent)]
    engine = LintEngine(rules)
    try:
        targets: list = list(paths)
        if args.changed:
            targets = list(changed_files(paths))
        report = engine.run(targets)
    except LintError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.format == "json":
        print(report.to_json())
    else:
        for f in report.findings:
            print(f.render())
        if args.stats or not report.findings:
            stats = report.stats()
            print(f"checked {stats['files_checked']} files: "
                  f"{stats['findings']} finding(s), "
                  f"{stats['suppressed']} suppressed")
            if args.stats:
                for rule_id, n in sorted(stats["by_rule"].items()):
                    print(f"  {rule_id}: {n}")
                for rule_id, n in sorted(stats["suppressed_by_rule"].items()):
                    print(f"  {rule_id} (suppressed): {n}")
    return report.exit_code


def cmd_typecheck(args) -> int:
    """Run the strict mypy gate (see repro.analysis.typing_gate)."""
    from repro.analysis.typing_gate import run_typecheck

    result = run_typecheck(strict_only=not args.all)
    if result.output:
        print(result.output)
    if not result.available:
        print("typecheck: SKIPPED (mypy unavailable)", file=sys.stderr)
    return result.exit_code


def cmd_report(args) -> int:
    """Compact paper-vs-measured report (a fast subset of benchmarks/)."""
    trials = args.trials
    table = Table(["claim (paper)", "measured"], title="reproduction snapshot")
    # 1. Blocking probabilities (SIM-BLOCK).
    spec = WorkloadSpec(builder=TOPOLOGIES["omega"], n_ports=8,
                        request_density=0.8, free_density=0.8)
    opt = estimate_blocking(spec, "optimal", trials=trials, seed=1)
    heur = estimate_blocking(spec, "random_binding", trials=trials, seed=1)
    table.add_row("optimal blocking < 5% (~2%)", f"{opt.probability:.1%}")
    table.add_row("heuristic blocking ~20%", f"{heur.probability:.1%}")
    # 2. Distributed == software optimum, and its clock cost.
    agree = 0
    clocks = 0
    for seed in range(max(trials // 5, 3)):
        m = sample_instance(spec, 1000 + seed)
        a = len(OptimalScheduler().schedule(m))
        out = DistributedScheduler().schedule(m)
        agree += a == len(out.mapping)
        clocks += out.clocks
    n_checks = max(trials // 5, 3)
    table.add_row("distributed = software optimum",
                  f"{agree}/{n_checks} instances agree")
    table.add_row("distributed cost (gate-delay clocks/cycle)",
                  f"{clocks / n_checks:.0f}")
    # 3. Table II disciplines all dispatch and solve.
    from repro.core import MRSIN, Request

    m = MRSIN(TOPOLOGIES["omega"](8), resource_types=["a", "b"] * 4)
    for p in range(4):
        m.submit(Request(p, resource_type="ab"[p % 2], priority=1 + p))
    hetero = OptimalScheduler().schedule(m)
    table.add_row("heterogeneous+priority discipline (Simplex)",
                  f"{len(hetero)}/4 typed requests served")
    print(table.render())
    print("\nfull harness: pytest benchmarks/ --benchmark-only  "
          "(details in EXPERIMENTS.md)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource-sharing interconnection network experiments "
                    "(Juang & Wah, ICPP'86 / IEEE TC'89 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="run one scheduling cycle")
    _add_workload_args(p)
    p.add_argument("--policy", default="optimal",
                   choices=["optimal", "distributed", "greedy", "random_binding", "arbitrary"])
    p.add_argument("--render", action="store_true", help="draw the network state")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("blocking", help="estimate blocking probability")
    _add_workload_args(p)
    p.add_argument("--policy", default="optimal", choices=sorted(POLICIES))
    p.add_argument("--trials", type=int, default=100)
    p.set_defaults(func=cmd_blocking)

    p = sub.add_parser("sweep", help="blocking sweep over densities")
    _add_workload_args(p)
    p.add_argument("--policies", nargs="+", default=["optimal", "random_binding"],
                   choices=sorted(POLICIES))
    p.add_argument("--densities", nargs="+", type=float, default=[0.5, 0.75, 1.0])
    p.add_argument("--trials", type=int, default=100)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("queueing", help="discrete-event queueing simulation")
    _add_workload_args(p)
    p.add_argument("--policy", default="optimal",
                   choices=["optimal", "greedy", "random_binding"])
    p.add_argument("--rate", type=float, default=0.5, help="arrival rate per processor")
    p.add_argument("--service", type=float, default=1.0, help="mean service time")
    p.add_argument("--horizon", type=float, default=200.0)
    p.set_defaults(func=cmd_queueing)

    p = sub.add_parser("serve", help="run the online batched allocation service")
    p.add_argument("--network", choices=sorted(TOPOLOGIES), default="omega")
    p.add_argument("--ports", type=int, default=8, help="network size N")
    p.add_argument("--rate", type=float, default=0.5, help="arrival rate per processor")
    p.add_argument("--horizon", type=float, default=200.0, help="virtual time to run")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tick", type=float, default=1.0, help="batching tick interval")
    p.add_argument("--max-batch", type=int, default=None,
                   help="cap requests per solve (default: everything pending)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="bounded queue size (admission control)")
    p.add_argument("--watermark", type=int, default=None,
                   help="queue depth that degrades ticks to the greedy heuristic")
    p.add_argument("--timeout", type=float, default=16.0,
                   help="per-request deadline in virtual time units")
    p.add_argument("--transmission", type=float, default=0.1,
                   help="circuit-holding time per task")
    p.add_argument("--service", type=float, default=1.0, help="mean service time")
    p.add_argument("--occupied", type=int, default=0,
                   help="circuits pre-established before the run")
    p.add_argument("--priority-levels", type=int, default=1,
                   help="draw request priorities from 1..K (K>1 uses min-cost)")
    p.add_argument("--json", action="store_true",
                   help="emit the final snapshot as one JSON object")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("wire-serve",
                       help="serve an allocation service over TCP")
    p.add_argument("--network", choices=sorted(TOPOLOGIES), default="omega")
    p.add_argument("--ports", type=int, default=16, help="network size N")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = pick a free one, printed on start)")
    p.add_argument("--tick", type=float, default=0.01,
                   help="batching tick interval, seconds")
    p.add_argument("--max-batch", type=int, default=None)
    p.add_argument("--queue-limit", type=int, default=256)
    p.add_argument("--watermark", type=int, default=None,
                   help="queue depth that degrades ticks to the greedy heuristic")
    p.add_argument("--timeout", type=float, default=5.0,
                   help="default per-request deadline, seconds")
    p.add_argument("--max-connections", type=int, default=64)
    p.add_argument("--duration", type=float, default=None,
                   help="seconds to serve (default: until interrupted)")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="component faults per second (0 = no injection)")
    p.add_argument("--transient", type=float, default=0.85,
                   help="fraction of faults that self-repair")
    p.add_argument("--mean-repair", type=float, default=1.0,
                   help="mean time-to-repair for transient faults, seconds")
    p.add_argument("--fault-budget", type=int, default=8,
                   help="consecutive failing ticks absorbed before faulting")
    p.add_argument("--seed", type=int, default=0, help="fault-injection seed")
    p.add_argument("--json", action="store_true",
                   help="emit the final snapshot as one JSON object")
    p.set_defaults(func=cmd_wire_serve)

    p = sub.add_parser("loadgen",
                       help="open-loop load generator against wire-serve")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--rate", type=float, default=200.0,
                   help="aggregate offered load, requests/second")
    p.add_argument("--duration", type=float, default=5.0,
                   help="seconds of arrivals to offer")
    p.add_argument("--processors", type=int, default=16,
                   help="processor indices drawn from [0, K)")
    p.add_argument("--arrival", choices=["poisson", "bursty", "diurnal"],
                   default="poisson")
    p.add_argument("--connections", type=int, default=4,
                   help="client connections (requests pipeline within each)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=5.0,
                   help="per-request deadline, seconds")
    p.add_argument("--hold", type=float, default=0.05,
                   help="mean lease hold time, seconds (exponential)")
    p.add_argument("--transmission", type=float, default=0.0,
                   help="circuit-hold before END_TX (0 skips END_TX)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as one JSON object")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser("chaos", help="fault/repair churn with invariant checks")
    p.add_argument("--network", choices=["omega", "benes", "clos"], default="omega")
    p.add_argument("--ports", type=int, default=32, help="network size N")
    p.add_argument("--ticks", type=int, default=2000, help="scheduling cycles to churn")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rate", type=float, default=0.4,
                   help="request arrivals per processor per tick")
    p.add_argument("--fault-rate", type=float, default=0.08,
                   help="component faults per time unit")
    p.add_argument("--transient", type=float, default=0.85,
                   help="fraction of faults that self-repair")
    p.add_argument("--mean-repair", type=float, default=6.0,
                   help="mean time-to-repair for transient faults")
    p.add_argument("--check-every", type=int, default=1,
                   help="cold-vs-warm differential every K ticks")
    p.set_defaults(func=cmd_chaos)

    def _add_fabric_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--network", choices=["omega", "benes", "clos"],
                       default="omega", help="intra-cell topology")
        p.add_argument("--ports", type=int, default=32, help="ports per cell")
        p.add_argument("--cells", type=int, default=4, help="number of cells")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--rounds", type=int, default=40,
                       help="bulk-synchronous rounds of load")
        p.add_argument("--ticks-per-round", type=int, default=8)
        p.add_argument("--rate", type=float, default=0.18,
                       help="arrivals per port per tick (per cell)")
        p.add_argument("--spill-after", type=int, default=4,
                       help="home-queue ticks before a request escalates")
        p.add_argument("--max-hold", type=int, default=6,
                       help="lease hold times drawn from 1..K ticks")
        p.add_argument("--queue-limit", type=int, default=0,
                       help="per-cell admission queue (0 = 4*ports)")
        p.add_argument("--group-size", type=int, default=4,
                       help="cells per spill-network aggregation pod")
        p.add_argument("--uplink", type=int, default=8,
                       help="per-cell spill uplink, requests/round")
        p.add_argument("--trunk", type=int, default=32,
                       help="spill core trunk, requests/round")

    p = sub.add_parser("fabric-serve",
                       help="run a sharded multi-process allocation fabric")
    _add_fabric_args(p)
    p.add_argument("--json", action="store_true",
                   help="emit totals + merged snapshot as one JSON object")
    p.set_defaults(func=cmd_fabric_serve)

    p = sub.add_parser("fabric-bench",
                       help="fabric scaling sweep over cell counts")
    _add_fabric_args(p)
    p.add_argument("--cell-counts", nargs="+", type=int, default=[1, 2, 4, 8],
                   help="fabric widths to sweep")
    p.add_argument("--json", action="store_true",
                   help="emit the sweep as one JSON object")
    p.set_defaults(func=cmd_fabric_bench)

    p = sub.add_parser("fabric-chaos",
                       help="whole-cell kill/rejoin chaos with invariants")
    _add_fabric_args(p)
    p.add_argument("--kill-cell", type=int, default=1,
                   help="cell index to SIGKILL")
    p.add_argument("--kill-round", type=int, default=10)
    p.add_argument("--rejoin-round", type=int, default=20,
                   help="round the killed cell rejoins (0 = never)")
    p.add_argument("--verify-determinism", action="store_true",
                   help="run the schedule twice and compare settlements")
    p.set_defaults(func=cmd_fabric_chaos)

    p = sub.add_parser("tokens", help="trace the distributed token architecture")
    _add_workload_args(p)
    p.add_argument("--verbose", action="store_true", help="print every token move")
    p.set_defaults(func=cmd_tokens)

    p = sub.add_parser("lint", help="invariant lint: R001-R008 over src")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: the repro package)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--stats", action="store_true",
                   help="print per-rule hit and suppression counts")
    p.add_argument("--select", action="append", default=[],
                   help="comma-separated rule ids to run (default: all)")
    p.add_argument("--changed", action="store_true",
                   help="lint only files under the given paths that differ "
                        "from git HEAD (staged, unstaged, or untracked) — "
                        "the pre-commit fast path")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("typecheck",
                       help="strict mypy gate on flows/core/analysis/wire")
    p.add_argument("--all", action="store_true",
                   help="check the whole package permissively, not just "
                        "the strict subset")
    p.set_defaults(func=cmd_typecheck)

    p = sub.add_parser("report", help="compact paper-vs-measured snapshot")
    p.add_argument("--trials", type=int, default=60)
    p.set_defaults(func=cmd_report)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Stable label hashing: deterministic across processes and versions.

Builtin ``hash`` is salted per interpreter (``PYTHONHASHSEED``), so any
identifier derived from it differs between the processes of a
multi-process fabric and between reruns — exactly the failure mode a
seed-deterministic system cannot tolerate.  Every place the repo needs
"a number (or short tag) derived from a name" goes through this module
instead: SHA-256 of the UTF-8 label, truncated.

Used by the sweep runner (per-point seed offsets that survive point
reordering) and by the fabric (cell ids and the fabric-wide lease
namespace, which must agree between the broker process and every cell
process it spawns).
"""

from __future__ import annotations

import hashlib

__all__ = ["label_digest", "label_hash", "label_tag"]


def label_digest(label: str) -> bytes:
    """The 32-byte SHA-256 digest of ``label`` (UTF-8)."""
    return hashlib.sha256(label.encode("utf-8")).digest()


def label_hash(label: str, *, bits: int = 32) -> int:
    """A stable nonnegative integer derived from ``label``.

    Truncates the SHA-256 digest to ``bits`` bits (1..256, default 32
    — the historical sweep-seed width).  The same label yields the
    same value in every process on every Python version.
    """
    if not 1 <= bits <= 256:
        raise ValueError(f"bits must be in [1, 256], got {bits}")
    n_bytes = (bits + 7) // 8
    value = int.from_bytes(label_digest(label)[:n_bytes], "big")
    return value >> (n_bytes * 8 - bits)


def label_tag(label: str, *, chars: int = 8) -> str:
    """A short stable hex tag for ``label`` (human-greppable ids).

    The fabric names cells with these: ``label_tag("omega-32#3")`` is
    identical in the broker and in the cell process it addresses, so
    ``cell_id:lease_id`` lease names are consistent fabric-wide.
    """
    if not 1 <= chars <= 64:
        raise ValueError(f"chars must be in [1, 64], got {chars}")
    return label_digest(label).hex()[:chars]

"""Shared utilities: seeded RNG helpers, ASCII tables, instrumentation.

These helpers are deliberately dependency-light; everything in
:mod:`repro` other than the test suite depends only on :mod:`numpy`
and the standard library.
"""

from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import Table, format_table
from repro.util.counters import OpCounter
from repro.util.histogram import LatencyHistogram
from repro.util.labels import label_digest, label_hash, label_tag

__all__ = [
    "make_rng",
    "spawn_rngs",
    "Table",
    "format_table",
    "OpCounter",
    "LatencyHistogram",
    "label_digest",
    "label_hash",
    "label_tag",
]

"""Deterministic random-number handling for simulations and benchmarks.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: the benchmark harness seeds every sweep point
explicitly, so re-running a bench regenerates the identical workload.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]

# Fixed default seed so that "no seed given" still means "deterministic run".
DEFAULT_SEED = 0x52534E49  # "RSIN" in ASCII hex.


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
        existing generator (returned unchanged so callers can thread a
        single stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``seed``.

    Used by parameter sweeps so that each sweep point gets its own
    stream and results do not depend on evaluation order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    root = make_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)]

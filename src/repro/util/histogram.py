"""Log-bucketed integer latency histogram (HdrHistogram-style).

Tail-latency SLOs (p99/p999) need every sample counted — a mean hides
exactly the waits that matter — but storing every sample is unbounded.
:class:`LatencyHistogram` is the standard compromise: values are
bucketed log-linearly (each power-of-two tier split into ``2**fine_bits``
equal sub-buckets), so counts are **exact**, relative quantile error is
bounded by ``2**-fine_bits``, and the memory footprint is a small sparse
dict regardless of how many samples arrive.

Everything on the recording path is integer arithmetic — values are
whatever integer unit the caller picked (microseconds, milli-ticks);
the histogram never converts, rounds, or floats them (the same exactness
discipline R003 enforces for flows).  Histograms with the same
``fine_bits`` merge by bucket-count addition, so per-connection or
per-shard histograms aggregate losslessly.
"""

from __future__ import annotations

__all__ = ["LatencyHistogram", "QUANTILE_LABELS"]

#: The quantiles :meth:`LatencyHistogram.percentiles` reports, as
#: ``(label, numerator, denominator)`` — kept rational so the rank
#: computation stays exact.
QUANTILE_LABELS: tuple[tuple[str, int, int], ...] = (
    ("p50", 50, 100),
    ("p90", 90, 100),
    ("p99", 99, 100),
    ("p999", 999, 1000),
)


class LatencyHistogram:
    """Exact-count, log-bucketed histogram over non-negative integers.

    Parameters
    ----------
    fine_bits:
        Sub-bucket resolution: each power-of-two tier ``[2**k, 2**(k+1))``
        is split into ``2**fine_bits`` equal buckets, bounding relative
        quantile error by ``2**-fine_bits`` (default 7 → ≤ 0.79%).
        Values below ``2**fine_bits`` get one bucket each (exact).

    Notes
    -----
    Every power of two is a bucket *boundary* at any ``fine_bits``, so
    :meth:`count_below` is exact at power-of-two thresholds — the
    property :class:`~repro.service.metrics.ServiceMetrics` uses to keep
    its legacy tick-multiple wait buckets bit-identical.
    """

    def __init__(self, fine_bits: int = 7) -> None:
        if fine_bits < 1:
            raise ValueError(f"fine_bits must be >= 1, got {fine_bits}")
        self.fine_bits = fine_bits
        self._fine = 1 << fine_bits
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.max_value = 0
        self.min_value = 0

    # ------------------------------------------------------------------
    # Bucket geometry
    # ------------------------------------------------------------------
    def bucket_index(self, value: int) -> int:
        """Index of the bucket holding ``value`` (int, >= 0)."""
        if value < self._fine:
            return value
        top = value.bit_length() - 1
        return ((top - self.fine_bits + 1) << self.fine_bits) + (
            (value - (1 << top)) >> (top - self.fine_bits)
        )

    def bucket_bounds(self, index: int) -> tuple[int, int]:
        """Inclusive ``(low, high)`` value range of bucket ``index``."""
        if index < 0:
            raise ValueError(f"bucket index {index} negative")
        if index < self._fine:
            return (index, index)
        offset = index - self._fine
        tier = self.fine_bits + (offset >> self.fine_bits)
        sub = offset & (self._fine - 1)
        width = 1 << (tier - self.fine_bits)
        low = (1 << tier) + sub * width
        return (low, low + width - 1)

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------
    def record(self, value: int, n: int = 1) -> None:
        """Count ``value`` ``n`` times.  Integer-only; O(1)."""
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"LatencyHistogram records ints, got {value!r}")
        if value < 0:
            raise ValueError(f"cannot record negative value {value}")
        if n < 1:
            raise ValueError(f"record count must be >= 1, got {n}")
        index = self.bucket_index(value)
        self._counts[index] = self._counts.get(index, 0) + n
        if self.count == 0 or value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self.count += n
        self.total += value * n

    def merge(self, other: "LatencyHistogram") -> None:
        """Add ``other``'s counts into this histogram (lossless)."""
        if other.fine_bits != self.fine_bits:
            raise ValueError(
                f"cannot merge histograms with fine_bits "
                f"{self.fine_bits} and {other.fine_bits}"
            )
        for index, n in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + n
        if other.count:
            if self.count == 0 or other.min_value < self.min_value:
                self.min_value = other.min_value
            if other.max_value > self.max_value:
                self.max_value = other.max_value
        self.count += other.count
        self.total += other.total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Mean recorded value (reporting path; 0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, numerator: int, denominator: int = 100) -> int:
        """Upper bound of the bucket holding the q-th ranked sample.

        ``numerator/denominator`` is the quantile (``99, 100`` → p99);
        rank arithmetic is exact-rational.  Returns 0 when empty.  The
        reported value is never below the true sample and overshoots by
        at most one bucket width (relative error ``<= 2**-fine_bits``).
        """
        if not 0 <= numerator <= denominator or denominator <= 0:
            raise ValueError(f"bad quantile {numerator}/{denominator}")
        if not self.count:
            return 0
        rank = max(1, -(-numerator * self.count // denominator))  # ceil
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                high = self.bucket_bounds(index)[1]
                return min(high, self.max_value)
        return self.max_value  # pragma: no cover - rank <= count always hits

    def percentiles(self) -> dict[str, int]:
        """The SLO quantiles (:data:`QUANTILE_LABELS`) in one dict."""
        return {
            label: self.quantile(num, den) for label, num, den in QUANTILE_LABELS
        }

    def count_below(self, threshold: int) -> int:
        """Exact number of samples with ``value < threshold``.

        ``threshold`` must be a bucket boundary (any value up to
        ``2**fine_bits``, or the low edge of some bucket — every power
        of two qualifies); otherwise the count would have to split a
        bucket and this raises :class:`ValueError` instead of guessing.
        """
        if threshold < 0:
            raise ValueError(f"threshold {threshold} negative")
        if threshold > self._fine:
            index = self.bucket_index(threshold)
            if self.bucket_bounds(index)[0] != threshold:
                raise ValueError(
                    f"threshold {threshold} is not a bucket boundary at "
                    f"fine_bits={self.fine_bits}; counts would be inexact"
                )
        boundary = self.bucket_index(threshold) if threshold else 0
        return sum(n for index, n in self._counts.items() if index < boundary)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-safe form: nonzero buckets keyed by their low bound."""
        return {
            "fine_bits": self.fine_bits,
            "count": self.count,
            "total": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "buckets": {
                str(self.bucket_bounds(index)[0]): n
                for index, n in sorted(self._counts.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram serialised by :meth:`to_dict`."""
        fine_bits = data.get("fine_bits")
        buckets = data.get("buckets")
        if not isinstance(fine_bits, int) or not isinstance(buckets, dict):
            raise ValueError("malformed histogram dict")
        hist = cls(fine_bits=fine_bits)
        for low, n in buckets.items():
            if not isinstance(n, int) or n < 1:
                raise ValueError(f"malformed bucket count {n!r}")
            hist.record(int(low), n)
        # Bucketing loses sub-bucket positions; restore the recorded
        # extremes and total so summary stats survive the round trip.
        count = data.get("count")
        total = data.get("total")
        low_v, high_v = data.get("min"), data.get("max")
        if isinstance(total, int):
            hist.total = total
        if isinstance(low_v, int):
            hist.min_value = low_v
        if isinstance(high_v, int):
            hist.max_value = high_v
        if isinstance(count, int) and count != hist.count:
            raise ValueError(f"bucket counts sum to {hist.count}, header says {count}")
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "LatencyHistogram(empty)"
        p = self.percentiles()
        return (
            f"LatencyHistogram(count={self.count}, p50={p['p50']}, "
            f"p99={p['p99']}, p999={p['p999']}, max={self.max_value})"
        )

"""Operation counters used by the monitor-vs-distributed cost models.

The paper compares a *monitor* architecture (software flow algorithm,
cost measured in executed instructions) against the distributed
token-propagation architecture (cost measured in clock periods of gate
delay).  The flow algorithms accept an optional :class:`OpCounter` and
charge abstract operation categories to it; the benchmark harness then
converts categories to instructions.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["OpCounter"]


class OpCounter:
    """Named operation counter with a weighted total.

    ``charge(category, n)`` accumulates raw counts; ``total(weights)``
    applies a per-category instruction weight (default 1).
    """

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()

    def charge(self, category: str, n: int = 1) -> None:
        """Add ``n`` operations to ``category``."""
        self.counts[category] += n

    def total(self, weights: dict[str, float] | None = None) -> float:
        """Weighted sum of all charged operations."""
        if weights is None:
            return float(sum(self.counts.values()))
        return float(sum(weights.get(cat, 1.0) * n for cat, n in self.counts.items()))

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's charges into this one."""
        self.counts.update(other.counts)

    def reset(self) -> None:
        """Zero all categories."""
        self.counts.clear()

    def __getitem__(self, category: str) -> int:
        return self.counts[category]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        items = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OpCounter({items})"

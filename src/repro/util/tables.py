"""Minimal ASCII table rendering for benchmark and experiment output.

The benchmark harness prints paper-style result tables (one row per
sweep point).  A tiny formatter is enough; we do not pull in external
pretty-printers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_table"]


def _fmt_cell(value: Any) -> str:
    """Render one cell: floats get 4 significant digits, rest ``str()``."""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str | None = None) -> str:
    """Format ``rows`` under ``headers`` as a fixed-width ASCII table."""
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Table:
    """Accumulating table: ``add_row`` during a sweep, ``render`` at the end."""

    headers: Sequence[str]
    title: str | None = None
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append one row; must match the header arity."""
        if len(cells) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(cells)}")
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render the accumulated rows as an ASCII table."""
        return format_table(self.headers, self.rows, title=self.title)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()

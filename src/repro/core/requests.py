"""Requests, resources, priorities, and preferences (Section II).

The model: *"A priority level may be associated with a request to show
the urgency of the request.  A preference value may be associated with
a resource to show the desirability of being used for service.  The
costs of allocation are inversely related to the priorities and
preferences."*  Each request needs exactly one resource (model item 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["DEFAULT_TYPE", "Request", "Resource"]

# The resource type used by homogeneous systems.
DEFAULT_TYPE: Hashable = "default"


@dataclass(frozen=True)
class Request:
    """A pending request from a processor.

    Attributes
    ----------
    processor:
        Index of the requesting processor (its network input port).
    resource_type:
        The type of resource needed; homogeneous systems use
        :data:`DEFAULT_TYPE`.
    priority:
        Urgency level ``y_p >= 1``; higher is more urgent.  The paper's
        Fig. 5 uses levels 1..10.
    tag:
        Opaque caller payload (task id, arrival time, ...) excluded
        from equality so identical logical requests compare equal.
    """

    processor: int
    resource_type: Hashable = DEFAULT_TYPE
    priority: int = 1
    tag: object = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.processor < 0:
            raise ValueError(f"processor index {self.processor} negative")
        if self.priority < 1:
            raise ValueError(f"priority {self.priority} must be >= 1")


@dataclass
class Resource:
    """One resource attached to a network output port.

    Attributes
    ----------
    index:
        Output port the resource sits on.
    resource_type:
        The function this resource implements (FFT array, printer, ...).
    preference:
        Desirability ``q_w >= 1``; higher is preferred.
    busy:
        Whether the resource is currently executing a task.  A busy
        resource is excluded from scheduling (capacity 0 in the
        transformations).
    failed:
        Whether the resource has (physically) failed.  A failed
        resource is excluded from scheduling until repaired; a task it
        was serving when it failed is lost (the service revokes the
        holder's lease).
    """

    index: int
    resource_type: Hashable = DEFAULT_TYPE
    preference: int = 1
    busy: bool = False
    failed: bool = False

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"resource index {self.index} negative")
        if self.preference < 1:
            raise ValueError(f"preference {self.preference} must be >= 1")

    @property
    def available(self) -> bool:
        """Free, healthy, and ready to accept a task."""
        return not self.busy and not self.failed

"""The optimal scheduler facade — the paper's Table II dispatch.

==============================  ============================  ==================
Scheduling discipline           Equivalent flow problem        Algorithms
==============================  ============================  ==================
Homogeneous, no priority        Maximum flow                   Ford–Fulkerson, Dinic
Homogeneous, priority/pref.     Min-cost flow                  Out-of-kilter (or SSP)
Heterogeneous, restricted       Real multicommodity LP         Simplex
Heterogeneous, general          Integer multicommodity         Branch & bound (NP-hard)
==============================  ============================  ==================

:class:`OptimalScheduler` inspects the MRSIN (heterogeneous? priorities
in play?) and runs the matching transformation + solver, returning a
:class:`~repro.core.mapping.Mapping` ready for
:meth:`~repro.core.model.MRSIN.apply_mapping`.

Fault tolerance falls out of the reduction for free: failed links,
switchboxes, and resources enter every transformation at capacity 0
(see :func:`repro.core.transform._add_structure_arcs`), so each solve
is exactly the same flow problem on the *surviving* subnetwork and the
mapping extracted is optimal for the degraded system — the paper's
untagged-request premise ("any free resource of a type will do") is
what makes rerouting around faults automatic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.core.mapping import Mapping
from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.core.transform import (
    extract_mapping,
    extract_multicommodity_mapping,
    heterogeneous_max_problem,
    heterogeneous_min_cost_problem,
    transformation1,
    transformation2,
)
from repro.core.incremental import IncrementalFlowEngine, KernelFlowEngine
from repro.flows.dinic import dinic
from repro.flows.kernel import kernel_solve
from repro.flows.maxflow import edmonds_karp, ford_fulkerson
from repro.flows.mincost import cycle_cancel_min_cost, min_cost_flow
from repro.flows.multicommodity import (
    solve_integral_multicommodity,
    solve_max_multicommodity,
    solve_min_cost_multicommodity,
)
from repro.flows.network_simplex import network_simplex
from repro.flows.out_of_kilter import out_of_kilter
from repro.flows.push_relabel import push_relabel
from repro.flows.validate import FlowViolation, check_flow, is_integral
from repro.util.counters import OpCounter

__all__ = ["Discipline", "OptimalScheduler", "SchedulerStats"]


class Discipline(enum.Enum):
    """The four scheduling disciplines of Table II."""

    HOMOGENEOUS = "homogeneous"
    PRIORITY = "homogeneous+priority"
    HETEROGENEOUS = "heterogeneous"
    HETEROGENEOUS_PRIORITY = "heterogeneous+priority"


@dataclass
class SchedulerStats:
    """Bookkeeping from the last :meth:`OptimalScheduler.schedule` call."""

    discipline: Discipline | None = None
    flow_value: float = 0.0
    flow_cost: float = 0.0
    n_requests: int = 0
    n_allocated: int = 0

    @property
    def blocking_fraction(self) -> float:
        """Requests *not* served this cycle, as a fraction."""
        if self.n_requests == 0:
            return 0.0
        return 1.0 - self.n_allocated / self.n_requests


MAXFLOW_ALGORITHMS = {
    "dinic": dinic,
    "edmonds_karp": edmonds_karp,
    "ford_fulkerson": ford_fulkerson,
    "push_relabel": push_relabel,
    # The flat-array CSR kernel (repro.flows.kernel): compiles the
    # problem network, solves on int arrays, writes flows back.
    "kernel": kernel_solve,
}

MINCOST_ALGORITHMS = ("out_of_kilter", "ssp", "cycle_cancel", "network_simplex")


class OptimalScheduler:
    """Optimal request→resource mapping via network-flow reductions.

    Parameters
    ----------
    maxflow:
        ``"dinic"`` (default — the algorithm the paper's distributed
        architecture realises), ``"edmonds_karp"``,
        ``"ford_fulkerson"``, or ``"push_relabel"``.
    mincost:
        ``"out_of_kilter"`` (default — the paper's named algorithm),
        ``"ssp"`` (successive shortest paths), ``"cycle_cancel"``, or
        ``"network_simplex"``.
    counter:
        Optional :class:`~repro.util.counters.OpCounter` charged with
        abstract operations (the monitor architecture's cost model).
    """

    def __init__(
        self,
        *,
        maxflow: str = "dinic",
        mincost: str = "out_of_kilter",
        counter: OpCounter | None = None,
    ) -> None:
        if maxflow not in MAXFLOW_ALGORITHMS:
            raise ValueError(f"unknown maxflow algorithm {maxflow!r}")
        if mincost not in MINCOST_ALGORITHMS:
            raise ValueError(f"unknown mincost algorithm {mincost!r}")
        self.maxflow = maxflow
        self.mincost = mincost
        self.counter = counter
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------
    def classify(self, mrsin: MRSIN, requests: Sequence[Request] | None = None) -> Discipline:
        """Which Table II row applies to this system right now."""
        reqs = mrsin.schedulable_requests() if requests is None else list(requests)
        hetero = len({r.resource_type for r in reqs}) > 1 or mrsin.is_heterogeneous
        priority = any(r.priority != 1 for r in reqs) or any(
            res.preference != 1 for res in mrsin.resources
        )
        if hetero and priority:
            return Discipline.HETEROGENEOUS_PRIORITY
        if hetero:
            return Discipline.HETEROGENEOUS
        if priority:
            return Discipline.PRIORITY
        return Discipline.HOMOGENEOUS

    def schedule(
        self,
        mrsin: MRSIN,
        requests: Sequence[Request] | None = None,
        *,
        discipline: Discipline | None = None,
    ) -> Mapping:
        """Compute the optimal mapping for the current cycle.

        ``requests`` defaults to
        :meth:`~repro.core.model.MRSIN.schedulable_requests`.  The
        discipline is auto-detected unless forced (e.g. to run the
        priority machinery on a priority-free instance in ablations).
        """
        reqs = mrsin.schedulable_requests() if requests is None else list(requests)
        if discipline is None:
            discipline = self.classify(mrsin, reqs)
        self.stats = SchedulerStats(discipline=discipline, n_requests=len(reqs))
        if not reqs:
            return Mapping()
        if discipline is Discipline.HOMOGENEOUS:
            mapping = self._schedule_homogeneous(mrsin, reqs)
        elif discipline is Discipline.PRIORITY:
            mapping = self._schedule_priority(mrsin, reqs)
        elif discipline is Discipline.HETEROGENEOUS:
            mapping = self._schedule_heterogeneous(mrsin, reqs)
        else:
            mapping = self._schedule_heterogeneous_priority(mrsin, reqs)
        self.stats.n_allocated = len(mapping)
        return mapping

    def schedule_incremental(
        self,
        mrsin: MRSIN,
        requests: Sequence[Request] | None = None,
        *,
        engine: "IncrementalFlowEngine | KernelFlowEngine",
    ) -> Mapping:
        """Warm-start variant of :meth:`schedule`.

        Homogeneous cycles are solved on ``engine``'s persistent
        network (either the object-graph engine or the flat-array
        kernel engine) — usually 0–2 Dinic phases atop the standing
        flow instead of a full rebuild-and-solve — and allocate exactly as
        many requests as the cold path would on the same state.  Any
        other discipline (priorities, heterogeneity) falls back to the
        cold per-cycle solve.

        Either way the caller must apply the returned mapping and then
        call ``engine.commit(mapping)`` so the persistent flow keeps
        tracking the physical circuits.
        """
        reqs = mrsin.schedulable_requests() if requests is None else list(requests)
        discipline = self.classify(mrsin, reqs)
        if discipline is not Discipline.HOMOGENEOUS:
            return self.schedule(mrsin, reqs, discipline=discipline)
        self.stats = SchedulerStats(discipline=discipline, n_requests=len(reqs))
        if not reqs:
            return Mapping()
        mapping = engine.schedule(reqs)
        self.stats.flow_value = engine.last_new_flow
        self.stats.n_allocated = len(mapping)
        return mapping

    # ------------------------------------------------------------------
    def _schedule_homogeneous(self, mrsin: MRSIN, reqs: Sequence[Request]) -> Mapping:
        problem = transformation1(mrsin, reqs)
        algorithm = MAXFLOW_ALGORITHMS[self.maxflow]
        result = algorithm(problem.net, problem.source, problem.sink, counter=self.counter)
        # Real exceptions, not asserts: these integrality/legality
        # checks guard circuit realisability and must survive `python -O`.
        if not is_integral(problem.net):
            raise FlowViolation("unit-capacity max flow must be integral")
        check_flow(problem.net, problem.source, problem.sink)
        self.stats.flow_value = result.value
        return extract_mapping(problem, mrsin)

    def _schedule_priority(self, mrsin: MRSIN, reqs: Sequence[Request]) -> Mapping:
        problem = transformation2(mrsin, reqs)
        if problem.required_flow is None:
            raise ValueError("transformation2 produced no required flow F0")
        if self.mincost == "out_of_kilter":
            result = out_of_kilter(
                problem.net, problem.source, problem.sink,
                target_flow=problem.required_flow, counter=self.counter,
            )
        elif self.mincost == "network_simplex":
            result = network_simplex(
                problem.net, problem.source, problem.sink,
                target_flow=problem.required_flow, counter=self.counter,
            )
        elif self.mincost == "ssp":
            result = min_cost_flow(
                problem.net, problem.source, problem.sink,
                target_flow=problem.required_flow, counter=self.counter,
            )
        else:
            result = cycle_cancel_min_cost(
                problem.net, problem.source, problem.sink,
                target_flow=problem.required_flow, counter=self.counter,
            )
        if not is_integral(problem.net):
            raise FlowViolation("0-1 min-cost flow must be integral")
        check_flow(problem.net, problem.source, problem.sink)
        self.stats.flow_value = result.value
        self.stats.flow_cost = result.cost
        return extract_mapping(problem, mrsin)

    def _schedule_heterogeneous(self, mrsin: MRSIN, reqs: Sequence[Request]) -> Mapping:
        problem, meta = heterogeneous_max_problem(mrsin, reqs)
        result = solve_max_multicommodity(problem)
        if not result.integral:
            # General-topology fallback: the NP-hard integral problem,
            # via branch and bound on the LP relaxation.
            result = solve_integral_multicommodity(problem)
        self.stats.flow_value = result.total_flow
        return extract_multicommodity_mapping(result, problem, meta, mrsin)

    def _schedule_heterogeneous_priority(self, mrsin: MRSIN, reqs: Sequence[Request]) -> Mapping:
        problem, meta = heterogeneous_min_cost_problem(mrsin, reqs)
        result = solve_min_cost_multicommodity(problem)
        if not result.integral:
            raise NotImplementedError(
                "fractional heterogeneous min-cost optimum on a general topology; "
                "the paper notes the integral problem is NP-hard"
            )
        self.stats.flow_value = result.total_flow
        self.stats.flow_cost = result.cost
        return extract_multicommodity_mapping(result, problem, meta, mrsin)

"""Transformations from MRSIN scheduling to network-flow problems.

This module is the heart of the reproduction — Section III's results:

- :func:`transformation1` (Transformation 1 / Theorems 1–2): a
  homogeneous MRSIN becomes a unit-capacity flow network whose maximum
  integral flow equals the maximum number of allocatable resources.
- :func:`transformation2` (Transformation 2 / Theorem 3): priorities
  and preferences become arc costs; a *bypass node* ``u`` absorbs
  unallocatable requests so a flow of value ``F0`` (= #requests)
  always exists, and the minimum-cost flow yields the optimal mapping.
- :func:`heterogeneous_max_problem` / :func:`heterogeneous_min_cost_problem`
  (Section III-D): one commodity per resource type, sharing the
  physical links' capacity.

The inverse direction — integral flow back to switch settings — is
:func:`extract_mapping` / :func:`extract_multicommodity_mapping`,
realising the Theorem 1 equivalence.

Flow-network node naming:

- ``"s"`` / ``"t"`` — source/sink (``("s", k)`` / ``("t", k)`` per
  commodity in heterogeneous problems);
- ``("p", i)`` — processor ``i``;
- ``("x", stage, box)`` — a switchbox;
- ``("r", j)`` — resource ``j``;
- ``"u"`` / ``("u", k)`` — the bypass node(s) of Transformation 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.core.mapping import Assignment, Mapping
from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.flows.graph import Arc, FlowNetwork
from repro.flows.multicommodity import Commodity, MultiCommodityProblem, MultiCommodityResult
from repro.networks.topology import Link

__all__ = [
    "TransformedProblem",
    "transformation1",
    "transformation2",
    "heterogeneous_max_problem",
    "heterogeneous_min_cost_problem",
    "extract_mapping",
    "extract_multicommodity_mapping",
    "bypass_cost",
    "link_nodes",
]


@dataclass
class TransformedProblem:
    """A flow problem produced from an MRSIN plus its inverse map.

    Attributes
    ----------
    net:
        The flow network (Transformation 1's ``G(V, E, s, t, c)`` or
        Transformation 2's costed variant).
    source, sink:
        Terminal node names.
    arc_link:
        Flow-arc index → physical :class:`Link` for the ``B`` arcs.
    arc_of_link:
        The inverse index: ``Link.index`` → flow-arc index.  Circuit
        teardown (the incremental engine retracting a released
        circuit's unit of flow) maps a link path back to its flow arcs
        in O(path length) through this dict.
    request_of:
        Processor index → the request scheduled for it this cycle.
    bypass:
        The bypass node (Transformation 2 only).
    required_flow:
        ``F0``, the number of pending requests (Transformation 2 only).
    """

    net: FlowNetwork
    source: Hashable
    sink: Hashable
    arc_link: dict[int, Link] = field(default_factory=dict)
    arc_of_link: dict[int, int] = field(default_factory=dict)
    request_of: dict[int, Request] = field(default_factory=dict)
    bypass: Hashable | None = None
    required_flow: int | None = None


def bypass_cost(mrsin: MRSIN) -> float:
    """Per-arc cost on the bypass path: ``max(ymax + 1, qmax + 1)``.

    Both bypass arcs carry it (step T4 applies ``w`` to all of ``L``),
    so routing through ``u`` always costs more than any real
    allocation: ``2 * max(...) > (ymax - y_p) + (qmax - q_w)``.

    .. note:: **Deviation from the printed cost function.**  With
       ``F0`` equal to the number of requests, *every* ``(s, p)`` arc
       is saturated by any feasible flow, so the printed
       ``ymax - y_p`` source costs contribute a constant and priority
       would never influence which requests get served.  The paper
       itself licenses *"any cost function that is inversely related
       to priorities"*; we therefore additionally charge ``y_p`` on
       the request's ``(p, u)`` bypass arc (see
       :func:`transformation2`), making it costlier to *not* serve an
       urgent request — which realises the paper's stated objective
       that "requests of higher priority are to be allocated".
    """
    return float(max(mrsin.max_priority + 1, mrsin.max_preference + 1))


def link_nodes(link: Link) -> tuple[Hashable, Hashable]:
    """The flow-network (tail, head) node names of a physical link."""
    if link.src.kind == "proc":
        tail: Hashable = ("p", link.src.box)
    else:
        tail = ("x", link.src.stage, link.src.box)
    if link.dst.kind == "res":
        head: Hashable = ("r", link.dst.box)
    else:
        head = ("x", link.dst.stage, link.dst.box)
    return tail, head


def _add_structure_arcs(
    net: FlowNetwork,
    mrsin: MRSIN,
    problem: TransformedProblem,
    *,
    include_occupied: bool = False,
) -> dict[int, Arc]:
    """Steps T2/T3 for the ``B`` arc set: one unit arc per *free* link.

    Occupied links get capacity zero in the paper and are then removed
    by step T4; we simply never add them — except for the persistent
    (incremental-engine) network, which passes ``include_occupied=True``
    to materialise them as capacity-0 arcs so the structure never has
    to be rebuilt when occupancy changes.  Failed links (and links
    touching a failed switchbox) are handled the same way: capacity 0,
    so a solve on a faulted MRSIN is simply max flow on the surviving
    subgraph and Theorem 2 keeps holding for it.  Both the forward
    (``arc_link``) and inverse (``arc_of_link``) indices are filled.
    Returns resource index → the arc entering its ``("r", j)`` node
    (used to wire ``T`` arcs).
    """
    resource_in_arc: dict[int, Arc] = {}
    network = mrsin.network
    for link in network.links:
        down = link.occupied or not network.link_usable(link)
        if down and not include_occupied:
            continue
        tail, head = link_nodes(link)
        arc = net.add_arc(tail, head, capacity=0 if down else 1)
        problem.arc_link[arc.index] = link
        problem.arc_of_link[link.index] = arc.index
        if link.dst.kind == "res":
            resource_in_arc[link.dst.box] = arc
    return resource_in_arc


def _schedulable(mrsin: MRSIN, requests: Sequence[Request] | None) -> list[Request]:
    """The requests entering this scheduling cycle."""
    if requests is None:
        return mrsin.schedulable_requests()
    procs = [r.processor for r in requests]
    if len(set(procs)) != len(procs):
        raise ValueError("at most one request per processor per cycle (model item 5)")
    return list(requests)


def transformation1(
    mrsin: MRSIN, requests: Sequence[Request] | None = None
) -> TransformedProblem:
    """Transformation 1: homogeneous MRSIN → max-flow network.

    Steps T1–T4 of the paper: source/sink plus processor, switchbox,
    and resource nodes; unit arcs for requesting processors, free
    links, and available resources.  By Theorem 2, the max integral
    flow value equals the maximum number of allocatable resources.
    """
    reqs = _schedulable(mrsin, requests)
    net = FlowNetwork()
    net.add_node("s")
    net.add_node("t")
    problem = TransformedProblem(net=net, source="s", sink="t")
    for req in reqs:
        net.add_arc("s", ("p", req.processor), capacity=1)
        problem.request_of[req.processor] = req
    resource_in = _add_structure_arcs(net, mrsin, problem)
    for res in mrsin.free_resources():
        if res.index in resource_in:
            net.add_arc(("r", res.index), "t", capacity=1)
    return problem


def transformation2(
    mrsin: MRSIN, requests: Sequence[Request] | None = None
) -> TransformedProblem:
    """Transformation 2: priorities/preferences → min-cost flow network.

    Adds the bypass node ``u`` (arcs ``(p, u)`` and ``(u, t)``, each
    costing :func:`bypass_cost`), prices ``S`` arcs at
    ``ymax - y_p`` and ``T`` arcs at ``qmax - q_w``, and fixes the
    required flow ``F0`` to the number of requests.  By Theorem 3 the
    min-cost integral flow of value ``F0`` defines the optimal mapping.
    """
    reqs = _schedulable(mrsin, requests)
    net = FlowNetwork()
    net.add_node("s")
    net.add_node("t")
    problem = TransformedProblem(
        net=net, source="s", sink="t", bypass="u", required_flow=len(reqs)
    )
    penalty = bypass_cost(mrsin)
    for req in reqs:
        if req.priority > mrsin.max_priority:
            raise ValueError(
                f"priority {req.priority} exceeds ymax={mrsin.max_priority}"
            )
        net.add_arc(
            "s", ("p", req.processor), capacity=1,
            cost=float(mrsin.max_priority - req.priority),
        )
        # The extra + priority term makes bypassing an urgent request
        # dearer (see the bypass_cost docstring for why the printed
        # costs alone cannot express priority).
        net.add_arc(
            ("p", req.processor), "u", capacity=1, cost=penalty + req.priority
        )
        problem.request_of[req.processor] = req
    if reqs:
        net.add_arc("u", "t", capacity=len(reqs), cost=penalty)
    resource_in = _add_structure_arcs(net, mrsin, problem)
    for res in mrsin.free_resources():
        if res.preference > mrsin.max_preference:
            raise ValueError(
                f"preference {res.preference} exceeds qmax={mrsin.max_preference}"
            )
        if res.index in resource_in:
            net.add_arc(
                ("r", res.index), "t", capacity=1,
                cost=float(mrsin.max_preference - res.preference),
            )
    return problem


# ----------------------------------------------------------------------
# Heterogeneous systems (Section III-D)
# ----------------------------------------------------------------------

def _commodity_types(mrsin: MRSIN, reqs: Sequence[Request]) -> list[Hashable]:
    """Resource types that have at least one pending request, in order."""
    seen: list[Hashable] = []
    for req in reqs:
        if req.resource_type not in seen:
            seen.append(req.resource_type)
    return seen


def heterogeneous_max_problem(
    mrsin: MRSIN, requests: Sequence[Request] | None = None
) -> tuple[MultiCommodityProblem, TransformedProblem]:
    """Heterogeneous MRSIN → multicommodity maximum flow.

    One commodity per requested resource type; Transformation 1 is
    applied per type and the single-commodity networks are superposed
    on the shared ``B`` arcs, exactly as the paper describes.
    Returns the multicommodity problem plus the shared inverse map.
    """
    reqs = _schedulable(mrsin, requests)
    net = FlowNetwork()
    meta = TransformedProblem(net=net, source="s", sink="t")
    types = _commodity_types(mrsin, reqs)
    resource_in = _add_structure_arcs(net, mrsin, meta)
    commodities = []
    for k, rtype in enumerate(types):
        src, dst = ("s", rtype), ("t", rtype)
        net.add_node(src)
        net.add_node(dst)
        for req in reqs:
            if req.resource_type == rtype:
                net.add_arc(src, ("p", req.processor), capacity=1)
                meta.request_of[req.processor] = req
        for res in mrsin.free_resources(rtype):
            if res.index in resource_in:
                net.add_arc(("r", res.index), dst, capacity=1)
        commodities.append(Commodity(rtype, src, dst))
    return MultiCommodityProblem(net, commodities), meta


def heterogeneous_min_cost_problem(
    mrsin: MRSIN, requests: Sequence[Request] | None = None
) -> tuple[MultiCommodityProblem, TransformedProblem]:
    """Heterogeneous MRSIN with priorities → multicommodity min-cost flow.

    Per-commodity bypass nodes ``(u, k)`` keep every demand feasible;
    per-commodity demands are the per-type request counts.
    """
    reqs = _schedulable(mrsin, requests)
    net = FlowNetwork()
    meta = TransformedProblem(net=net, source="s", sink="t")
    penalty = bypass_cost(mrsin)
    types = _commodity_types(mrsin, reqs)
    resource_in = _add_structure_arcs(net, mrsin, meta)
    commodities = []
    for rtype in types:
        src, dst, byp = ("s", rtype), ("t", rtype), ("u", rtype)
        net.add_node(src)
        net.add_node(dst)
        demand = 0
        for req in reqs:
            if req.resource_type != rtype:
                continue
            demand += 1
            net.add_arc(
                src, ("p", req.processor), capacity=1,
                cost=float(mrsin.max_priority - req.priority),
            )
            net.add_arc(
                ("p", req.processor), byp, capacity=1, cost=penalty + req.priority
            )
            meta.request_of[req.processor] = req
        net.add_arc(byp, dst, capacity=demand, cost=penalty)
        for res in mrsin.free_resources(rtype):
            if res.index in resource_in:
                net.add_arc(
                    ("r", res.index), dst, capacity=1,
                    cost=float(mrsin.max_preference - res.preference),
                )
        commodities.append(Commodity(rtype, src, dst, demand=demand))
    return MultiCommodityProblem(net, commodities), meta


# ----------------------------------------------------------------------
# Inverse direction: integral flow → mapping (Theorem 1)
# ----------------------------------------------------------------------

def _paths_to_mapping(
    paths: list[list[Arc]],
    problem: TransformedProblem,
    mrsin: MRSIN,
) -> Mapping:
    """Convert flow-path decompositions into a circuit mapping."""
    mapping = Mapping()
    for path in paths:
        if problem.bypass is not None and any(
            arc.head == problem.bypass or arc.tail == problem.bypass for arc in path
        ):
            continue  # bypassed request: not allocated
        links = tuple(
            problem.arc_link[arc.index] for arc in path if arc.index in problem.arc_link
        )
        processor = links[0].src.box
        resource = links[-1].dst.box
        mapping.add(
            Assignment(
                request=problem.request_of[processor],
                resource=mrsin.resources[resource],
                path=links,
            )
        )
    return mapping


def extract_mapping(problem: TransformedProblem, mrsin: MRSIN) -> Mapping:
    """Read the optimal mapping off an integral flow assignment.

    Realises Theorem 2's correspondence: every unit of s–t flow is one
    nonoverlapping processor→resource path.  The flow currently on
    ``problem.net`` must be legal and integral (run a solver first).
    """
    paths = problem.net.decompose_paths(problem.source, problem.sink)
    return _paths_to_mapping(paths, problem, mrsin)


def extract_multicommodity_mapping(
    result: MultiCommodityResult,
    problem: MultiCommodityProblem,
    meta: TransformedProblem,
    mrsin: MRSIN,
) -> Mapping:
    """Read the mapping off an integral multicommodity solution.

    Decomposes each commodity's flow separately (the superposition
    view: *"a multicommodity flow network may be visualized as the
    superposition of k single-commodity flow networks"*).
    """
    if not result.integral:
        raise ValueError("multicommodity solution is fractional; cannot realise circuits")
    mapping = Mapping()
    for k, com in enumerate(problem.commodities):
        layer = problem.net.copy()
        layer.zero_flow()
        for arc in layer.arcs:
            layer.arcs[arc.index].flow = round(result.commodity_flow(k, arc))
        sub = TransformedProblem(
            net=layer,
            source=com.source,
            sink=com.sink,
            arc_link={
                idx: link
                for idx, link in meta.arc_link.items()
            },
            request_of=meta.request_of,
            bypass=("u", com.name),
        )
        for assignment in _paths_to_mapping(
            layer.decompose_paths(com.source, com.sink), sub, mrsin
        ):
            mapping.add(assignment)
    return mapping

"""The MRSIN: a network bound to a resource pool and a request queue.

This is the system model of Section II, items 1–5: circuit switching,
one resource per request, one outstanding transmission per processor,
and the two-phase lifetime of an allocation — *"The circuit between a
processor and a resource can be released once the request has been
transmitted.  The processor can continue to make other requests, while
the resource will be busy until the task is completed."*
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from repro.core.mapping import Mapping
from repro.core.requests import DEFAULT_TYPE, Request, Resource
from repro.networks.topology import Circuit, MultistageNetwork

__all__ = ["MRSIN"]


class MRSIN:
    """A multistage resource sharing interconnection network.

    Parameters
    ----------
    network:
        The physical interconnection network.  Input ports are
        processors; each output port carries one resource.
    resource_types:
        Type of the resource on each output port (defaults to a
        homogeneous pool of :data:`~repro.core.requests.DEFAULT_TYPE`).
    preferences:
        Preference value per resource (defaults to all 1).
    max_priority, max_preference:
        The scales ``ymax`` / ``qmax`` of Transformation 2 (the
        paper's Fig. 5 uses 10 for both).
    """

    def __init__(
        self,
        network: MultistageNetwork,
        *,
        resource_types: Sequence[Hashable] | None = None,
        preferences: Sequence[int] | None = None,
        max_priority: int = 10,
        max_preference: int = 10,
    ) -> None:
        n_res = network.n_resources
        if resource_types is None:
            resource_types = [DEFAULT_TYPE] * n_res
        if preferences is None:
            preferences = [1] * n_res
        if len(resource_types) != n_res or len(preferences) != n_res:
            raise ValueError(
                f"need {n_res} resource types/preferences, got "
                f"{len(resource_types)}/{len(preferences)}"
            )
        self.network = network
        self.resources = [
            Resource(i, resource_types[i], preferences[i]) for i in range(n_res)
        ]
        self.max_priority = max_priority
        self.max_preference = max_preference
        self.pending: list[Request] = []
        # resource index -> circuit currently transmitting into it.
        self._transmitting: dict[int, Circuit] = {}
        # Monotonic counter bumped by every mutation of the state the
        # warm-start engines mirror (circuits, busy flags, faults — not
        # the request queue).  An engine that recorded the epoch while
        # in sync can skip its reconciliation scan when the epoch is
        # unchanged; see KernelFlowEngine in repro.core.incremental.
        self.state_epoch = 0
        # Set on every fail_* call; lets severed_resources() answer
        # "nothing severed" in O(1) between fault events.
        self._fault_dirty = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        """Number of processors (network input ports)."""
        return self.network.n_processors

    @property
    def n_resources(self) -> int:
        """Number of resources (network output ports)."""
        return self.network.n_resources

    @property
    def resource_types(self) -> set[Hashable]:
        """Distinct resource types in the pool."""
        return {res.resource_type for res in self.resources}

    @property
    def is_heterogeneous(self) -> bool:
        """More than one resource type present."""
        return len(self.resource_types) > 1

    @property
    def has_priorities(self) -> bool:
        """Any non-default priority or preference in play."""
        return any(req.priority != 1 for req in self.pending) or any(
            res.preference != 1 for res in self.resources
        )

    def free_resources(self, resource_type: Hashable | None = None) -> list[Resource]:
        """Available resources, optionally filtered by type."""
        return [
            res
            for res in self.resources
            if res.available
            and (resource_type is None or res.resource_type == resource_type)
        ]

    def requesting_processors(self) -> set[int]:
        """Processors with at least one pending request."""
        return {req.processor for req in self.pending}

    def transmitting_circuits(self) -> dict[int, Circuit]:
        """Resource index → circuit currently transmitting into it.

        A read-only snapshot of the allocation lifecycle state; the
        incremental flow engine uses it to register committed circuits
        (their held links and the arcs they map to) when it builds or
        rebuilds its persistent network.
        """
        return dict(self._transmitting)

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Queue a request for the next scheduling cycle.

        Model item 5: a processor transmits one task at a time, so at
        most one request per processor may be *scheduled* per cycle;
        extra requests simply stay queued.  The processor index must
        exist on the network.
        """
        if not 0 <= request.processor < self.n_processors:
            raise ValueError(
                f"processor {request.processor} outside [0, {self.n_processors})"
            )
        if request.resource_type not in self.resource_types:
            raise ValueError(
                f"no resource of type {request.resource_type!r} in this system"
            )
        self.pending.append(request)

    def submit_many(self, requests: Iterable[Request]) -> None:
        """Queue several requests."""
        for req in requests:
            self.submit(req)

    def schedulable_requests(self) -> list[Request]:
        """At most one pending request per processor, in queue order.

        Also excludes processors whose input link is still occupied by
        an in-flight transmission or is unusable (failed, or entering a
        failed switchbox) — a request from a disconnected processor
        stays queued until the fault is repaired.
        """
        chosen: dict[int, Request] = {}
        for req in self.pending:
            if req.processor in chosen:
                continue
            link = self.network.processor_link(req.processor)
            if link.occupied or not self.network.link_usable(link):
                continue
            chosen[req.processor] = req
        return list(chosen.values())

    # ------------------------------------------------------------------
    # Allocation lifecycle
    # ------------------------------------------------------------------
    def apply_mapping(self, mapping: Mapping) -> list[Circuit]:
        """Realise a mapping: establish circuits, mark resources busy.

        The mapping is validated first; on success each served request
        is removed from the queue and its resource enters the *busy*
        state with an active transmission circuit.  The split is
        check-then-mutate with no duplicated link checks: resource-side
        validation here (``validate(check_links=False)``), link-side
        validation inside the atomic
        :meth:`~repro.networks.topology.MultistageNetwork.establish_circuits`
        — together exactly the guarantees of a full ``validate`` call,
        and any failure leaves the system untouched.
        """
        mapping.validate(self, check_links=False)
        circuits = self.network.establish_circuits(
            [a.path for a in mapping.assignments]
        )
        for a, circuit in zip(mapping.assignments, circuits):
            self.resources[a.resource.index].busy = True
            self._transmitting[a.resource.index] = circuit
            if a.request in self.pending:
                self.pending.remove(a.request)
        self.state_epoch += 1
        return circuits

    def complete_transmission(self, resource_index: int) -> None:
        """Release the circuit into a resource; the resource stays busy.

        Model item 5: circuits are held only for the task transmission,
        not for the whole service time.
        """
        circuit = self._transmitting.pop(resource_index, None)
        if circuit is None:
            raise ValueError(f"resource {resource_index} has no transmitting circuit")
        self.network.release_circuit(circuit)
        self.state_epoch += 1

    def complete_service(self, resource_index: int) -> None:
        """Mark a resource free again (its task finished).

        Implicitly completes any transmission still in flight.
        """
        res = self.resources[resource_index]
        if not res.busy:
            raise ValueError(f"resource {resource_index} is not busy")
        # Inlined (rather than delegated to complete_transmission) so
        # the whole operation bumps state_epoch exactly once — the warm
        # kernel engine's epoch protocol counts one bump per public
        # mutator call.
        circuit = self._transmitting.pop(resource_index, None)
        if circuit is not None:
            self.network.release_circuit(circuit)
        res.busy = False
        self.state_epoch += 1

    def reset(self) -> None:
        """Drop all requests, circuits, busy states, and faults."""
        self.pending.clear()
        self._transmitting.clear()
        self.network.release_all()
        self.network.clear_faults()
        for res in self.resources:
            res.busy = False
            res.failed = False
        self.state_epoch += 1
        self._fault_dirty = False

    # ------------------------------------------------------------------
    # Fault lifecycle
    # ------------------------------------------------------------------
    # Failing a component never tears anything down by itself: a
    # circuit crossing a failed link/box (or feeding a failed resource)
    # becomes *severed* and shows up in :meth:`severed_resources`; the
    # owner (the allocation service) decides when to :meth:`revoke` it.
    # All fail/repair methods are idempotent and return whether the
    # component's state actually changed.

    def fail_link(self, index: int) -> bool:
        """Mark link ``index`` failed (excluded from all scheduling)."""
        link = self.network.links[index]
        if link.failed:
            return False
        link.failed = True
        self.state_epoch += 1
        self._fault_dirty = True
        return True

    def repair_link(self, index: int) -> bool:
        """Mark link ``index`` healthy again."""
        link = self.network.links[index]
        if not link.failed:
            return False
        link.failed = False
        self.state_epoch += 1
        return True

    def fail_switchbox(self, stage: int, box: int) -> bool:
        """Mark switchbox ``(stage, box)`` failed (routes nothing)."""
        sb = self.network.box(stage, box)
        if sb.failed:
            return False
        sb.failed = True
        self.state_epoch += 1
        self._fault_dirty = True
        return True

    def repair_switchbox(self, stage: int, box: int) -> bool:
        """Mark switchbox ``(stage, box)`` healthy again."""
        sb = self.network.box(stage, box)
        if not sb.failed:
            return False
        sb.failed = False
        self.state_epoch += 1
        return True

    def fail_resource(self, index: int) -> bool:
        """Mark resource ``index`` failed; any task it served is lost."""
        res = self.resources[index]
        if res.failed:
            return False
        res.failed = True
        self.state_epoch += 1
        self._fault_dirty = True
        return True

    def repair_resource(self, index: int) -> bool:
        """Mark resource ``index`` healthy (and idle) again."""
        res = self.resources[index]
        if not res.failed:
            return False
        res.failed = False
        self.state_epoch += 1
        return True

    def failed_components(self) -> dict[str, list]:
        """Snapshot of everything currently failed."""
        return {
            "links": self.network.failed_links(),
            "switchboxes": self.network.failed_switchboxes(),
            "resources": [res.index for res in self.resources if res.failed],
        }

    def severed_resources(self) -> list[int]:
        """Busy resources whose allocation a fault has broken.

        A resource is *severed* when it failed while serving a task, or
        when its in-flight transmission circuit crosses a failed link
        or switchbox.  Severed allocations must be reclaimed with
        :meth:`revoke` before their links/resources can be reused.

        Severance can only *appear* through a ``fail_*`` call (circuits
        are never established across failed components), so between
        fault events this answers from a cached "no faults since the
        last empty scan" flag in O(1) instead of walking every
        transmitting circuit; the full scan keeps running while severed
        allocations linger un-revoked.
        """
        if not self._fault_dirty:
            return []
        severed: set[int] = set()
        for idx, circuit in self._transmitting.items():
            if self.resources[idx].failed or self.network.circuit_severed(circuit):
                severed.add(idx)
        for res in self.resources:
            if res.failed and res.busy:
                severed.add(res.index)
        if not severed:
            self._fault_dirty = False
        return sorted(severed)

    def revoke(self, resource_index: int) -> Circuit | None:
        """Forcibly reclaim a (severed) allocation.

        Tears down the transmitting circuit if one is still held — the
        surviving links are freed; failed ones stay failed — and marks
        the resource idle (it remains unavailable while failed).
        Returns the circuit torn down, or ``None`` if transmission had
        already completed.
        """
        res = self.resources[resource_index]
        if not res.busy:
            raise ValueError(f"resource {resource_index} is not busy")
        circuit = self._transmitting.pop(resource_index, None)
        if circuit is not None:
            self.network.release_circuit(circuit)
        res.busy = False
        self.state_epoch += 1
        return circuit

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of resources currently busy."""
        if not self.resources:
            return 0.0
        return sum(res.busy for res in self.resources) / len(self.resources)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MRSIN({self.network.name!r}, pending={len(self.pending)}, "
            f"free={len(self.free_resources())}/{self.n_resources})"
        )

"""The paper's core contribution: optimal resource scheduling in MRSINs.

This subpackage turns the scheduling disciplines of Section III into
code:

- :mod:`repro.core.requests` — requests, resources, priorities and
  preferences (the model of Section II);
- :mod:`repro.core.model` — the :class:`MRSIN` state machine binding a
  :class:`~repro.networks.topology.MultistageNetwork` to a resource
  pool and a request queue;
- :mod:`repro.core.transform` — Transformations 1 and 2 and the
  heterogeneous (multicommodity) superposition, plus the inverse map
  from integral flows back to circuits (Theorems 1–3);
- :mod:`repro.core.scheduler` — the :class:`OptimalScheduler` facade
  dispatching per Table II;
- :mod:`repro.core.incremental` — the warm-start
  :class:`IncrementalFlowEngine` persisting one Transformation-1
  network across scheduling cycles;
- :mod:`repro.core.heuristic` — address-mapped greedy comparators
  (the paper's "heuristic routing", ~20% blocking);
- :mod:`repro.core.mapping` — request→resource mappings with their
  circuit paths.
"""

from repro.core.requests import DEFAULT_TYPE, Request, Resource
from repro.core.model import MRSIN
from repro.core.mapping import Assignment, Mapping
from repro.core.transform import (
    TransformedProblem,
    transformation1,
    transformation2,
    heterogeneous_max_problem,
    heterogeneous_min_cost_problem,
    extract_mapping,
    extract_multicommodity_mapping,
)
from repro.core.incremental import IncrementalFlowEngine, KernelFlowEngine
from repro.core.scheduler import Discipline, OptimalScheduler
from repro.core.heuristic import greedy_schedule, arbitrary_schedule, random_binding_schedule
from repro.core.exhaustive import exhaustive_schedule, count_candidate_mappings

__all__ = [
    "DEFAULT_TYPE",
    "Request",
    "Resource",
    "MRSIN",
    "Assignment",
    "Mapping",
    "TransformedProblem",
    "transformation1",
    "transformation2",
    "heterogeneous_max_problem",
    "heterogeneous_min_cost_problem",
    "extract_mapping",
    "extract_multicommodity_mapping",
    "Discipline",
    "IncrementalFlowEngine",
    "KernelFlowEngine",
    "OptimalScheduler",
    "greedy_schedule",
    "arbitrary_schedule",
    "random_binding_schedule",
    "exhaustive_schedule",
    "count_candidate_mappings",
]

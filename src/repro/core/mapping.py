"""Request→resource mappings and their circuit paths.

A *mapping* is the scheduler's output: a set of request→resource
assignments, each carrying the link path its circuit will occupy.  The
paper's optimality criteria are expressed over mappings: maximise
``len(mapping)`` (homogeneous) or minimise its total allocation cost
(priorities/preferences).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.core.requests import Request, Resource
from repro.networks.topology import Link

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.model import MRSIN

__all__ = ["Assignment", "Mapping"]


@dataclass(frozen=True)
class Assignment:
    """One request bound to one resource over a concrete path."""

    request: Request
    resource: Resource
    path: tuple[Link, ...]

    def __post_init__(self) -> None:
        if self.path:
            if self.path[0].src.box != self.request.processor:
                raise ValueError(
                    f"path starts at processor {self.path[0].src.box}, "
                    f"request is from {self.request.processor}"
                )
            if self.path[-1].dst.box != self.resource.index:
                raise ValueError(
                    f"path ends at resource {self.path[-1].dst.box}, "
                    f"assignment names {self.resource.index}"
                )


@dataclass
class Mapping:
    """A set of simultaneous assignments (one scheduling cycle's output)."""

    assignments: list[Assignment] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.assignments)

    def __iter__(self) -> Iterator[Assignment]:
        return iter(self.assignments)

    def add(self, assignment: Assignment) -> None:
        """Append one assignment."""
        self.assignments.append(assignment)

    @property
    def pairs(self) -> set[tuple[int, int]]:
        """The ``(processor, resource)`` pairs, as in the paper's examples."""
        return {(a.request.processor, a.resource.index) for a in self.assignments}

    def allocation_cost(self, max_priority: int, max_preference: int) -> float:
        """Total cost under Transformation 2's cost function.

        Served requests each cost ``(ymax - y_p) + (qmax - q_w)``;
        lower is better, so serving urgent requests on preferred
        resources is cheapest.
        """
        return float(
            sum(
                (max_priority - a.request.priority)
                + (max_preference - a.resource.preference)
                for a in self.assignments
            )
        )

    def validate(self, mrsin: "MRSIN", *, check_links: bool = True) -> None:
        """Check the mapping is simultaneously realisable on ``mrsin``.

        Verifies: distinct processors and resources, free available
        resources of the requested types, link-disjoint free paths.
        Raises :class:`ValueError` on the first violation.

        ``check_links=False`` skips the per-link half (occupancy,
        faults, disjointness) — for callers that are about to run those
        exact checks anyway as part of an atomic establish, such as
        :meth:`MRSIN.apply_mapping <repro.core.model.MRSIN.apply_mapping>`
        delegating to :meth:`MultistageNetwork.establish_circuits
        <repro.networks.topology.MultistageNetwork.establish_circuits>`.
        """
        procs = [a.request.processor for a in self.assignments]
        if len(set(procs)) != len(procs):
            raise ValueError("two assignments share a processor")
        ress = [a.resource.index for a in self.assignments]
        if len(set(ress)) != len(ress):
            raise ValueError("two assignments share a resource")
        used_links: set[int] = set()
        for a in self.assignments:
            actual = mrsin.resources[a.resource.index]
            if actual.busy:
                raise ValueError(f"resource {a.resource.index} is busy")
            if actual.failed:
                raise ValueError(f"resource {a.resource.index} has failed")
            if actual.resource_type != a.request.resource_type:
                raise ValueError(
                    f"type mismatch: request wants {a.request.resource_type!r}, "
                    f"resource {a.resource.index} is {actual.resource_type!r}"
                )
            if not check_links:
                continue
            for link in a.path:
                if link.occupied:
                    raise ValueError(f"path uses occupied link {link.index}")
                if not mrsin.network.link_usable(link):
                    raise ValueError(f"path uses failed link {link.index}")
                if link.index in used_links:
                    raise ValueError(f"two paths share link {link.index}")
                used_links.add(link.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"(p{p}, r{r})" for p, r in sorted(self.pairs))
        return f"Mapping{{{pairs}}}"

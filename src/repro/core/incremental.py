"""Warm-start incremental flow engine for per-tick scheduling.

The paper's distributed architecture re-runs Dinic *on top of the flow
left by previous scheduling iterations*; :func:`repro.flows.dinic.dinic`
supports exactly that, yet the cold scheduling path rebuilds the whole
Transformation-1 network from scratch every cycle.  Under sustained
load — many short-lived allocations against a slowly changing network —
that O(V+E) rebuild dominates steady-state cost.

:class:`IncrementalFlowEngine` keeps **one persistent Transformation-1
network per service** and evolves it with the system:

- every physical link is materialised once as a unit arc (occupied
  links as capacity-0 arcs), every processor gets a permanent
  ``s → (p, i)`` arc and every resource a permanent ``(r, j) → t`` arc;
- a scheduling cycle *enables* the source arcs of the batch
  (capacity 1), runs Dinic from the current flow — usually 0–2 phases
  instead of a full solve — and reads the new allocations off the flow
  *delta* (``decompose_paths(above_lower=True)``);
- committing a mapping **freezes** its unit paths (``lower = flow``) so
  later solves can neither reroute nor cancel a held circuit;
- ``release``/``end_transmission`` *retract* the released circuit's
  unit of flow along its recorded arc path in O(path length) via the
  ``arc_of_link`` index, instead of discarding the network.

Fallback-to-cold rules: the engine never trusts itself blindly.  Each
cycle it cross-checks every persistent arc against the physical
occupancy it mirrors (an O(E) scan of plain attribute reads — far
cheaper than a rebuild); any *flow* divergence (state mutated behind
the engine's back, a circuit it never saw released, a failed apply)
marks the engine dirty and the next cycle rebuilds from the live
MRSIN.  Pure *capacity* deltas — a link or switchbox failing or being
repaired, a resource failing or coming back — are absorbed in place by
the same scan (the arc's capacity is simply rewritten to mirror the
physical state), so fault churn never forces a cold rebuild on its
own.  A rebuild re-registers in-flight circuits from
:meth:`~repro.core.model.MRSIN.transmitting_circuits`, so even a
rebuilt network stays warm.

Because frozen arcs are exactly the arcs a cold Transformation-1 build
would omit, the maximum *additional* flow on the persistent network
equals the cold network's maximum flow — warm-start scheduling
allocates exactly as many requests per cycle as a from-scratch solve
(the differential tests pin this down).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.mapping import Assignment, Mapping
from repro.core.model import MRSIN
from repro.core.requests import Request, Resource
from repro.core.transform import TransformedProblem, _add_structure_arcs
from repro.flows.dinic import dinic
from repro.flows.graph import Arc, FlowNetwork
from repro.flows.kernel import CompiledNetwork, FlowKernel
from repro.networks.topology import Link
from repro.util.counters import OpCounter

__all__ = ["IncrementalFlowEngine", "KernelFlowEngine"]


def _build_persistent(
    mrsin: MRSIN,
) -> tuple[
    FlowNetwork,
    TransformedProblem,
    dict[int, Arc],
    dict[int, Arc],
    list[tuple[Link, Arc, tuple]],
    list[tuple[Resource, Arc]],
]:
    """Cold-build the persistent Transformation-1 network for ``mrsin``.

    Shared by both warm engines: every physical link is materialised
    once (occupied links as capacity-0 arcs), every processor gets a
    permanent closed ``s → (p, i)`` source arc, every resource a
    permanent ``(r, j) → t`` sink arc mirroring its busy/failed state.
    Returns ``(net, problem, source_arc, sink_arc, link_pairs,
    res_pairs)`` where the two ``*_pairs`` lists precompute the
    (physical object, mirroring arc[, adjacent boxes]) tuples the
    per-tick sync scans walk.
    """
    net = FlowNetwork()
    net.add_node("s")
    net.add_node("t")
    problem = TransformedProblem(net=net, source="s", sink="t")
    source_arc = {
        p: net.add_arc("s", ("p", p), capacity=0) for p in range(mrsin.n_processors)
    }
    resource_in = _add_structure_arcs(net, mrsin, problem, include_occupied=True)
    sink_arc = {
        res.index: net.add_arc(
            ("r", res.index), "t", capacity=0 if (res.busy or res.failed) else 1
        )
        for res in mrsin.resources
        if res.index in resource_in
    }
    network = mrsin.network

    def boxes_of(link: Link) -> tuple:
        adjacent = []
        for end in (link.src, link.dst):
            if end.kind in ("box_in", "box_out"):
                adjacent.append(network.box(end.stage, end.box))
        return tuple(adjacent)

    link_pairs = [
        (link, net.arcs[problem.arc_of_link[link.index]], boxes_of(link))
        for link in network.links
    ]
    res_pairs = [
        (res, sink_arc[res.index])
        for res in mrsin.resources
        if res.index in sink_arc
    ]
    return net, problem, source_arc, sink_arc, link_pairs, res_pairs


class IncrementalFlowEngine:
    """A persistent Transformation-1 network warm-started across cycles.

    Parameters
    ----------
    mrsin:
        The system whose scheduling cycles this engine serves.  The
        engine mirrors — never owns — its link/resource state.
    counter:
        Optional :class:`~repro.util.counters.OpCounter` charged with
        the solver operations of each warm solve (same cost model as
        the cold path).

    The engine only understands the homogeneous discipline
    (Transformation 1 / max flow).  Priority or heterogeneous cycles
    must be solved cold; feed their applied mappings back through
    :meth:`commit` so the persistent flow keeps tracking the physical
    circuits (:meth:`OptimalScheduler.schedule_incremental
    <repro.core.scheduler.OptimalScheduler.schedule_incremental>` does
    both).

    Statistics: ``builds`` counts cold (re)builds of the persistent
    network, ``warm_ticks`` the cycles scheduled on it, and
    ``last_new_flow`` the allocations found by the latest solve.
    """

    def __init__(self, mrsin: MRSIN, *, counter: OpCounter | None = None) -> None:
        self.mrsin = mrsin
        self.counter = counter
        self.builds = 0
        self.warm_ticks = 0
        self.last_new_flow = 0
        self._net: FlowNetwork | None = None
        self._problem: TransformedProblem | None = None
        self._source_arc: dict[int, Arc] = {}
        self._sink_arc: dict[int, Arc] = {}
        # (link, arc, adjacent switchboxes) triples for the sync scan.
        self._link_pairs: list[tuple[Link, Arc, tuple]] = []
        self._res_pairs: list = []
        # resource index -> the frozen arc path (source arc, link arcs,
        # sink arc) of its in-flight circuit.
        self._circuit_arcs: dict[int, list[Arc]] = {}
        self._enabled: set[int] = set()
        self._pending: list[tuple[int, int, list[Arc]]] | None = None
        self._pending_mapping: Mapping | None = None
        self._dirty = True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, requests: Sequence[Request]) -> Mapping:
        """One warm scheduling cycle: returns the optimal new mapping.

        Enables the batch's source arcs, augments Dinic from the
        current flow, and extracts the flow delta as assignments.  The
        mapping is *pending* until :meth:`commit`; scheduling again
        first rolls the uncommitted flow back.
        """
        reqs = list(requests)
        procs = [r.processor for r in reqs]
        if len(set(procs)) != len(procs):
            raise ValueError("at most one request per processor per cycle (model item 5)")
        self._rollback_pending()
        if self._net is None or self._dirty or not self._in_sync():
            self._build()
        net, problem = self._net, self._problem
        if net is None or problem is None:
            raise RuntimeError(
                "incremental engine invariant broken: _build() left no "
                "persistent network/problem behind"
            )
        problem.request_of.clear()
        wanted: set[int] = set()
        for req in reqs:
            arc = self._source_arc[req.processor]
            if arc.flow:
                raise ValueError(
                    f"processor {req.processor} still holds a transmitting circuit"
                )
            wanted.add(req.processor)
            problem.request_of[req.processor] = req
        for p in self._enabled - wanted:
            arc = self._source_arc[p]
            if not arc.flow:
                arc.capacity = 0
        for p in wanted:
            self._source_arc[p].capacity = 1
        self._enabled = wanted
        dinic(net, problem.source, problem.sink, counter=self.counter)
        mapping = Mapping()
        pending: list[tuple[int, int, list[Arc]]] = []
        for path in net.decompose_paths(problem.source, problem.sink, above_lower=True):
            proc = path[0].head[1]  # ("p", i)
            res = path[-1].tail[1]  # ("r", j)
            links = tuple(
                problem.arc_link[arc.index]
                for arc in path
                if arc.index in problem.arc_link
            )
            mapping.add(
                Assignment(
                    request=problem.request_of[proc],
                    resource=self.mrsin.resources[res],
                    path=links,
                )
            )
            pending.append((proc, res, list(path)))
        self._pending = pending
        self._pending_mapping = mapping
        self.last_new_flow = len(pending)
        self.warm_ticks += 1
        return mapping

    def commit(self, mapping: Mapping) -> None:
        """Record ``mapping`` as applied (circuits now live on the MRSIN).

        The engine's own pending mapping is frozen in place
        (``lower = flow`` along each unit path).  Any *other* mapping —
        a greedy degraded tick, a cold priority solve — is forced onto
        the persistent network through the ``arc_of_link`` index; if
        its paths cannot be reconciled with the current flow the engine
        marks itself dirty and the next cycle rebuilds.

        Call this right after :meth:`MRSIN.apply_mapping
        <repro.core.model.MRSIN.apply_mapping>` succeeded.
        """
        if self._net is None:
            return
        if mapping is self._pending_mapping:
            if self._pending is None:
                raise RuntimeError(
                    "incremental engine invariant broken: a pending mapping "
                    "was recorded without its pending flow paths"
                )
            for _proc, res, arcs in self._pending:
                for arc in arcs:
                    arc.lower = arc.flow
                self._circuit_arcs[res] = arcs
            self._pending = None
            self._pending_mapping = None
            return
        self._rollback_pending()
        for a in mapping.assignments:
            arcs = self._path_arcs(a.request.processor, a.path, a.resource.index)
            if arcs is None or any(arc.flow != 0 for arc in arcs):
                self._dirty = True
                return
            for arc in arcs:
                arc.capacity = 1
                arc.flow = 1
                arc.lower = 1
            self._circuit_arcs[a.resource.index] = arcs

    # ------------------------------------------------------------------
    # Release lifecycle (the retraction half of warm starting)
    # ------------------------------------------------------------------
    def note_transmission_end(self, resource: int) -> None:
        """The circuit into ``resource`` was torn down; it stays busy.

        Retracts the recorded unit of flow along the circuit's arcs
        (freeing the links for future solves) and closes the resource's
        sink arc until the task completes.
        """
        if self._net is None:
            return
        arcs = self._circuit_arcs.pop(resource, None)
        if arcs is None:
            self._dirty = True  # a circuit the engine never registered
            return
        self._retract(arcs)
        self._sink_arc[resource].capacity = 0

    def note_release(self, resource: int) -> None:
        """``resource`` finished service (or was revoked): free it.

        Retracts the circuit's flow if one was still held.  A failed
        resource stays closed (capacity 0) until the sync scan sees it
        repaired.
        """
        if self._net is None:
            return
        arcs = self._circuit_arcs.pop(resource, None)
        if arcs is not None:
            self._retract(arcs)
        sink = self._sink_arc.get(resource)
        if sink is None:
            return
        if sink.flow:
            self._dirty = True  # an unregistered circuit is still parked here
            return
        sink.capacity = 0 if self.mrsin.resources[resource].failed else 1

    def invalidate(self) -> None:
        """Force a cold rebuild on the next scheduling cycle."""
        self._dirty = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build(self) -> None:
        """Cold build of the persistent network from the live MRSIN."""
        (
            net,
            problem,
            self._source_arc,
            self._sink_arc,
            self._link_pairs,
            self._res_pairs,
        ) = _build_persistent(self.mrsin)
        self._net = net
        self._problem = problem
        self._circuit_arcs = {}
        self._enabled = set()
        self._pending = None
        self._pending_mapping = None
        # Promote in-flight circuits from blocked arcs to frozen unit
        # flows so their eventual release retracts in O(path) instead of
        # forcing another rebuild.
        for res, circuit in self.mrsin.transmitting_circuits().items():
            arcs = self._path_arcs(circuit.processor, circuit.links, res)
            if arcs is None:
                continue
            for arc in arcs:
                arc.capacity = 1
                arc.flow = 1
                arc.lower = 1
            self._circuit_arcs[res] = arcs
        self._dirty = False
        self.builds += 1

    def _path_arcs(
        self, processor: int, links: Sequence[Link], resource: int
    ) -> list[Arc] | None:
        """The arc path (source, links, sink) of a physical circuit."""
        net, problem = self._net, self._problem
        src = self._source_arc.get(processor)
        dst = self._sink_arc.get(resource)
        if net is None or problem is None or src is None or dst is None:
            return None
        arcs = [src]
        for link in links:
            idx = problem.arc_of_link.get(link.index)
            if idx is None:
                return None
            arcs.append(net.arcs[idx])
        arcs.append(dst)
        return arcs

    def _retract(self, arcs: list[Arc]) -> None:
        """Remove one committed unit of flow along a circuit's arcs."""
        for arc in arcs:
            arc.flow = 0
            arc.lower = 0
        src = arcs[0]  # s -> (p, i): closed until the processor requests again
        src.capacity = 0
        self._enabled.discard(src.head[1])

    def _rollback_pending(self) -> None:
        """Drop un-committed flow from a solve whose mapping went unused."""
        if self._pending:
            for _proc, _res, arcs in self._pending:
                for arc in arcs:
                    arc.flow = arc.lower
        self._pending = None
        self._pending_mapping = None

    def _in_sync(self) -> bool:
        """Reconcile every persistent arc with the physical state.

        An O(|links| + |resources|) attribute scan — the cheap guard
        that lets the engine fall back to a cold rebuild whenever the
        MRSIN's *flow* state was mutated behind its back (a circuit
        appearing or vanishing the engine never saw).  Pure capacity
        deltas — fault and repair events on links, switchboxes, and
        resources, or an untracked circuit released while the engine
        was cold — are absorbed in place: the arc's capacity is
        rewritten to mirror the component (0 while failed, 1 while
        free and healthy), so fault churn alone never costs a rebuild.
        """
        if self._net is None or self._problem is None:
            return False
        for link, arc, boxes in self._link_pairs:
            if link.occupied:
                if arc.capacity - arc.flow > 0 or arc.flow != arc.lower:
                    return False
            elif arc.flow != 0:
                return False
            else:
                usable = not link.failed
                for box in boxes:
                    if box.failed:
                        usable = False
                        break
                arc.capacity = 1 if usable else 0
        for res, arc in self._res_pairs:
            if res.busy:
                if arc.capacity - arc.flow > 0 or arc.flow != arc.lower:
                    return False
            elif arc.flow != 0:
                return False
            else:
                arc.capacity = 0 if res.failed else 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "empty" if self._net is None else f"|E|={self._net.n_arcs}"
        return (
            f"IncrementalFlowEngine({self.mrsin.network.name!r}, {state}, "
            f"builds={self.builds}, warm_ticks={self.warm_ticks})"
        )


class KernelFlowEngine:
    """The warm-start engine re-hosted on the flat-array flow kernel.

    Public API, semantics, and fallback-to-cold rules are those of
    :class:`IncrementalFlowEngine` (schedule → commit / rollback, the
    ``note_*`` retraction lifecycle, absorb-capacity-deltas-else-rebuild
    reconciliation) — the differential tests hold the two engines to
    identical per-tick flow values.  What changes is the hot-path
    representation:

    - the persistent Transformation-1 network is **compiled once** per
      build onto a :class:`~repro.flows.kernel.FlowKernel`; every
      per-tick operation (enable/disable source arcs, solve, extract
      the flow delta, freeze, retract) runs on flat int arrays.  A
      unit arc pair ``(a, a ^ 1)`` encodes the arc lifecycle directly:
      ``(1, 0)`` free, ``(0, 1)`` carrying uncommitted flow, ``(0, 0)``
      frozen (committed circuit, tracked in ``_frozen``) or disabled;
    - the O(links + resources) reconciliation scan is skipped entirely
      when :attr:`MRSIN.state_epoch <repro.core.model.MRSIN>` still
      equals the epoch recorded at the last sync.  The engine's own
      mutators re-adopt the epoch only when it advanced by exactly the
      bumps their paired MRSIN call produces; any other movement leaves
      the epoch stale and the next cycle scans (the always-safe
      fallback).  Consequently :meth:`commit` /
      :meth:`note_transmission_end` / :meth:`note_release` must be
      called *immediately after* their MRSIN counterpart
      (``apply_mapping`` / ``complete_transmission`` /
      ``complete_service``/``revoke``), with no interleaved mutations —
      the same contract the object engine documents, here load-bearing.
      State mutated behind the MRSIN API (e.g. directly on the network)
      requires :meth:`invalidate`.

    The object engine remains the teaching implementation and the
    differential oracle; this one exists to be fast.
    """

    def __init__(self, mrsin: MRSIN, *, counter: OpCounter | None = None) -> None:
        self.mrsin = mrsin
        self.counter = counter
        self.builds = 0
        self.warm_ticks = 0
        self.last_new_flow = 0
        self._compiled: CompiledNetwork | None = None
        self._kernel: FlowKernel | None = None
        self._s = -1
        self._t = -1
        # processor / resource index <-> kernel forward-arc id (always
        # even; the reverse arc is id ^ 1).
        self._src_pair: dict[int, int] = {}
        self._sink_pair: dict[int, int] = {}
        self._proc_of_arc: dict[int, int] = {}
        self._res_of_arc: dict[int, int] = {}
        self._arc_of_link: dict[int, int] = {}
        self._link_of_arc: dict[int, Link] = {}
        # (physical object, kernel arc[, adjacent boxes]) tuples for the
        # reconciliation scan.
        self._link_tuples: list[tuple[Link, int, tuple]] = []
        self._res_tuples: list[tuple[Resource, int]] = []
        # resource index -> frozen kernel arc path of its circuit.
        self._circuit_arcs: dict[int, list[int]] = {}
        # forward arcs whose (0, 0) pair means one committed unit, not
        # "disabled" — the scan needs the distinction.
        self._frozen: set[int] = set()
        self._enabled: set[int] = set()
        self._request_of: dict[int, Request] = {}
        self._pending: list[tuple[int, int, list[int]]] | None = None
        self._pending_mapping: Mapping | None = None
        # Static level labeling (node -> physical layer depth) computed
        # once per build; Transformation-1 networks are layered DAGs,
        # so this doubles as the first phase's BFS result every tick.
        self._levels: list[int] | None = None
        self._dirty = True
        self._synced_epoch = -1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, requests: Sequence[Request]) -> Mapping:
        """One warm scheduling cycle on the kernel; see
        :meth:`IncrementalFlowEngine.schedule` for the contract."""
        reqs = list(requests)
        procs = [r.processor for r in reqs]
        if len(set(procs)) != len(procs):
            raise ValueError("at most one request per processor per cycle (model item 5)")
        self._rollback_pending()
        if self._kernel is None or self._dirty:
            self._build()
        elif self.mrsin.state_epoch != self._synced_epoch:
            if self._scan():
                self._synced_epoch = self.mrsin.state_epoch
            else:
                self._build()
        kernel = self._kernel
        if kernel is None:
            raise RuntimeError(
                "kernel engine invariant broken: _build() left no kernel behind"
            )
        cap = kernel.cap
        self._request_of.clear()
        wanted: set[int] = set()
        for req in reqs:
            a = self._src_pair[req.processor]
            if a in self._frozen:
                raise ValueError(
                    f"processor {req.processor} still holds a transmitting circuit"
                )
            wanted.add(req.processor)
            self._request_of[req.processor] = req
        for p in self._enabled - wanted:
            a = self._src_pair[p]
            if a not in self._frozen:
                cap[a] = 0
        for p in wanted:
            cap[self._src_pair[p]] = 1
        self._enabled = wanted
        baseline = kernel.snapshot()
        touched: list[int] = []
        aug_paths: list[list[int]] = []
        added = kernel.max_flow(
            self._s,
            self._t,
            levels=self._levels,
            value_bound=len(wanted),
            touched=touched,
            paths_out=aug_paths,
        )
        kernel.charge(self.counter, baseline)
        # Fast path: no reverse arc was pushed on (all touched ids are
        # even), so no unit was cancelled or rerouted — on this
        # unit-capacity network each augmentation carried exactly one
        # unit (`added` paths in total) and the recorded paths are the
        # delta decomposition verbatim.  Sorting by source arc matches
        # the ascending-arc scan order of the general decomposition, so
        # both branches yield byte-for-byte identical mappings.
        if len(aug_paths) == added and not any(a & 1 for a in touched):
            paths = sorted(aug_paths, key=lambda p: p[0])
        else:
            paths = self._delta_paths(kernel, touched)
        mapping = Mapping()
        pending: list[tuple[int, int, list[int]]] = []
        for path in paths:
            proc = self._proc_of_arc[path[0]]
            res = self._res_of_arc[path[-1]]
            links = tuple(
                self._link_of_arc[a] for a in path if a in self._link_of_arc
            )
            mapping.add(
                Assignment(
                    request=self._request_of[proc],
                    resource=self.mrsin.resources[res],
                    path=links,
                )
            )
            pending.append((proc, res, path))
        self._pending = pending
        self._pending_mapping = mapping
        self.last_new_flow = len(pending)
        self.warm_ticks += 1
        return mapping

    def commit(self, mapping: Mapping) -> None:
        """Record ``mapping`` as applied; call directly after
        :meth:`MRSIN.apply_mapping <repro.core.model.MRSIN.apply_mapping>`
        (no interleaved MRSIN mutations — see the class docstring)."""
        kernel = self._kernel
        if kernel is None:
            return
        cap = kernel.cap
        if mapping is self._pending_mapping:
            if self._pending is None:
                raise RuntimeError(
                    "kernel engine invariant broken: a pending mapping was "
                    "recorded without its pending flow paths"
                )
            for _proc, res, arcs in self._pending:
                for a in arcs:
                    cap[a] = 0
                    cap[a ^ 1] = 0
                    self._frozen.add(a)
                self._circuit_arcs[res] = arcs
            self._pending = None
            self._pending_mapping = None
            self._adopt_epoch(1)
            return
        self._rollback_pending()
        for asg in mapping.assignments:
            arcs = self._path_arcs(asg.request.processor, asg.path, asg.resource.index)
            if arcs is None or any(a in self._frozen or cap[a ^ 1] for a in arcs):
                self._dirty = True
                return
            for a in arcs:
                cap[a] = 0
                cap[a ^ 1] = 0
                self._frozen.add(a)
            self._circuit_arcs[asg.resource.index] = arcs
        self._adopt_epoch(1)

    # ------------------------------------------------------------------
    # Release lifecycle
    # ------------------------------------------------------------------
    def note_transmission_end(self, resource: int) -> None:
        """Circuit into ``resource`` torn down (resource stays busy);
        call directly after ``MRSIN.complete_transmission``."""
        kernel = self._kernel
        if kernel is None:
            return
        arcs = self._circuit_arcs.pop(resource, None)
        if arcs is None:
            self._dirty = True  # a circuit the engine never registered
            return
        self._retract(arcs)
        kernel.cap[self._sink_pair[resource]] = 0
        self._adopt_epoch(1)

    def note_release(self, resource: int) -> None:
        """``resource`` freed (service complete or revoked); call
        directly after ``MRSIN.complete_service`` / ``MRSIN.revoke``."""
        kernel = self._kernel
        if kernel is None:
            return
        arcs = self._circuit_arcs.pop(resource, None)
        if arcs is not None:
            self._retract(arcs)
        a = self._sink_pair.get(resource)
        if a is None:
            return
        cap = kernel.cap
        if a in self._frozen or cap[a ^ 1]:
            self._dirty = True  # an unregistered circuit is still parked here
            return
        cap[a] = 0 if self.mrsin.resources[resource].failed else 1
        self._adopt_epoch(1)

    def invalidate(self) -> None:
        """Force a cold rebuild on the next scheduling cycle."""
        self._dirty = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build(self) -> None:
        """Cold build: construct the persistent network, compile it."""
        net, problem, source_arc, sink_arc, link_pairs, res_pairs = _build_persistent(
            self.mrsin
        )
        compiled = net.compile()
        kernel = compiled.kernel
        self._compiled = compiled
        self._kernel = kernel
        self._s = compiled.node_of["s"]
        self._t = compiled.node_of["t"]
        self._src_pair = {p: 2 * arc.index for p, arc in source_arc.items()}
        self._proc_of_arc = {a: p for p, a in self._src_pair.items()}
        self._sink_pair = {r: 2 * arc.index for r, arc in sink_arc.items()}
        self._res_of_arc = {a: r for r, a in self._sink_pair.items()}
        self._arc_of_link = {
            lidx: 2 * aidx for lidx, aidx in problem.arc_of_link.items()
        }
        self._link_of_arc = {2 * aidx: link for aidx, link in problem.arc_link.items()}
        self._link_tuples = [
            (link, 2 * arc.index, boxes) for link, arc, boxes in link_pairs
        ]
        self._res_tuples = [(res, 2 * arc.index) for res, arc in res_pairs]
        self._circuit_arcs = {}
        self._frozen = set()
        self._enabled = set()
        self._request_of = {}
        self._pending = None
        self._pending_mapping = None
        # Promote in-flight circuits to frozen unit flows (their arcs
        # compiled to (0, 0) already — occupied links and busy sinks are
        # capacity 0 in the persistent build).
        cap = kernel.cap
        for res, circuit in self.mrsin.transmitting_circuits().items():
            arcs = self._path_arcs(circuit.processor, circuit.links, res)
            if arcs is None:
                continue
            for a in arcs:
                cap[a] = 0
                cap[a ^ 1] = 0
                self._frozen.add(a)
            self._circuit_arcs[res] = arcs
        # Static levels: BFS over the forward arcs *ignoring* capacity.
        # Between solves no pair carries a reverse residual, so the
        # residual graph at solve time is always a subgraph of this one
        # and the labeling is a sound (here: exact) first-phase hint.
        levels = [-1] * kernel.n_nodes
        levels[self._s] = 0
        bfs = [self._s]
        for v in bfs:
            lv = levels[v] + 1
            a = kernel.head[v]
            while a != -1:
                if not a & 1:
                    w = kernel.to[a]
                    if levels[w] < 0:
                        levels[w] = lv
                        bfs.append(w)
                a = kernel.next_arc[a]
        self._levels = levels
        self._dirty = False
        self._synced_epoch = self.mrsin.state_epoch
        self.builds += 1

    def _scan(self) -> bool:
        """Reconcile kernel arcs with the physical state (the epoch
        moved); absorbs capacity deltas, detects flow divergence."""
        kernel = self._kernel
        if kernel is None:
            return False
        cap = kernel.cap
        frozen = self._frozen
        for link, a, boxes in self._link_tuples:
            if link.occupied:
                if cap[a] or cap[a ^ 1]:
                    return False
            else:
                if a in frozen or cap[a ^ 1]:
                    return False
                usable = not link.failed
                for box in boxes:
                    if box.failed:
                        usable = False
                        break
                cap[a] = 1 if usable else 0
        for res, a in self._res_tuples:
            if res.busy:
                if cap[a] or cap[a ^ 1]:
                    return False
            else:
                if a in frozen or cap[a ^ 1]:
                    return False
                cap[a] = 0 if res.failed else 1
        return True

    def _adopt_epoch(self, expected: int) -> None:
        """Stay on the epoch fast path only when the MRSIN moved by
        *exactly* the bumps our paired mutator produces (or not at all
        — the paired call was skipped).  Any other movement means a
        foreign mutation slipped in; the recorded epoch is left stale
        so the next cycle runs the reconciliation scan."""
        delta = self.mrsin.state_epoch - self._synced_epoch
        if delta == 0 or delta == expected:
            self._synced_epoch = self.mrsin.state_epoch

    def _delta_paths(
        self, kernel: FlowKernel, touched: Sequence[int] | None = None
    ) -> list[list[int]]:
        """Decompose the uncommitted flow into s-t paths of kernel arcs.

        Mirrors ``FlowNetwork.decompose_paths(above_lower=True)``:
        frozen pairs are (0, 0) so only the new flow shows up, and a
        revisited node cuts the enclosed cycle out of the path.  Cycle
        components (cut or unreachable) carry no s-t value; their flow
        is cancelled in place so it cannot read as stale flow later.

        ``touched`` (the arc ids the solve pushed on) narrows the
        candidate scan from every arc pair to the pairs the solve
        actually moved: new flow can only sit on a pushed-on pair, so
        the candidate sets are identical — sorting keeps the extraction
        order (and therefore the mapping) byte-for-byte deterministic
        with the full scan.
        """
        cap = kernel.cap
        to = kernel.to
        if touched is None:
            candidates: Sequence[int] = range(0, kernel.n_arcs, 2)
        else:
            candidates = sorted({a & -2 for a in touched})
        delta = [a for a in candidates if cap[a ^ 1]]
        avail: dict[int, int] = {}
        out: dict[int, list[int]] = {}
        for a in delta:
            avail[a] = cap[a ^ 1]
            out.setdefault(to[a ^ 1], []).append(a)
        paths: list[list[int]] = []
        cut_arcs: list[int] = []
        s, t = self._s, self._t
        source_out = out.get(s, [])
        while True:
            start = -1
            for a in source_out:
                if avail[a]:
                    start = a
                    break
            if start < 0:
                break
            avail[start] -= 1
            path = [start]
            on_path = {s: 0, to[start]: 1}
            v = to[start]
            while v != t:
                nxt = -1
                for a in out.get(v, ()):
                    if avail[a]:
                        nxt = a
                        break
                if nxt < 0:
                    raise RuntimeError(
                        "kernel delta decomposition ran out of flow mid-path; "
                        "the residual arrays violate conservation"
                    )
                avail[nxt] -= 1
                w = to[nxt]
                pos = on_path.get(w)
                if pos is not None:
                    # Cycle: cut it out of the path; its units are
                    # cancelled below, exactly like decompose_paths.
                    cut_arcs.extend(path[pos:])
                    cut_arcs.append(nxt)
                    for a in path[pos:]:
                        on_path.pop(to[a], None)
                    del path[pos:]
                    v = w
                    continue
                path.append(nxt)
                on_path[w] = len(path)
                v = w
            paths.append(path)
        for a in cut_arcs:
            cap[a] += 1
            cap[a ^ 1] -= 1
        for a, left in avail.items():
            if left:
                cap[a] += left
                cap[a ^ 1] -= left
        return paths

    def _path_arcs(
        self, processor: int, links: Sequence[Link], resource: int
    ) -> list[int] | None:
        """The kernel arc path (source, links, sink) of a circuit."""
        src = self._src_pair.get(processor)
        dst = self._sink_pair.get(resource)
        if self._kernel is None or src is None or dst is None:
            return None
        arcs = [src]
        for link in links:
            a = self._arc_of_link.get(link.index)
            if a is None:
                return None
            arcs.append(a)
        arcs.append(dst)
        return arcs

    def _retract(self, arcs: list[int]) -> None:
        """Remove one committed unit of flow along a circuit's arcs."""
        kernel = self._kernel
        if kernel is None:
            return
        cap = kernel.cap
        for a in arcs:
            self._frozen.discard(a)
            cap[a] = 1
            cap[a ^ 1] = 0
        src = arcs[0]  # s -> (p, i): closed until the processor requests again
        cap[src] = 0
        self._enabled.discard(self._proc_of_arc[src])

    def _rollback_pending(self) -> None:
        """Drop un-committed flow from a solve whose mapping went unused."""
        kernel = self._kernel
        if self._pending and kernel is not None:
            cap = kernel.cap
            for _proc, _res, arcs in self._pending:
                for a in arcs:
                    cap[a] = 1
                    cap[a ^ 1] = 0
        self._pending = None
        self._pending_mapping = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kernel = self._kernel
        state = "empty" if kernel is None else f"|E|={kernel.n_arcs // 2} pairs"
        return (
            f"KernelFlowEngine({self.mrsin.network.name!r}, {state}, "
            f"builds={self.builds}, warm_ticks={self.warm_ticks})"
        )

"""Warm-start incremental flow engine for per-tick scheduling.

The paper's distributed architecture re-runs Dinic *on top of the flow
left by previous scheduling iterations*; :func:`repro.flows.dinic.dinic`
supports exactly that, yet the cold scheduling path rebuilds the whole
Transformation-1 network from scratch every cycle.  Under sustained
load — many short-lived allocations against a slowly changing network —
that O(V+E) rebuild dominates steady-state cost.

:class:`IncrementalFlowEngine` keeps **one persistent Transformation-1
network per service** and evolves it with the system:

- every physical link is materialised once as a unit arc (occupied
  links as capacity-0 arcs), every processor gets a permanent
  ``s → (p, i)`` arc and every resource a permanent ``(r, j) → t`` arc;
- a scheduling cycle *enables* the source arcs of the batch
  (capacity 1), runs Dinic from the current flow — usually 0–2 phases
  instead of a full solve — and reads the new allocations off the flow
  *delta* (``decompose_paths(above_lower=True)``);
- committing a mapping **freezes** its unit paths (``lower = flow``) so
  later solves can neither reroute nor cancel a held circuit;
- ``release``/``end_transmission`` *retract* the released circuit's
  unit of flow along its recorded arc path in O(path length) via the
  ``arc_of_link`` index, instead of discarding the network.

Fallback-to-cold rules: the engine never trusts itself blindly.  Each
cycle it cross-checks every persistent arc against the physical
occupancy it mirrors (an O(E) scan of plain attribute reads — far
cheaper than a rebuild); any *flow* divergence (state mutated behind
the engine's back, a circuit it never saw released, a failed apply)
marks the engine dirty and the next cycle rebuilds from the live
MRSIN.  Pure *capacity* deltas — a link or switchbox failing or being
repaired, a resource failing or coming back — are absorbed in place by
the same scan (the arc's capacity is simply rewritten to mirror the
physical state), so fault churn never forces a cold rebuild on its
own.  A rebuild re-registers in-flight circuits from
:meth:`~repro.core.model.MRSIN.transmitting_circuits`, so even a
rebuilt network stays warm.

Because frozen arcs are exactly the arcs a cold Transformation-1 build
would omit, the maximum *additional* flow on the persistent network
equals the cold network's maximum flow — warm-start scheduling
allocates exactly as many requests per cycle as a from-scratch solve
(the differential tests pin this down).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.mapping import Assignment, Mapping
from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.core.transform import TransformedProblem, _add_structure_arcs
from repro.flows.dinic import dinic
from repro.flows.graph import Arc, FlowNetwork
from repro.networks.topology import Link
from repro.util.counters import OpCounter

__all__ = ["IncrementalFlowEngine"]


class IncrementalFlowEngine:
    """A persistent Transformation-1 network warm-started across cycles.

    Parameters
    ----------
    mrsin:
        The system whose scheduling cycles this engine serves.  The
        engine mirrors — never owns — its link/resource state.
    counter:
        Optional :class:`~repro.util.counters.OpCounter` charged with
        the solver operations of each warm solve (same cost model as
        the cold path).

    The engine only understands the homogeneous discipline
    (Transformation 1 / max flow).  Priority or heterogeneous cycles
    must be solved cold; feed their applied mappings back through
    :meth:`commit` so the persistent flow keeps tracking the physical
    circuits (:meth:`OptimalScheduler.schedule_incremental
    <repro.core.scheduler.OptimalScheduler.schedule_incremental>` does
    both).

    Statistics: ``builds`` counts cold (re)builds of the persistent
    network, ``warm_ticks`` the cycles scheduled on it, and
    ``last_new_flow`` the allocations found by the latest solve.
    """

    def __init__(self, mrsin: MRSIN, *, counter: OpCounter | None = None) -> None:
        self.mrsin = mrsin
        self.counter = counter
        self.builds = 0
        self.warm_ticks = 0
        self.last_new_flow = 0
        self._net: FlowNetwork | None = None
        self._problem: TransformedProblem | None = None
        self._source_arc: dict[int, Arc] = {}
        self._sink_arc: dict[int, Arc] = {}
        # (link, arc, adjacent switchboxes) triples for the sync scan.
        self._link_pairs: list[tuple[Link, Arc, tuple]] = []
        self._res_pairs: list = []
        # resource index -> the frozen arc path (source arc, link arcs,
        # sink arc) of its in-flight circuit.
        self._circuit_arcs: dict[int, list[Arc]] = {}
        self._enabled: set[int] = set()
        self._pending: list[tuple[int, int, list[Arc]]] | None = None
        self._pending_mapping: Mapping | None = None
        self._dirty = True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, requests: Sequence[Request]) -> Mapping:
        """One warm scheduling cycle: returns the optimal new mapping.

        Enables the batch's source arcs, augments Dinic from the
        current flow, and extracts the flow delta as assignments.  The
        mapping is *pending* until :meth:`commit`; scheduling again
        first rolls the uncommitted flow back.
        """
        reqs = list(requests)
        procs = [r.processor for r in reqs]
        if len(set(procs)) != len(procs):
            raise ValueError("at most one request per processor per cycle (model item 5)")
        self._rollback_pending()
        if self._net is None or self._dirty or not self._in_sync():
            self._build()
        net, problem = self._net, self._problem
        if net is None or problem is None:
            raise RuntimeError(
                "incremental engine invariant broken: _build() left no "
                "persistent network/problem behind"
            )
        problem.request_of.clear()
        wanted: set[int] = set()
        for req in reqs:
            arc = self._source_arc[req.processor]
            if arc.flow:
                raise ValueError(
                    f"processor {req.processor} still holds a transmitting circuit"
                )
            wanted.add(req.processor)
            problem.request_of[req.processor] = req
        for p in self._enabled - wanted:
            arc = self._source_arc[p]
            if not arc.flow:
                arc.capacity = 0
        for p in wanted:
            self._source_arc[p].capacity = 1
        self._enabled = wanted
        dinic(net, problem.source, problem.sink, counter=self.counter)
        mapping = Mapping()
        pending: list[tuple[int, int, list[Arc]]] = []
        for path in net.decompose_paths(problem.source, problem.sink, above_lower=True):
            proc = path[0].head[1]  # ("p", i)
            res = path[-1].tail[1]  # ("r", j)
            links = tuple(
                problem.arc_link[arc.index]
                for arc in path
                if arc.index in problem.arc_link
            )
            mapping.add(
                Assignment(
                    request=problem.request_of[proc],
                    resource=self.mrsin.resources[res],
                    path=links,
                )
            )
            pending.append((proc, res, list(path)))
        self._pending = pending
        self._pending_mapping = mapping
        self.last_new_flow = len(pending)
        self.warm_ticks += 1
        return mapping

    def commit(self, mapping: Mapping) -> None:
        """Record ``mapping`` as applied (circuits now live on the MRSIN).

        The engine's own pending mapping is frozen in place
        (``lower = flow`` along each unit path).  Any *other* mapping —
        a greedy degraded tick, a cold priority solve — is forced onto
        the persistent network through the ``arc_of_link`` index; if
        its paths cannot be reconciled with the current flow the engine
        marks itself dirty and the next cycle rebuilds.

        Call this right after :meth:`MRSIN.apply_mapping
        <repro.core.model.MRSIN.apply_mapping>` succeeded.
        """
        if self._net is None:
            return
        if mapping is self._pending_mapping:
            if self._pending is None:
                raise RuntimeError(
                    "incremental engine invariant broken: a pending mapping "
                    "was recorded without its pending flow paths"
                )
            for _proc, res, arcs in self._pending:
                for arc in arcs:
                    arc.lower = arc.flow
                self._circuit_arcs[res] = arcs
            self._pending = None
            self._pending_mapping = None
            return
        self._rollback_pending()
        for a in mapping.assignments:
            arcs = self._path_arcs(a.request.processor, a.path, a.resource.index)
            if arcs is None or any(arc.flow != 0 for arc in arcs):
                self._dirty = True
                return
            for arc in arcs:
                arc.capacity = 1
                arc.flow = 1
                arc.lower = 1
            self._circuit_arcs[a.resource.index] = arcs

    # ------------------------------------------------------------------
    # Release lifecycle (the retraction half of warm starting)
    # ------------------------------------------------------------------
    def note_transmission_end(self, resource: int) -> None:
        """The circuit into ``resource`` was torn down; it stays busy.

        Retracts the recorded unit of flow along the circuit's arcs
        (freeing the links for future solves) and closes the resource's
        sink arc until the task completes.
        """
        if self._net is None:
            return
        arcs = self._circuit_arcs.pop(resource, None)
        if arcs is None:
            self._dirty = True  # a circuit the engine never registered
            return
        self._retract(arcs)
        self._sink_arc[resource].capacity = 0

    def note_release(self, resource: int) -> None:
        """``resource`` finished service (or was revoked): free it.

        Retracts the circuit's flow if one was still held.  A failed
        resource stays closed (capacity 0) until the sync scan sees it
        repaired.
        """
        if self._net is None:
            return
        arcs = self._circuit_arcs.pop(resource, None)
        if arcs is not None:
            self._retract(arcs)
        sink = self._sink_arc.get(resource)
        if sink is None:
            return
        if sink.flow:
            self._dirty = True  # an unregistered circuit is still parked here
            return
        sink.capacity = 0 if self.mrsin.resources[resource].failed else 1

    def invalidate(self) -> None:
        """Force a cold rebuild on the next scheduling cycle."""
        self._dirty = True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build(self) -> None:
        """Cold build of the persistent network from the live MRSIN."""
        net = FlowNetwork()
        net.add_node("s")
        net.add_node("t")
        problem = TransformedProblem(net=net, source="s", sink="t")
        self._source_arc = {
            p: net.add_arc("s", ("p", p), capacity=0)
            for p in range(self.mrsin.n_processors)
        }
        resource_in = _add_structure_arcs(net, self.mrsin, problem, include_occupied=True)
        self._sink_arc = {
            res.index: net.add_arc(
                ("r", res.index), "t", capacity=0 if (res.busy or res.failed) else 1
            )
            for res in self.mrsin.resources
            if res.index in resource_in
        }
        self._net = net
        self._problem = problem
        # (physical object, mirroring arc[, adjacent boxes]) tuples for
        # the per-tick sync scan — precomputed so _in_sync is pure
        # attribute reads (box fault flags included).
        network = self.mrsin.network
        def boxes_of(link: Link) -> tuple:
            adjacent = []
            for end in (link.src, link.dst):
                if end.kind in ("box_in", "box_out"):
                    adjacent.append(network.box(end.stage, end.box))
            return tuple(adjacent)
        self._link_pairs = [
            (link, net.arcs[problem.arc_of_link[link.index]], boxes_of(link))
            for link in network.links
        ]
        self._res_pairs = [
            (res, self._sink_arc[res.index])
            for res in self.mrsin.resources
            if res.index in self._sink_arc
        ]
        self._circuit_arcs = {}
        self._enabled = set()
        self._pending = None
        self._pending_mapping = None
        # Promote in-flight circuits from blocked arcs to frozen unit
        # flows so their eventual release retracts in O(path) instead of
        # forcing another rebuild.
        for res, circuit in self.mrsin.transmitting_circuits().items():
            arcs = self._path_arcs(circuit.processor, circuit.links, res)
            if arcs is None:
                continue
            for arc in arcs:
                arc.capacity = 1
                arc.flow = 1
                arc.lower = 1
            self._circuit_arcs[res] = arcs
        self._dirty = False
        self.builds += 1

    def _path_arcs(
        self, processor: int, links: Sequence[Link], resource: int
    ) -> list[Arc] | None:
        """The arc path (source, links, sink) of a physical circuit."""
        net, problem = self._net, self._problem
        src = self._source_arc.get(processor)
        dst = self._sink_arc.get(resource)
        if net is None or problem is None or src is None or dst is None:
            return None
        arcs = [src]
        for link in links:
            idx = problem.arc_of_link.get(link.index)
            if idx is None:
                return None
            arcs.append(net.arcs[idx])
        arcs.append(dst)
        return arcs

    def _retract(self, arcs: list[Arc]) -> None:
        """Remove one committed unit of flow along a circuit's arcs."""
        for arc in arcs:
            arc.flow = 0
            arc.lower = 0
        src = arcs[0]  # s -> (p, i): closed until the processor requests again
        src.capacity = 0
        self._enabled.discard(src.head[1])

    def _rollback_pending(self) -> None:
        """Drop un-committed flow from a solve whose mapping went unused."""
        if self._pending:
            for _proc, _res, arcs in self._pending:
                for arc in arcs:
                    arc.flow = arc.lower
        self._pending = None
        self._pending_mapping = None

    def _in_sync(self) -> bool:
        """Reconcile every persistent arc with the physical state.

        An O(|links| + |resources|) attribute scan — the cheap guard
        that lets the engine fall back to a cold rebuild whenever the
        MRSIN's *flow* state was mutated behind its back (a circuit
        appearing or vanishing the engine never saw).  Pure capacity
        deltas — fault and repair events on links, switchboxes, and
        resources, or an untracked circuit released while the engine
        was cold — are absorbed in place: the arc's capacity is
        rewritten to mirror the component (0 while failed, 1 while
        free and healthy), so fault churn alone never costs a rebuild.
        """
        if self._net is None or self._problem is None:
            return False
        for link, arc, boxes in self._link_pairs:
            if link.occupied:
                if arc.capacity - arc.flow > 0 or arc.flow != arc.lower:
                    return False
            elif arc.flow != 0:
                return False
            else:
                usable = not link.failed
                for box in boxes:
                    if box.failed:
                        usable = False
                        break
                arc.capacity = 1 if usable else 0
        for res, arc in self._res_pairs:
            if res.busy:
                if arc.capacity - arc.flow > 0 or arc.flow != arc.lower:
                    return False
            elif arc.flow != 0:
                return False
            else:
                arc.capacity = 0 if res.failed else 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "empty" if self._net is None else f"|E|={self._net.n_arcs}"
        return (
            f"IncrementalFlowEngine({self.mrsin.network.name!r}, {state}, "
            f"builds={self.builds}, warm_ticks={self.warm_ticks})"
        )

"""Heuristic (address-mapped) schedulers — the paper's comparators.

These model the *conventional* interconnection network of Section I:
each request is bound to a concrete resource address up front and
destination-tag routed, with no joint optimisation and no rerouting of
other circuits.  The paper's simulations put such heuristics at
*"around 20 percent"* blocking where the optimal scheduler achieves
*"as low as 2 percent"* — the SIM-BLOCK benchmark re-measures exactly
this gap.

Two policies:

- :func:`greedy_schedule` — requests processed in order; each tries
  the free resources of its type (nearest-address or random order)
  until one routes.  Previously placed circuits are honoured but never
  moved.  Failed components are avoided the same way occupied ones
  are: failed resources are not ``available`` and the destination-tag
  router never takes a failed link or enters a failed switchbox, so
  the degraded tick path of the allocation service stays safe under
  faults too.
- :func:`arbitrary_schedule` — the paper's "arbitrary resource-request
  mapping": the i-th request is bound to the i-th free resource, no
  alternatives tried.  Used in the extra-stage experiment.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.mapping import Assignment, Mapping
from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.networks.routing import destination_tag_path
from repro.util.rng import make_rng

__all__ = ["greedy_schedule", "arbitrary_schedule", "random_binding_schedule"]


def _finish(mrsin: MRSIN, tentative: list) -> Mapping:
    """Tear down the tentative circuits and package the mapping."""
    mapping = Mapping()
    for request, resource, circuit in tentative:
        mrsin.network.release_circuit(circuit)
        mapping.add(Assignment(request=request, resource=resource, path=circuit.links))
    return mapping


def greedy_schedule(
    mrsin: MRSIN,
    requests: Sequence[Request] | None = None,
    *,
    order: str = "nearest",
    rng: int | np.random.Generator | None = None,
) -> Mapping:
    """First-fit address-mapped scheduling.

    Each request tries free resources of its type one by one
    (``order="nearest"`` scans by address distance from the processor;
    ``order="random"`` shuffles) and keeps the first that destination-
    tag routes over the current network state.  Earlier requests are
    never rerouted — the decisive difference from the optimal flow
    scheduler.

    The network is used as scratch space for tentative circuits and
    restored before returning; apply the mapping explicitly via
    :meth:`~repro.core.model.MRSIN.apply_mapping`.
    """
    if order not in ("nearest", "random"):
        raise ValueError(f"unknown order {order!r}")
    reqs = mrsin.schedulable_requests() if requests is None else list(requests)
    gen = make_rng(rng)
    tentative: list = []
    taken: set[int] = set()
    try:
        for req in reqs:
            candidates = [
                res for res in mrsin.free_resources(req.resource_type)
                if res.index not in taken
            ]
            if order == "random":
                gen.shuffle(candidates)
            else:
                candidates.sort(key=lambda res: abs(res.index - req.processor))
            for res in candidates:
                path = destination_tag_path(mrsin.network, req.processor, res.index)
                if path is None:
                    continue
                circuit = mrsin.network.establish_circuit(path)
                tentative.append((req, res, circuit))
                taken.add(res.index)
                break
    except BaseException:
        for _, _, circuit in tentative:
            mrsin.network.release_circuit(circuit)
        raise
    return _finish(mrsin, tentative)


def random_binding_schedule(
    mrsin: MRSIN,
    requests: Sequence[Request] | None = None,
    *,
    rng: int | np.random.Generator | None = None,
) -> Mapping:
    """Pure address mapping: a centralized scheduler binds each request
    to a *random* free resource of its type before it enters the
    network; routing then either succeeds or blocks.

    This is the paper's conventional baseline — *"a request is
    initiated with a specific destination ... and routing is done by
    examining the address bits"* — with no knowledge of network state.
    It is the comparator behind the ~20% blocking figure.
    """
    reqs = mrsin.schedulable_requests() if requests is None else list(requests)
    gen = make_rng(rng)
    tentative: list = []
    taken: set[int] = set()
    try:
        order = list(reqs)
        gen.shuffle(order)
        for req in order:
            candidates = [
                res for res in mrsin.free_resources(req.resource_type)
                if res.index not in taken
            ]
            if not candidates:
                continue
            res = candidates[int(gen.integers(0, len(candidates)))]
            taken.add(res.index)  # the binding is committed even if routing fails
            path = destination_tag_path(mrsin.network, req.processor, res.index)
            if path is None:
                continue  # blocked in the network
            circuit = mrsin.network.establish_circuit(path)
            tentative.append((req, res, circuit))
    except BaseException:
        for _, _, circuit in tentative:
            mrsin.network.release_circuit(circuit)
        raise
    return _finish(mrsin, tentative)


def arbitrary_schedule(
    mrsin: MRSIN,
    requests: Sequence[Request] | None = None,
) -> Mapping:
    """The paper's "arbitrary mapping": i-th request → i-th free resource.

    No alternatives are tried: if the bound pair does not route, the
    request blocks.  On networks with enough extra stages this is
    nearly as good as optimal (the SIM-EXTRA claim); on a bare Omega
    it is terrible.
    """
    reqs = mrsin.schedulable_requests() if requests is None else list(requests)
    tentative: list = []
    try:
        for req in reqs:
            free = [
                res for res in mrsin.free_resources(req.resource_type)
                if res.index not in {r.index for _, r, _ in tentative}
            ]
            if not free:
                continue
            res = free[0]
            path = destination_tag_path(mrsin.network, req.processor, res.index)
            if path is None:
                continue  # blocked: the bound resource is unreachable
            circuit = mrsin.network.establish_circuit(path)
            tentative.append((req, res, circuit))
    except BaseException:
        for _, _, circuit in tentative:
            mrsin.network.release_circuit(circuit)
        raise
    return _finish(mrsin, tentative)

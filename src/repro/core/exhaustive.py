"""Exhaustive-search scheduling — the straw man Section III retires.

The paper opens Section III with the cost of doing scheduling the
obvious way: *"Exhaustive methods that examine all possible ordered
mappings have exponential complexity.  In a homogeneous MRSIN, suppose
x processors are making requests, y resources are available ... The
scheduler has to try a maximum of C(x,y) y! (for x >= y) or C(y,x) x!
(for y >= x) mappings to find the best one."*

This module implements exactly that search: enumerate request→resource
pairings, check each pairing's simultaneous realisability by
backtracking over concrete link-disjoint paths, and keep the best
mapping under the same objective the flow formulation optimises.  It
is exponential and exists for two purposes:

- a ground-truth **oracle** for property tests on small instances
  (the flow schedulers must match it exactly);
- the **EXHAUSTIVE experiment**: measuring the complexity cliff the
  paper's transformations avoid.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.mapping import Assignment, Mapping
from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.core.transform import bypass_cost

__all__ = ["exhaustive_schedule", "mapping_objective_cost", "count_candidate_mappings"]


def count_candidate_mappings(x: int, y: int) -> int:
    """The paper's search-space size: ``C(x,y) y!`` or ``C(y,x) x!``.

    Both expressions equal the number of injective partial pairings of
    min(x, y) items into the larger side, i.e. falling factorials.
    """
    from math import comb, factorial

    if x >= y:
        return comb(x, y) * factorial(y)
    return comb(y, x) * factorial(x)


def mapping_objective_cost(mrsin: MRSIN, requests: Sequence[Request], mapping: Mapping) -> float:
    """The Transformation 2 objective value of a concrete mapping.

    ``sum over served [(ymax - y_p) + (qmax - q_w)] + sum over
    bypassed [(ymax - y_p) + 2*penalty + y_p]`` — identical to the
    min-cost flow's total cost, so exhaustive and flow results are
    directly comparable.  For priority-free systems this reduces to a
    monotone function of the allocation count.
    """
    penalty = bypass_cost(mrsin)
    served = {a.request.processor: a for a in mapping.assignments}
    total = 0.0
    for req in requests:
        total += mrsin.max_priority - req.priority
        if req.processor in served:
            total += mrsin.max_preference - served[req.processor].resource.preference
        else:
            total += 2 * penalty + req.priority
    return total


def _realize(mrsin: MRSIN, pairs: list[tuple[Request, int]], idx: int,
             chosen: list[tuple[Request, int, tuple]]) -> bool:
    """Backtracking search for simultaneous circuits for ``pairs``."""
    if idx == len(pairs):
        return True
    req, res = pairs[idx]
    net = mrsin.network
    for path in net.enumerate_free_paths(req.processor, res):
        circuit = net.establish_circuit(path)
        chosen.append((req, res, tuple(path)))
        if _realize(mrsin, pairs, idx + 1, chosen):
            net.release_circuit(circuit)
            return True
        chosen.pop()
        net.release_circuit(circuit)
    return False


def exhaustive_schedule(
    mrsin: MRSIN,
    requests: Sequence[Request] | None = None,
    *,
    max_mappings: int = 2_000_000,
) -> Mapping:
    """Optimal mapping by brute force over all candidate pairings.

    Enumerates pairings largest-cardinality first, so for priority-free
    systems the search can stop at the first realisable pairing of each
    size tier only after confirming no larger tier works; with
    priorities it scans the whole tier for the cheapest realisable
    mapping.  ``max_mappings`` guards against accidental use on large
    instances (the whole point is that this blows up).
    """
    reqs = mrsin.schedulable_requests() if requests is None else list(requests)
    free = mrsin.free_resources()
    best: Mapping | None = None
    best_cost = float("inf")
    examined = 0
    for k in range(min(len(reqs), len(free)), 0, -1):
        tier_best: Mapping | None = None
        tier_cost = float("inf")
        from itertools import combinations

        for req_subset in combinations(reqs, k):
            # Typed pools: each request may only pair with matching types.
            candidates = [
                [res.index for res in free if res.resource_type == r.resource_type]
                for r in req_subset
            ]
            # Enumerate injective assignments subset -> resources.
            def assignments(i: int, used: frozenset[int]):
                if i == k:
                    yield []
                    return
                for res in candidates[i]:
                    if res in used:
                        continue
                    for rest in assignments(i + 1, used | {res}):
                        yield [(req_subset[i], res)] + rest

            for pairing in assignments(0, frozenset()):
                examined += 1
                if examined > max_mappings:
                    raise RuntimeError(
                        f"exhaustive search exceeded {max_mappings} mappings "
                        "(that is the paper's point — use OptimalScheduler)"
                    )
                chosen: list[tuple[Request, int, tuple]] = []
                if not _realize(mrsin, pairing, 0, chosen):
                    continue
                mapping = Mapping([
                    Assignment(request=req, resource=mrsin.resources[res], path=path)
                    for req, res, path in chosen
                ])
                cost = mapping_objective_cost(mrsin, reqs, mapping)
                if cost < tier_cost:
                    tier_cost = cost
                    tier_best = mapping
        if tier_best is not None:
            best, best_cost = tier_best, tier_cost
            break  # a realisable k-mapping always beats any (k-1)-mapping
    return best if best is not None else Mapping()

"""Online batched allocation service — monitor-as-a-service.

The paper's monitor architecture (Fig. 6) runs one flow solve per
scheduling cycle over a static snapshot.  This subpackage serves the
same optimal scheduling *online*: requests arrive, queue, batch into
one solve per tick, receive leases, and release — the sustained-load
regime the ROADMAP's production north-star calls for.

- :mod:`repro.service.server` — :class:`AllocationService` with
  ``acquire``/``release``, batching loop, admission control,
  backpressure, and degradation watermark;
- :mod:`repro.service.clock` — wall-time and deterministic virtual
  clocks;
- :mod:`repro.service.metrics` — queue/wait/batch/solver-cost
  counters with table rendering;
- :mod:`repro.service.driver` — seeded finite-horizon runs
  (``python -m repro serve`` is a thin wrapper).
"""

from repro.service.clock import Clock, MonotonicClock, VirtualClock
from repro.service.driver import ServiceRunResult, acquire_with_retry, run_service
from repro.service.metrics import ServiceMetrics
from repro.service.server import (
    AllocationError,
    AllocationRejected,
    AllocationService,
    AllocationTimeout,
    Lease,
    LeaseRevoked,
    ServiceClosed,
    ServiceConfig,
    ServiceFaulted,
)

__all__ = [
    "AllocationError",
    "AllocationRejected",
    "AllocationService",
    "AllocationTimeout",
    "Clock",
    "Lease",
    "LeaseRevoked",
    "MonotonicClock",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceFaulted",
    "ServiceMetrics",
    "ServiceRunResult",
    "VirtualClock",
    "acquire_with_retry",
    "run_service",
]

"""The allocation service: monitor-as-a-service over any MRSIN.

The paper's Section IV monitor runs one flow solve per scheduling
cycle over a static snapshot.  :class:`AllocationService` turns that
cycle into an *online* server: clients ``await acquire(request)`` and
get back a :class:`Lease`; a batching loop wakes every tick, coalesces
everything pending into **one** max-flow solve (amortising Dinic over
the batch, exactly Transformation 1 with many requests), applies the
optimal mapping, and resolves the winners' futures.  Releases tear
circuits down and free resources, so the network state genuinely
evolves across cycles — the heavy-traffic resource-sharing regime.

Admission control and backpressure:

- a **bounded queue** (``queue_limit``): requests arriving at a full
  queue are rejected immediately with :class:`AllocationRejected`;
- a **deadline per request** (``timeout``): a request that cannot be
  scheduled keeps its FIFO position and is deterministically re-queued
  tick after tick until its deadline passes, at which point it is
  rejected with :class:`AllocationTimeout` (deadlines are checked at
  tick boundaries only, so runs are reproducible under a virtual
  clock);
- a **degradation watermark** (``degrade_watermark``): when the queue
  depth crosses it, the tick falls back from the optimal flow solver
  to the deterministic greedy heuristic — trading allocation quality
  for solve latency under overload.

Steady state rides on the **warm-start incremental flow engine**
(:mod:`repro.core.incremental`, on by default): one persistent
Transformation-1 network survives across ticks, releases retract their
circuit's unit of flow instead of discarding the network, and each
tick augments Dinic from the standing flow — same allocations as a
cold solve, at a fraction of the per-tick cost.

Fault tolerance (the robustness layer):

- a fault that **severs a held circuit** — a failed link/switchbox on
  its path, or the resource itself dying — **revokes** the lease: the
  surviving links and the resource are reclaimed at the next tick, the
  holder observes ``lease.revoked`` (and may ``await
  lease.revocation.wait()``), and any later ``release`` /
  ``end_transmission`` on it raises :class:`LeaseRevoked`.  The
  service keeps allocating for everyone else;
- **transient tick errors** are absorbed by a bounded *fault budget*
  (``ServiceConfig.fault_budget``): up to that many *consecutive*
  failing scheduling cycles are retried (after invalidating the warm
  engine) before the loop escalates to :class:`ServiceFaulted`;
- ``release``/``end_transmission`` on a closed or faulted service
  raise :class:`ServiceClosed`/:class:`ServiceFaulted` instead of
  silently mutating an MRSIN nobody serves anymore.
"""

from __future__ import annotations

import asyncio
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultEvent

from repro.core.heuristic import greedy_schedule
from repro.core.incremental import IncrementalFlowEngine, KernelFlowEngine
from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.core.scheduler import OptimalScheduler
from repro.networks.topology import Circuit
from repro.service.clock import Clock, MonotonicClock
from repro.service.metrics import ServiceMetrics
from repro.util.counters import OpCounter

__all__ = [
    "AllocationError",
    "AllocationRejected",
    "AllocationTimeout",
    "AllocationService",
    "Lease",
    "LeaseRevoked",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceFaulted",
]


class AllocationError(Exception):
    """Base class for allocation-service failures."""


class AllocationRejected(AllocationError):
    """Admission control bounced the request (queue full)."""


class AllocationTimeout(AllocationError):
    """The request's deadline expired before it could be scheduled."""


class ServiceClosed(AllocationError):
    """The service was closed while the request was queued."""


class ServiceFaulted(ServiceClosed):
    """The tick loop exhausted its fault budget and shut the service.

    A faulted service *is* closed (hence the subclassing): queued
    requests fail with this error instead of the loop dying silently
    (which would leave all queued ``acquire`` calls hanging until
    their deadlines — forever, with no timeout).  The original
    exception is kept on :attr:`AllocationService.fault` and chained
    as ``__cause__``.
    """


class LeaseRevoked(AllocationError):
    """The lease was revoked because a fault severed its allocation.

    Raised by ``release``/``end_transmission`` on a revoked lease;
    holders watching ``lease.revocation`` learn about it at revocation
    time instead.
    """


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the batching loop.

    Attributes
    ----------
    tick_interval:
        Virtual/real seconds between scheduling cycles.
    max_batch:
        Cap on requests entering one solve (``None`` = everything
        pending).  ``max_batch=1`` degenerates to one-request-per-solve
        — the unbatched comparator in the throughput benchmark.
    queue_limit:
        Bounded-queue size for admission control.
    degrade_watermark:
        Queue depth above which ticks use the greedy heuristic instead
        of the optimal flow solver (``None`` = never degrade).
    default_timeout:
        Deadline applied when ``acquire`` is called without one
        (``None`` = wait indefinitely).
    maxflow, mincost:
        Solver choices forwarded to :class:`OptimalScheduler`.
    warm_start:
        Keep one persistent Transformation-1 network across ticks and
        warm-start Dinic from the standing flow, instead of rebuilding
        the network from scratch every cycle.  Allocation counts are
        identical either way; only steady-state tick cost changes.
        Disable to force the cold from-scratch path (the benchmark
        comparator).
    warm_engine:
        Which warm engine backs ``warm_start``: ``"kernel"`` (default)
        runs ticks on the flat-array CSR kernel
        (:class:`~repro.core.incremental.KernelFlowEngine`);
        ``"object"`` keeps the object-graph
        :class:`~repro.core.incremental.IncrementalFlowEngine` — the
        teaching implementation and differential oracle.
    fault_budget:
        How many *consecutive* failing scheduling cycles the tick loop
        absorbs (invalidating the warm engine and retrying next tick)
        before escalating to :class:`ServiceFaulted`.  The default 0
        faults on the first error — the pre-fault-model behaviour.
    """

    tick_interval: float = 1.0
    max_batch: int | None = None
    queue_limit: int = 64
    degrade_watermark: int | None = None
    default_timeout: float | None = None
    maxflow: str = "dinic"
    mincost: str = "out_of_kilter"
    warm_start: bool = True
    warm_engine: str = "kernel"
    fault_budget: int = 0

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError(f"tick_interval must be positive, got {self.tick_interval}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.degrade_watermark is not None and self.degrade_watermark < 0:
            raise ValueError("degrade_watermark must be >= 0")
        if self.warm_engine not in ("kernel", "object"):
            raise ValueError(
                f"warm_engine must be 'kernel' or 'object', got {self.warm_engine!r}"
            )
        if self.fault_budget < 0:
            raise ValueError(f"fault_budget must be >= 0, got {self.fault_budget}")


@dataclass
class Lease:
    """A granted allocation: one resource, one (initially held) circuit.

    Model item 5's two-phase lifetime maps onto two calls:
    :meth:`AllocationService.end_transmission` releases the circuit
    while the resource keeps serving; :meth:`AllocationService.release`
    frees the resource (tearing down the circuit too if still held).

    A fault that severs the allocation revokes the lease instead:
    ``active`` drops, ``revoked`` rises, and the ``revocation`` event
    fires — ``await lease.revocation.wait()`` is the holder's push
    notification.  Touching a revoked lease afterwards raises
    :class:`LeaseRevoked`.
    """

    lease_id: int
    request: Request
    resource: int
    circuit: Circuit
    acquired_at: float
    waited: float
    transmitting: bool = True
    active: bool = True
    revoked: bool = False
    _revocation: asyncio.Event | None = field(default=None, repr=False)

    @property
    def revocation(self) -> asyncio.Event:
        """The revocation push-notification event, created on first use.

        Lazily built so the allocation hot path (thousands of leases
        per second, almost none of them ever awaited on) does not pay
        for an :class:`asyncio.Event` per grant; the service sets it at
        revocation time only if a holder ever asked for it.
        """
        if self._revocation is None:
            self._revocation = asyncio.Event()
            if self.revoked:
                self._revocation.set()
        return self._revocation


@dataclass(eq=False)
class _Entry:
    """One queued acquire() call.

    ``eq=False``: entries are compared (and removed from the queue) by
    identity — field-wise dataclass equality would deep-compare
    requests and futures on every ``list.remove`` scan.
    """

    request: Request
    future: asyncio.Future
    submitted: float
    deadline: float
    seq: int = field(default=0)


class AllocationService:
    """Online batched allocation over an :class:`MRSIN`.

    Use as an async context manager (starts/stops the tick loop), or
    drive ticks by hand with :meth:`run_one_cycle` — tests and the
    property suite do the latter for exact control.

    Parameters
    ----------
    mrsin:
        The system to serve.  The service owns its request queue;
        ``mrsin.pending`` stays empty.
    config:
        A :class:`ServiceConfig` (defaults are sensible for tests).
    clock:
        Time source; defaults to the event-loop wall clock.  Pass a
        :class:`~repro.service.clock.VirtualClock` for deterministic
        runs.
    """

    def __init__(
        self,
        mrsin: MRSIN,
        *,
        config: ServiceConfig | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.mrsin = mrsin
        self.config = config or ServiceConfig()
        self.clock = clock or MonotonicClock()
        self.counter = OpCounter()
        self.metrics = ServiceMetrics(self.counter, self.config.tick_interval)
        self._scheduler = OptimalScheduler(
            maxflow=self.config.maxflow,
            mincost=self.config.mincost,
            counter=self.counter,
        )
        self._engine: IncrementalFlowEngine | KernelFlowEngine | None
        if not self.config.warm_start:
            self._engine = None
        elif self.config.warm_engine == "kernel":
            self._engine = KernelFlowEngine(mrsin, counter=self.counter)
        else:
            self._engine = IncrementalFlowEngine(mrsin, counter=self.counter)
        self._queue: list[_Entry] = []
        self._leases: dict[int, Lease] = {}
        self._ids = itertools.count(1)
        self._seq = itertools.count()
        self._loop_task: asyncio.Task | None = None
        self._closed = False
        self.fault: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the background tick loop."""
        self._check_open()
        if self._loop_task is None:
            self._loop_task = asyncio.get_running_loop().create_task(self._tick_loop())

    async def close(self) -> None:
        """Stop the loop and fail all queued requests with ServiceClosed."""
        self._closed = True
        if self._loop_task is not None:
            self._loop_task.cancel()
            try:
                await self._loop_task
            except asyncio.CancelledError:
                pass
            self._loop_task = None
        for entry in self._queue:
            if not entry.future.done():
                entry.future.set_exception(ServiceClosed("service closed"))
        self._queue.clear()

    async def __aenter__(self) -> "AllocationService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def _tick_loop(self) -> None:
        consecutive_failures = 0
        while True:
            await self.clock.sleep(self.config.tick_interval)
            try:
                self.run_one_cycle()
            except asyncio.CancelledError:  # pragma: no cover - close() path
                raise
            except Exception as exc:
                consecutive_failures += 1
                if consecutive_failures > self.config.fault_budget:
                    # A dying tick loop must not strand queued acquires:
                    # fault the whole service loudly instead.
                    self._fault(exc)
                    return
                # Within budget: assume transient corruption, drop the
                # warm state and retry on the next tick.
                self.metrics.record_tick_retry()
                if self._engine is not None:
                    self._engine.invalidate()
            else:
                consecutive_failures = 0

    def _fault(self, exc: Exception) -> None:
        """Mark the service faulted and fail everything still queued."""
        self._closed = True
        self.fault = exc
        for entry in self._queue:
            if not entry.future.done():
                failure = ServiceFaulted(f"scheduling cycle raised: {exc!r}")
                failure.__cause__ = exc
                entry.future.set_exception(failure)
        self._queue.clear()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a tick."""
        return len(self._queue)

    @property
    def active_leases(self) -> int:
        """Leases granted and not yet released."""
        return len(self._leases)

    def _check_open(self) -> None:
        """Raise the right error if the service no longer serves."""
        if self.fault is not None:
            failure = ServiceFaulted(f"service faulted: {self.fault!r}")
            failure.__cause__ = self.fault
            raise failure
        if self._closed:
            raise ServiceClosed("service is closed")

    async def acquire(self, request: Request, *, timeout: float | None = None) -> Lease:
        """Queue ``request`` and await its lease.

        Raises :class:`AllocationRejected` immediately when the queue
        is full, :class:`AllocationTimeout` when the deadline (from
        ``timeout`` or the config default) passes before a tick can
        serve it, and :class:`ServiceClosed` if the service shuts down
        first.
        """
        self._check_open()
        if not 0 <= request.processor < self.mrsin.n_processors:
            raise ValueError(
                f"processor {request.processor} outside [0, {self.mrsin.n_processors})"
            )
        if request.resource_type not in self.mrsin.resource_types:
            raise ValueError(f"no resource of type {request.resource_type!r} in this system")
        if len(self._queue) >= self.config.queue_limit:
            self.metrics.record_rejection()
            raise AllocationRejected(
                f"queue full ({self.config.queue_limit} requests waiting)"
            )
        if timeout is None:
            timeout = self.config.default_timeout
        now = self.clock.now()
        entry = _Entry(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            submitted=now,
            deadline=now + timeout if timeout is not None else math.inf,
            seq=next(self._seq),
        )
        self._queue.append(entry)
        # Drop cancelled acquires from the queue eagerly, so an
        # abandoned request can never be selected into a batch and
        # allocated a resource nobody will release.
        entry.future.add_done_callback(
            lambda _future, entry=entry: self._drop_cancelled(entry)
        )
        self.metrics.record_admission(len(self._queue))
        return await entry.future

    def _drop_cancelled(self, entry: _Entry) -> None:
        """Future done-callback: purge a cancelled entry from the queue."""
        if entry.future.cancelled():
            try:
                self._queue.remove(entry)
            except ValueError:
                pass

    def release(self, lease: Lease) -> None:
        """Free the lease's resource (and its circuit, if still held).

        Raises :class:`LeaseRevoked` if a fault already revoked the
        lease, :class:`AllocationError` on double release, and
        :class:`ServiceClosed`/:class:`ServiceFaulted` when the service
        no longer serves (mutating an abandoned MRSIN silently would
        mask bugs).
        """
        if lease.revoked:
            raise LeaseRevoked(f"lease {lease.lease_id} was revoked by a fault")
        if not lease.active:
            raise AllocationError(f"lease {lease.lease_id} already released")
        self._check_open()
        self.mrsin.complete_service(lease.resource)
        if self._engine is not None:
            self._engine.note_release(lease.resource)
        lease.active = False
        lease.transmitting = False
        del self._leases[lease.lease_id]
        self.metrics.record_release()

    def end_transmission(self, lease: Lease) -> None:
        """Release only the circuit; the resource keeps serving.

        Model item 5: *"The circuit ... can be released once the
        request has been transmitted"* — the processor's input link
        becomes free for its next request.  Raises like
        :meth:`release` on a revoked lease or a closed/faulted
        service.
        """
        if lease.revoked:
            raise LeaseRevoked(f"lease {lease.lease_id} was revoked by a fault")
        if not lease.active:
            raise AllocationError(f"lease {lease.lease_id} already released")
        self._check_open()
        if not lease.transmitting:
            return
        self.mrsin.complete_transmission(lease.resource)
        if self._engine is not None:
            self._engine.note_transmission_end(lease.resource)
        lease.transmitting = False

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def apply_fault_event(self, event: FaultEvent) -> bool:
        """Apply one :class:`~repro.faults.injector.FaultEvent` to the MRSIN.

        Returns whether the event changed anything (repairing a healthy
        component, or re-failing a failed one, is a no-op).  Severed
        circuits are *not* reclaimed here — :meth:`reconcile_faults`
        does that at the next tick boundary, mirroring how the paper's
        monitor only observes network status between cycles.
        """
        from repro.faults.injector import apply_event

        changed = apply_event(self.mrsin, event)
        if changed:
            if event.repair:
                self.metrics.record_repair_applied()
            else:
                self.metrics.record_fault_injected()
        return changed

    def reconcile_faults(self) -> list[Lease]:
        """Revoke every lease whose allocation a fault has severed.

        A severed allocation — a failed link or switchbox on the held
        circuit, or the resource itself failed — cannot be released by
        its holder (the component is gone), so the service reclaims it:
        the surviving links and the resource slot go back to the pool,
        the warm engine retracts the unit of flow, and the lease is
        revoked (``lease.revocation`` fires).  Severed circuits with no
        lease (e.g. background load applied directly to the MRSIN) are
        reclaimed too.  Returns the leases revoked; called at the top
        of every :meth:`run_one_cycle`.
        """
        revoked: list[Lease] = []
        severed = self.mrsin.severed_resources()
        if not severed:
            return revoked
        by_resource = {lease.resource: lease for lease in self._leases.values()}
        for idx in severed:
            self.mrsin.revoke(idx)
            if self._engine is not None:
                self._engine.note_release(idx)
            lease = by_resource.get(idx)
            if lease is None:
                continue
            lease.active = False
            lease.transmitting = False
            lease.revoked = True
            lease.revocation.set()
            del self._leases[lease.lease_id]
            self.metrics.record_revocation()
            revoked.append(lease)
        return revoked

    # ------------------------------------------------------------------
    # The scheduling cycle
    # ------------------------------------------------------------------
    def run_one_cycle(self) -> list[Lease]:
        """Run one scheduling cycle synchronously; returns new leases.

        The tick loop calls this every ``tick_interval``; tests may
        call it directly for exact tick control.

        Phase durations (reconcile / solve / apply) are recorded into
        the metrics' timing histograms via ``clock.perf_ns()`` — real
        nanoseconds under the monotonic clock, exactly 0 under a
        virtual clock, so deterministic runs stay byte-identical.
        """
        t_start = self.clock.perf_ns()
        self.reconcile_faults()
        now = self.clock.now()
        self._expire_deadlines(now)
        t_reconciled = self.clock.perf_ns()
        batch = self._select_batch()
        degraded = (
            self.config.degrade_watermark is not None
            and len(self._queue) > self.config.degrade_watermark
        )
        leases: list[Lease] = []
        t_solved = t_reconciled
        if batch:
            requests = [entry.request for entry in batch]
            if degraded:
                mapping = greedy_schedule(self.mrsin, requests, order="nearest")
            elif self._engine is not None:
                mapping = self._scheduler.schedule_incremental(
                    self.mrsin, requests, engine=self._engine
                )
            else:
                mapping = self._scheduler.schedule(self.mrsin, requests)
            t_solved = self.clock.perf_ns()
            # Charge the serial status-read / switch-write overhead the
            # monitor cost model accounts for (once per solve — this is
            # precisely what batching amortises).
            self.counter.charge("transform_arc", len(self.mrsin.network.links))
            self.counter.charge("extract", sum(len(a.path) for a in mapping.assignments))
            circuits = self.mrsin.apply_mapping(mapping)
            if self._engine is not None:
                self._engine.commit(mapping)
            by_processor = {entry.request.processor: entry for entry in batch}
            for assignment, circuit in zip(mapping.assignments, circuits):
                entry = by_processor[assignment.request.processor]
                if entry.future.done():
                    # The winner's acquire was cancelled while queued:
                    # undo the allocation on the spot instead of leaking
                    # the resource into _leases with no one to release it.
                    self._unwind_allocation(assignment.resource.index)
                    try:
                        self._queue.remove(entry)
                    except ValueError:
                        pass
                    continue
                lease = Lease(
                    lease_id=next(self._ids),
                    request=entry.request,
                    resource=assignment.resource.index,
                    circuit=circuit,
                    acquired_at=now,
                    waited=now - entry.submitted,
                )
                self._leases[lease.lease_id] = lease
                self._queue.remove(entry)
                self.metrics.record_allocation(lease.waited)
                entry.future.set_result(lease)
                leases.append(lease)
        t_applied = self.clock.perf_ns()
        self.metrics.record_tick_timing(
            reconcile_ns=t_reconciled - t_start,
            solve_ns=t_solved - t_reconciled,
            apply_ns=t_applied - t_solved,
        )
        self.metrics.record_tick(
            batch_size=len(leases), queue_depth=len(self._queue), degraded=degraded
        )
        return leases

    def _unwind_allocation(self, resource_index: int) -> None:
        """Tear down a just-established circuit whose winner vanished."""
        self.mrsin.complete_service(resource_index)
        if self._engine is not None:
            self._engine.note_release(resource_index)

    def _expire_deadlines(self, now: float) -> None:
        """Reject queued entries whose deadline has passed."""
        alive: list[_Entry] = []
        for entry in self._queue:
            if entry.future.cancelled():
                continue
            if entry.deadline <= now:
                entry.future.set_exception(
                    AllocationTimeout(
                        f"request from processor {entry.request.processor} "
                        f"expired after {now - entry.submitted:g} time units"
                    )
                )
                self.metrics.record_timeout()
            else:
                alive.append(entry)
        self._queue = alive

    def _select_batch(self) -> list[_Entry]:
        """FIFO batch: ≤1 request per processor, usable input links only.

        Mirrors :meth:`MRSIN.schedulable_requests` over the service's
        own queue (model item 5), truncated at ``max_batch``.  A
        processor whose input link is occupied *or failed* stays queued
        — its requests wait out the fault (or their deadline).
        """
        limit = self.config.max_batch or len(self._queue)
        batch: list[_Entry] = []
        seen: set[int] = set()
        for entry in self._queue:
            if len(batch) >= limit:
                break
            if entry.future.done():
                # Cancelled while queued (the eager done-callback runs
                # via call_soon, so the entry may still be here).
                continue
            proc = entry.request.processor
            if proc in seen:
                continue
            link = self.mrsin.network.processor_link(proc)
            if link.occupied or not self.mrsin.network.link_usable(link):
                continue
            seen.add(proc)
            batch.append(entry)
        return batch

    def peek_batch(self) -> list[Request]:
        """The requests the next cycle would feed the solver (read-only).

        The chaos harness uses this for its cold-vs-warm differential:
        it computes a cold schedule on exactly the batch the warm tick
        is about to solve.  Call :meth:`reconcile_faults` first if
        faults may have landed since the last tick.
        """
        return [entry.request for entry in self._select_batch()]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Current metrics snapshot plus live queue/lease/fault gauges."""
        snap = self.metrics.snapshot()
        snap["queue_depth"] = self.queue_depth
        snap["active_leases"] = self.active_leases
        snap["utilization"] = self.mrsin.utilization()
        failed = self.mrsin.failed_components()
        snap["failed_links"] = len(failed["links"])
        snap["failed_switchboxes"] = len(failed["switchboxes"])
        snap["failed_resources"] = len(failed["resources"])
        if self._engine is not None:
            snap["engine_builds"] = self._engine.builds
            snap["engine_warm_ticks"] = self._engine.warm_ticks
        return snap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AllocationService({self.mrsin.network.name!r}, "
            f"queue={self.queue_depth}, leases={self.active_leases})"
        )

"""Clocks for the allocation service: wall-time and virtual.

The service's batching loop never reads wall time directly; it asks a
:class:`Clock` for ``now()`` and awaits ``sleep(dt)``.  Production runs
use :class:`MonotonicClock` (the asyncio event-loop clock).  Tests and
the deterministic driver use :class:`VirtualClock`, which only moves
when explicitly advanced — a finite-horizon run is then a pure
function of its seeds, with no wall-time in any code path.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time

__all__ = [
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "perf_counter_ns",
    "process_time_ns",
]


def perf_counter_ns() -> int:
    """Wall-clock nanoseconds for *measurement only* (never scheduling).

    The sanctioned wall-time read: R002 confines clock access to this
    module so no scheduling decision can depend on it.  Benchmarks and
    the fabric broker use it to report elapsed seconds; nothing derived
    from it may feed back into which request gets which resource.
    """
    return time.perf_counter_ns()


def process_time_ns() -> int:
    """CPU nanoseconds consumed by this process, for measurement only.

    The fabric's cells report their per-round compute cost with this:
    on a host with fewer cores than cells, wall time measures the
    host's timesharing, while process CPU time measures what a
    dedicated core per cell would spend — the quantity the scaling
    benchmark attributes (see ``benchmarks/bench_fabric.py``).
    """
    return time.process_time_ns()


class Clock:
    """Abstract time source: ``now()`` plus awaitable ``sleep(dt)``."""

    def now(self) -> float:
        """Current time, in seconds (arbitrary epoch)."""
        raise NotImplementedError

    async def sleep(self, dt: float) -> None:
        """Suspend the calling task for ``dt`` time units."""
        raise NotImplementedError

    def perf_ns(self) -> int:
        """High-resolution nanoseconds for duration measurement.

        Virtual clocks return virtual time, so durations of purely
        synchronous work are exactly 0 and deterministic runs stay
        byte-identical; the monotonic clock returns real wall
        nanoseconds.  Used by the service's per-tick timing breakdown
        (:meth:`~repro.service.metrics.ServiceMetrics.record_tick_timing`).
        """
        raise NotImplementedError


class MonotonicClock(Clock):
    """Real time, as kept by the running asyncio event loop."""

    def now(self) -> float:
        return asyncio.get_event_loop().time()

    async def sleep(self, dt: float) -> None:
        await asyncio.sleep(max(dt, 0.0))

    def perf_ns(self) -> int:
        return time.perf_counter_ns()


class VirtualClock(Clock):
    """Deterministic simulated time for tests and the driver.

    ``sleep`` parks the calling task on a heap of ``(wake_time, tie)``
    entries; time only moves when the driver calls :meth:`run_until`
    (or :meth:`advance`).  Sleepers are woken strictly in
    ``(wake_time, registration order)`` order, one at a time, with the
    event loop drained between wake-ups so a woken task runs to its
    next ``await`` before the clock moves again.  Given deterministic
    task code, a run is fully reproducible.
    """

    #: Event-loop iterations granted after each wake-up so that chains
    #: of dependent tasks (sleeper → tick → future resolution → client)
    #: settle inside one virtual instant.
    DRAIN_ROUNDS = 32

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._tie = itertools.count()
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []

    def now(self) -> float:
        return self._now

    async def sleep(self, dt: float) -> None:
        if dt <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        heapq.heappush(self._sleepers, (self._now + dt, next(self._tie), future))
        await future

    def perf_ns(self) -> int:
        """Virtual now in nanoseconds: synchronous work measures 0.

        Durations taken between two ``perf_ns()`` calls with no
        intervening clock advance are exactly zero, so snapshots of
        virtual-clock runs (the determinism tests' byte-identical
        comparisons) are unaffected by host speed.
        """
        return int(self._now * 1_000_000_000)

    @property
    def pending_sleepers(self) -> int:
        """Tasks currently parked on this clock."""
        return len(self._sleepers)

    async def run_until(self, deadline: float) -> None:
        """Advance virtual time to ``deadline``, waking due sleepers.

        Sleepers due at or before ``deadline`` fire in order; tasks
        that go back to sleep within the window are honoured too (the
        heap is re-examined after every wake-up).
        """
        # Let freshly created tasks run to their first await so their
        # sleeps are registered before we examine the heap.
        await self._drain()
        while self._sleepers and self._sleepers[0][0] <= deadline:
            wake, _, future = heapq.heappop(self._sleepers)
            self._now = max(self._now, wake)
            if not future.cancelled():
                future.set_result(None)
            await self._drain()
        self._now = max(self._now, deadline)
        await self._drain()

    async def advance(self, dt: float) -> None:
        """Advance virtual time by ``dt`` (see :meth:`run_until`)."""
        await self.run_until(self._now + dt)

    async def _drain(self) -> None:
        for _ in range(self.DRAIN_ROUNDS):
            await asyncio.sleep(0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:g}, sleepers={len(self._sleepers)})"

"""Service-level metrics: queue depth, waits, batches, solver cost.

The monitor architecture's cost model (instructions charged to an
:class:`~repro.util.counters.OpCounter`) extends naturally to a
service: every solve the batching loop runs charges the same counter,
so the snapshot reports both *traffic* statistics (queue depth, wait
times, allocations/rejections/timeouts) and *solver* cost
(instructions per allocation — the quantity batching amortises).
"""

from __future__ import annotations

import math
from typing import Any

from repro.distributed.monitor import INSTRUCTION_WEIGHTS
from repro.util.counters import OpCounter
from repro.util.histogram import LatencyHistogram
from repro.util.tables import Table

__all__ = ["ServiceMetrics", "TICK_PHASES", "WAIT_BUCKET_TICKS"]

# Wait-time histogram bucket upper bounds, in units of the tick
# interval (the natural quantum: requests are only granted at ticks).
# Kept as the reporting shape; storage is a log-bucketed
# :class:`~repro.util.histogram.LatencyHistogram` in units of
# 1/1024 tick, whose power-of-two bucket boundaries make these
# tick-multiple cuts exact (see :meth:`ServiceMetrics.wait_histogram`).
WAIT_BUCKET_TICKS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, math.inf)

#: Histogram sub-tick resolution: waits are recorded in 1/1024ths of a
#: tick, so every legacy bucket bound ``b`` sits on the power-of-two
#: boundary ``b * 1024`` and bucket counts stay exact.
UNITS_PER_TICK = 1024

#: The phases of one scheduling cycle whose durations are recorded
#: (see :meth:`ServiceMetrics.record_tick_timing`): ``reconcile`` =
#: fault reconciliation + deadline expiry, ``solve`` = batch selection
#: + the flow solve, ``apply`` = mapping application, engine commit,
#: and lease fan-out.
TICK_PHASES: tuple[str, ...] = ("reconcile", "solve", "apply")


class ServiceMetrics:
    """Accumulating counters for one :class:`AllocationService` run.

    All quantities are exact integers or sums — no wall time, no
    sampling — so two runs over the same virtual-clock schedule
    produce identical snapshots.
    """

    def __init__(self, counter: OpCounter, tick_interval: float = 1.0) -> None:
        self.counter = counter
        self.tick_interval = tick_interval
        self.submitted = 0
        self.rejected_full = 0
        self.timed_out = 0
        self.allocated = 0
        self.released = 0
        self.ticks = 0
        self.degraded_ticks = 0
        self.revoked = 0
        self.tick_retries = 0
        self.faults_injected = 0
        self.repairs_applied = 0
        self.max_queue_depth = 0
        self._queue_depth_sum = 0
        self._batch_sum = 0
        self._wait_sum = 0.0
        self.wait_hist = LatencyHistogram()
        # Per-tick timing breakdown, one histogram per phase, in
        # nanoseconds from Clock.perf_ns().  Under a VirtualClock all
        # durations are exactly 0 (virtual time does not advance inside
        # a cycle), so deterministic snapshots stay byte-identical;
        # under the monotonic clock these attribute where a cell's tick
        # budget actually goes — the fabric benchmark's raw material.
        self.phase_hists: dict[str, LatencyHistogram] = {
            phase: LatencyHistogram() for phase in TICK_PHASES
        }

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_admission(self, queue_depth: int) -> None:
        """A request passed admission control and entered the queue."""
        self.submitted += 1
        self.max_queue_depth = max(self.max_queue_depth, queue_depth)

    def record_rejection(self) -> None:
        """A request bounced off the full queue (backpressure)."""
        self.rejected_full += 1

    def record_timeout(self) -> None:
        """A queued request's deadline expired before allocation."""
        self.timed_out += 1

    def record_allocation(self, wait: float) -> None:
        """A request was granted after waiting ``wait`` time units.

        The wait is stored in integer 1/1024-tick units, shifted down
        by one (``ceil(ticks * 1024) - 1``) so that the legacy bucket
        predicate "ticks <= b" becomes exactly "units < 1024 * b" — a
        power-of-two cut the log-bucketed histogram answers exactly.
        """
        self.allocated += 1
        self._wait_sum += wait
        ticks = wait / self.tick_interval if self.tick_interval > 0 else wait
        units = max(math.ceil(ticks * UNITS_PER_TICK) - 1, 0)
        self.wait_hist.record(units)

    def record_release(self) -> None:
        """A lease was released (resource freed)."""
        self.released += 1

    def record_revocation(self) -> None:
        """A fault severed a held allocation; its lease was revoked."""
        self.revoked += 1

    def record_tick_retry(self) -> None:
        """A scheduling cycle raised but stayed within the fault budget."""
        self.tick_retries += 1

    def record_fault_injected(self) -> None:
        """A fault event failed a healthy component."""
        self.faults_injected += 1

    def record_repair_applied(self) -> None:
        """A repair event restored a failed component."""
        self.repairs_applied += 1

    def record_tick_timing(
        self, *, reconcile_ns: int, solve_ns: int, apply_ns: int
    ) -> None:
        """One cycle's phase durations (integer nanoseconds, >= 0).

        Negative inputs are clamped to 0: ``perf_ns`` sources are
        monotone, but clamping keeps the recording path total-function
        under any future clock.
        """
        self.phase_hists["reconcile"].record(max(reconcile_ns, 0))
        self.phase_hists["solve"].record(max(solve_ns, 0))
        self.phase_hists["apply"].record(max(apply_ns, 0))

    def record_tick(self, batch_size: int, queue_depth: int, degraded: bool) -> None:
        """One scheduling cycle finished."""
        self.ticks += 1
        self._batch_sum += batch_size
        self._queue_depth_sum += queue_depth
        self.max_queue_depth = max(self.max_queue_depth, queue_depth)
        if degraded:
            self.degraded_ticks += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def mean_wait(self) -> float:
        """Mean queue wait of granted requests, in time units."""
        return self._wait_sum / self.allocated if self.allocated else 0.0

    @property
    def mean_batch(self) -> float:
        """Mean scheduled batch size per tick."""
        return self._batch_sum / self.ticks if self.ticks else 0.0

    @property
    def mean_queue_depth(self) -> float:
        """Mean post-tick queue depth."""
        return self._queue_depth_sum / self.ticks if self.ticks else 0.0

    def wait_histogram(self) -> dict[str, int]:
        """Granted-request waits, bucketed by tick multiples.

        Labels and counts are identical to the historic fixed-bucket
        implementation: each cut ``b * 1024`` units is a power of two,
        where :meth:`LatencyHistogram.count_below` is exact.
        """
        hist: dict[str, int] = {}
        below_prev = 0
        for bound in WAIT_BUCKET_TICKS:
            if math.isfinite(bound):
                below = self.wait_hist.count_below(int(bound) * UNITS_PER_TICK)
                hist[f"<= {bound:g} ticks"] = below - below_prev
                below_prev = below
            else:
                hist["> 32 ticks"] = self.wait_hist.count - below_prev
        return hist

    def wait_percentiles(self) -> dict[str, float]:
        """p50/p90/p99/p999 granted-request wait, in ticks.

        Each quantile is resolved on the unit histogram and mapped back
        through the recording shift (``units + 1`` upper-bounds
        ``ticks * 1024``), so the figure is a tight upper bound at the
        histogram's log-bucket resolution.
        """
        return {
            label: (value + 1) / UNITS_PER_TICK
            for label, value in self.wait_hist.percentiles().items()
        }

    def tick_timing(self) -> dict[str, dict[str, float]]:
        """Per-phase tick durations: total/mean and p50/p99, in ns.

        The breakdown the fabric benchmark uses to attribute where a
        cell's time goes (solve vs apply vs reconcile).  Quantiles come
        from the per-phase :class:`LatencyHistogram`, so merging
        per-cell metrics preserves them exactly.
        """
        timing: dict[str, dict[str, float]] = {}
        for phase in TICK_PHASES:
            hist = self.phase_hists[phase]
            p = hist.percentiles()
            timing[phase] = {
                "total_ns": hist.total,
                "mean_ns": hist.mean,
                "p50_ns": p["p50"],
                "p99_ns": p["p99"],
            }
        return timing

    def snapshot(self) -> dict[str, Any]:
        """All metrics as a plain dict (JSON-serialisable)."""
        return {
            "ticks": self.ticks,
            "submitted": self.submitted,
            "allocated": self.allocated,
            "released": self.released,
            "timed_out": self.timed_out,
            "rejected_full": self.rejected_full,
            "degraded_ticks": self.degraded_ticks,
            "revoked": self.revoked,
            "tick_retries": self.tick_retries,
            "faults_injected": self.faults_injected,
            "repairs_applied": self.repairs_applied,
            "mean_batch": self.mean_batch,
            "mean_wait": self.mean_wait,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "wait_histogram": self.wait_histogram(),
            "wait_percentiles": self.wait_percentiles(),
            "tick_timing": self.tick_timing(),
            "solver_ops": dict(sorted(self.counter.counts.items())),
            "solver_instructions": self.counter.total(INSTRUCTION_WEIGHTS),
        }

    def render(self, title: str | None = None) -> str:
        """ASCII table of the snapshot (histogram rows inlined)."""
        snap = self.snapshot()
        table = Table(["metric", "value"], title=title or "service metrics")
        for key in (
            "ticks", "submitted", "allocated", "released", "timed_out",
            "rejected_full", "degraded_ticks", "revoked", "tick_retries",
            "faults_injected", "repairs_applied",
        ):
            table.add_row(key, snap[key])
        table.add_row("mean_batch", f"{snap['mean_batch']:.3f}")
        table.add_row("mean_wait", f"{snap['mean_wait']:.3f}")
        table.add_row("mean_queue_depth", f"{snap['mean_queue_depth']:.3f}")
        table.add_row("max_queue_depth", snap["max_queue_depth"])
        for label, count in snap["wait_histogram"].items():
            table.add_row(f"wait {label}", count)
        for label, ticks in snap["wait_percentiles"].items():
            table.add_row(f"wait {label} (ticks)", f"{ticks:.3f}")
        for phase, stats in snap["tick_timing"].items():
            table.add_row(
                f"tick {phase} (us, mean/p99)",
                f"{stats['mean_ns'] / 1000:.1f} / {stats['p99_ns'] / 1000:.1f}",
            )
        table.add_row("solver_instructions", f"{snap['solver_instructions']:.0f}")
        if snap["allocated"]:
            table.add_row(
                "instructions_per_allocation",
                f"{snap['solver_instructions'] / snap['allocated']:.1f}",
            )
        return table.render()

"""Deterministic finite-horizon driver for the allocation service.

Builds an :class:`AllocationService` over a fresh MRSIN, runs a seeded
open-loop arrival process against it under a
:class:`~repro.service.clock.VirtualClock`, and returns the metrics
snapshot.  There is **no wall time anywhere**: arrivals, service
times, tick boundaries, and deadlines all live on the virtual clock,
so the same seed reproduces the identical snapshot, byte for byte —
the property the `serve` CLI and the tests rely on.

The workload rides on :mod:`repro.sim.workload`: a
:class:`~repro.sim.workload.WorkloadSpec` supplies the topology,
resource-type mix, priority levels, and initial circuit occupancy;
the driver adds the *online* part (Poisson arrivals per processor,
exponential service times, transmission-then-release lease lifecycle)
that the one-shot `sample_instance` snapshots cannot express.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.model import MRSIN
from repro.core.requests import DEFAULT_TYPE, Request
from repro.service.clock import Clock, VirtualClock
from repro.service.server import (
    AllocationError,
    AllocationRejected,
    AllocationService,
    AllocationTimeout,
    Lease,
    LeaseRevoked,
    ServiceClosed,
    ServiceConfig,
    ServiceFaulted,
)
from repro.sim.workload import WorkloadSpec, occupy_random_circuits
from repro.util.rng import make_rng, spawn_rngs
from repro.util.tables import Table

__all__ = ["ServiceRunResult", "acquire_with_retry", "run_service"]


@dataclass
class ServiceRunResult:
    """Outcome of one finite-horizon service run.

    Attributes
    ----------
    snapshot:
        The service metrics snapshot (see
        :meth:`~repro.service.server.AllocationService.snapshot`).
    horizon, rate, seed:
        The run parameters, echoed for table titles.
    network:
        Topology name of the MRSIN served.
    """

    snapshot: dict[str, Any]
    horizon: float
    rate: float
    seed: int
    network: str

    @property
    def allocated(self) -> int:
        """Requests granted within the horizon."""
        return self.snapshot["allocated"]

    @property
    def mean_wait(self) -> float:
        """Mean queue wait of granted requests."""
        return self.snapshot["mean_wait"]

    def render(self) -> str:
        """The metrics table plus a parameter header."""
        title = (
            f"service: {self.network}, rate={self.rate:g}/processor, "
            f"horizon={self.horizon:g}, seed={self.seed}"
        )
        table = Table(["metric", "value"], title=title)
        order = (
            "ticks", "submitted", "allocated", "released", "timed_out",
            "rejected_full", "degraded_ticks", "mean_batch", "mean_wait",
            "mean_queue_depth", "max_queue_depth",
        )
        for key in order:
            value = self.snapshot[key]
            table.add_row(key, f"{value:.3f}" if isinstance(value, float) else value)
        for label, count in self.snapshot["wait_histogram"].items():
            table.add_row(f"wait {label}", count)
        table.add_row("solver_instructions", f"{self.snapshot['solver_instructions']:.0f}")
        if self.allocated:
            per_alloc = self.snapshot["solver_instructions"] / self.allocated
            table.add_row("instructions_per_allocation", f"{per_alloc:.1f}")
        return table.render()


def run_service(
    spec: WorkloadSpec,
    *,
    rate: float = 0.5,
    horizon: float = 200.0,
    seed: int = 0,
    tick_interval: float = 1.0,
    max_batch: int | None = None,
    queue_limit: int = 64,
    degrade_watermark: int | None = None,
    request_timeout: float | None = 16.0,
    transmission_time: float = 0.1,
    mean_service: float = 1.0,
    warm_start: bool = True,
) -> ServiceRunResult:
    """Run the allocation service for ``horizon`` virtual time units.

    Parameters
    ----------
    spec:
        Workload description; the driver uses its topology builder,
        port count, resource-type mix, priority levels, and
        ``occupied_circuits`` (pre-established background load).  The
        request/free densities do not apply — arrivals are online.
    rate:
        Poisson arrival rate per processor (requests per time unit).
    request_timeout:
        Deadline each client attaches to ``acquire`` (``None`` waits
        forever).
    transmission_time, mean_service:
        Model item 5's two phases: the circuit is held for
        ``transmission_time``, the resource for an additional
        exponential service time of mean ``mean_service``.
    warm_start:
        Forwarded to :class:`~repro.service.server.ServiceConfig`:
        schedule ticks on the persistent warm-start flow engine
        (default) or rebuild the flow network from scratch every tick
        (the benchmark's cold comparator).

    Returns a :class:`ServiceRunResult`; identical arguments produce
    an identical result.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    return asyncio.run(
        _run(
            spec,
            rate=rate,
            horizon=horizon,
            seed=seed,
            tick_interval=tick_interval,
            max_batch=max_batch,
            queue_limit=queue_limit,
            degrade_watermark=degrade_watermark,
            request_timeout=request_timeout,
            transmission_time=transmission_time,
            mean_service=mean_service,
            warm_start=warm_start,
        )
    )


async def acquire_with_retry(
    service: AllocationService,
    request: Request,
    *,
    clock: Clock | None = None,
    rng: int | np.random.Generator | None = None,
    attempts: int = 6,
    base_delay: float = 0.5,
    max_delay: float = 8.0,
    timeout: float | None = None,
) -> Lease:
    """``acquire`` with exponential backoff on rejection/timeout.

    Retries only the *transient* failures — :class:`AllocationRejected`
    (queue full) and :class:`AllocationTimeout` (deadline passed while
    queued) — up to ``attempts`` total tries, sleeping
    ``min(max_delay, base_delay * 2**k)`` scaled by a jitter factor in
    ``[0.5, 1.0)`` between them.  :class:`ServiceClosed` (including
    :class:`~repro.service.server.ServiceFaulted`) and validation
    errors propagate immediately: a closed service will not reopen, so
    backing off would just hide the failure.

    The jitter is *deterministic*: pass a seed (or a prepared
    generator) for ``rng`` and the retry schedule reproduces exactly —
    the same :mod:`repro.util.rng` discipline the rest of the repo
    follows.  ``clock`` defaults to the service's own clock, so
    virtual-time tests control the backoff sleeps too.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if base_delay <= 0:
        raise ValueError(f"base_delay must be positive, got {base_delay}")
    if max_delay < base_delay:
        raise ValueError(f"max_delay {max_delay} < base_delay {base_delay}")
    gen = make_rng(rng)
    sleeper = clock if clock is not None else service.clock
    for attempt in range(attempts):
        try:
            return await service.acquire(request, timeout=timeout)
        except (AllocationRejected, AllocationTimeout):
            if attempt == attempts - 1:
                raise
            delay = min(max_delay, base_delay * 2.0**attempt)
            delay *= 0.5 + 0.5 * float(gen.random())
            await sleeper.sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


def _build_mrsin(spec: WorkloadSpec, rng: np.random.Generator) -> MRSIN:
    """The driver's initial system state (no pending requests)."""
    net = spec.builder(spec.n_ports)
    if spec.resource_types is not None:
        types = [
            spec.resource_types[i % len(spec.resource_types)]
            for i in range(net.n_resources)
        ]
    else:
        types = None
    if spec.priority_levels > 1:
        prefs = [
            int(rng.integers(1, spec.priority_levels + 1))
            for _ in range(net.n_resources)
        ]
    else:
        prefs = None
    mrsin = MRSIN(
        net,
        resource_types=types,
        preferences=prefs,
        max_priority=max(spec.priority_levels, 1),
        max_preference=max(spec.priority_levels, 1),
    )
    occupy_random_circuits(net, mrsin, spec.occupied_circuits, rng)
    return mrsin


async def _run(
    spec: WorkloadSpec,
    *,
    rate: float,
    horizon: float,
    seed: int,
    tick_interval: float,
    max_batch: int | None,
    queue_limit: int,
    degrade_watermark: int | None,
    request_timeout: float | None,
    transmission_time: float,
    mean_service: float,
    warm_start: bool = True,
) -> ServiceRunResult:
    clock = VirtualClock()
    setup_rng, *client_rngs = spawn_rngs(seed, 1 + spec.builder(spec.n_ports).n_processors)
    mrsin = _build_mrsin(spec, setup_rng)
    config = ServiceConfig(
        tick_interval=tick_interval,
        max_batch=max_batch,
        queue_limit=queue_limit,
        degrade_watermark=degrade_watermark,
        default_timeout=request_timeout,
        warm_start=warm_start,
    )
    service = AllocationService(mrsin, config=config, clock=clock)
    releasers: set[asyncio.Task] = set()
    async with service:
        clients = [
            asyncio.ensure_future(
                _client(
                    service, clock, processor=p, rng=client_rngs[p], spec=spec,
                    rate=rate, transmission_time=transmission_time,
                    mean_service=mean_service, releasers=releasers,
                )
            )
            for p in range(mrsin.n_processors)
        ]
        await clock.run_until(horizon)
        # Snapshot at the horizon, before teardown fails the still-queued
        # requests — so submitted == allocated + timed_out + queue_depth.
        snapshot = service.snapshot()
        for task in clients:
            task.cancel()
        await asyncio.gather(*clients, return_exceptions=True)
    for task in releasers:
        task.cancel()
    await asyncio.gather(*releasers, return_exceptions=True)
    if service.fault is not None:
        # The tick loop died mid-run: the snapshot is from a broken
        # service, so surface the fault instead of returning it.
        failure = ServiceFaulted(f"service faulted during run: {service.fault!r}")
        raise failure from service.fault
    return ServiceRunResult(
        snapshot=snapshot,
        horizon=horizon,
        rate=rate,
        seed=seed,
        network=mrsin.network.name,
    )


async def _client(
    service: AllocationService,
    clock: VirtualClock,
    *,
    processor: int,
    rng: np.random.Generator,
    spec: WorkloadSpec,
    rate: float,
    transmission_time: float,
    mean_service: float,
    releasers: set[asyncio.Task],
) -> None:
    """One processor's open-loop arrival stream.

    Arrivals are *open loop*: each spawns an independent task that
    queues on ``acquire`` — a processor may have several requests
    waiting (the MRSIN schedules at most one per cycle; the rest queue
    up, which is what exercises admission control and backpressure).
    All randomness is drawn here, in arrival order from this
    processor's private stream, so the spawned tasks are pure.
    """
    while True:
        await clock.sleep(float(rng.exponential(1.0 / rate)))
        rtype = (
            DEFAULT_TYPE
            if spec.resource_types is None
            else spec.resource_types[int(rng.integers(0, len(spec.resource_types)))]
        )
        priority = (
            1 if spec.priority_levels == 1
            else int(rng.integers(1, spec.priority_levels + 1))
        )
        hold = float(rng.exponential(mean_service))
        request = Request(processor, resource_type=rtype, priority=priority)
        task = asyncio.ensure_future(
            _handle_request(service, clock, request, transmission_time, hold)
        )
        releasers.add(task)
        task.add_done_callback(releasers.discard)


async def _handle_request(
    service: AllocationService,
    clock: VirtualClock,
    request: Request,
    transmission_time: float,
    hold: float,
) -> None:
    """One request's lifecycle: queue → lease → transmit → serve → free."""
    try:
        lease = await service.acquire(request)
    except AllocationError:
        return  # dropped; the metrics block has already counted it
    try:
        await clock.sleep(transmission_time)
        if lease.active:
            service.end_transmission(lease)
        await clock.sleep(hold)
    except (LeaseRevoked, ServiceClosed):
        return  # revoked by a fault, or torn down at shutdown
    finally:
        _release_quietly(service, lease)


def _release_quietly(service: AllocationService, lease: Lease) -> None:
    """Free the lease if custody is still ours; swallow teardown races.

    Runs in the ``finally`` of every request lifecycle so cancellation
    (driver teardown mid-sleep) cannot strand a granted lease — the
    escape R007 guards against.
    """
    if not lease.active:
        return  # released, revoked, or reclaimed — custody is gone
    try:
        service.release(lease)
    except (LeaseRevoked, ServiceClosed):
        pass  # a fault or shutdown beat us to it

"""The sharded allocation fabric: many cells, one lease namespace.

One :class:`~repro.service.server.AllocationService` is capped by a
single core's tick rate.  The fabric partitions a large installation
into **cells** — each an independent MRSIN served by its own
allocation service on its own event loop in its own OS process — and
puts a **cross-shard broker** in front: every request is routed to its
home cell first, and requests a home cell cannot place are escalated
to a **spill tier** solved over a reduced inter-cell flow network (a
small Clos/fat-tree whose nodes are cells and whose capacities are
exported spare capacity).  This is the paper's Section IV monitor
generalised to a monitor-per-cell, with the inter-cell network playing
the role of the shared interconnect one level up.

Layout:

- :mod:`repro.fabric.partition` — deterministic cell placement and the
  stable ``cell_id`` namespace (SHA-256 label hashing, never builtin
  ``hash``);
- :mod:`repro.fabric.messages` — the picklable broker↔cell protocol;
- :mod:`repro.fabric.cell` — the cell worker process;
- :mod:`repro.fabric.spill` — the reduced inter-cell spill network and
  its max-flow routing;
- :mod:`repro.fabric.broker` — process supervision, lease custody,
  spill escalation, whole-cell failure handling, snapshot merging;
- :mod:`repro.fabric.driver` — the seeded multi-process driver and the
  scaling sweep;
- :mod:`repro.fabric.chaos` — whole-cell kill/rejoin chaos with hard
  invariants.
"""

from repro.fabric.broker import FabricBroker, FabricError, FabricInvariantError
from repro.fabric.chaos import FabricChaosReport, run_fabric_chaos
from repro.fabric.driver import (
    ChaosSchedule,
    FabricConfig,
    FabricRunResult,
    run_fabric,
    sweep_cells,
)
from repro.fabric.partition import CELL_BUILDERS, FabricPartition
from repro.fabric.spill import SpillTopology, solve_spill

__all__ = [
    "CELL_BUILDERS",
    "ChaosSchedule",
    "FabricBroker",
    "FabricChaosReport",
    "FabricConfig",
    "FabricError",
    "FabricInvariantError",
    "FabricPartition",
    "FabricRunResult",
    "SpillTopology",
    "run_fabric",
    "run_fabric_chaos",
    "solve_spill",
    "sweep_cells",
]

"""The cross-shard broker: routing, custody, spill, and supervision.

The broker owns the fabric's cell processes and everything that spans
them:

- **Routing** — every arrival goes to its home cell first; the broker
  only batches and forwards.
- **Custody** — a registry of every live lease's fabric-wide name
  (``cell_id:local_id``) and serving cell, maintained from the grant
  and release lists in each :class:`~repro.fabric.messages.RoundResult`.
- **Spill** — requests a home cell reports unplaced are escalated and
  routed over the reduced inter-cell network
  (:func:`~repro.fabric.spill.solve_spill`); placements ship next
  round to a gateway port of the host cell, requests the flow cannot
  carry fail definitively.
- **Supervision** — a cell that dies (crash, kill, unresponsive pipe)
  has its leases revoked from the registry, its in-flight requests
  re-escalated through the spill tier, and may later rejoin as a fresh
  process under a new lease epoch.

Rounds are bulk-synchronous (send to all live cells, barrier on all
results), so fabric totals are seed-deterministic even though the
cells are real OS processes.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from dataclasses import dataclass, replace
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import Any, Sequence

from repro.fabric.cell import cell_main
from repro.fabric.messages import (
    CellSpec,
    FabricRequest,
    GrantMsg,
    RoundResult,
    RoundWork,
    Shutdown,
    SnapshotReply,
    SnapshotRequest,
)
from repro.fabric.partition import FabricPartition, gateway_port
from repro.fabric.spill import SpillTopology, solve_spill
from repro.service.clock import process_time_ns
from repro.service.metrics import TICK_PHASES, UNITS_PER_TICK
from repro.util.counters import OpCounter
from repro.util.histogram import LatencyHistogram

__all__ = [
    "FabricBroker",
    "FabricError",
    "FabricInvariantError",
    "LEASE_EPOCH_STRIDE",
    "RoundOutcome",
]

#: Local lease ids per cell incarnation: incarnation ``e`` names its
#: leases from ``e * LEASE_EPOCH_STRIDE``, so a rejoined cell can never
#: reuse a name revoked from its predecessor.
LEASE_EPOCH_STRIDE = 1_000_000_000


class FabricError(Exception):
    """The broker was used incorrectly or the protocol broke down."""


class FabricInvariantError(FabricError):
    """A hard fabric invariant failed (real exception: survives -O)."""


@dataclass
class _CellHandle:
    """One cell process as the broker sees it."""

    spec: CellSpec
    process: BaseProcess
    conn: Connection
    epoch: int
    alive: bool = True


@dataclass(frozen=True)
class RoundOutcome:
    """Everything the broker learned from one bulk-synchronous round."""

    round_no: int
    granted: tuple[GrantMsg, ...]
    spill_failed: tuple[FabricRequest, ...]
    released: int
    escalated: int
    spill_planned: int
    home_timeouts: int
    home_rejections: int
    deaths: tuple[int, ...]
    queue_depths: dict[int, int]
    active_leases: dict[int, int]
    spares: dict[int, int]
    critical_ns: int
    broker_ns: int
    idle: bool


class FabricBroker:
    """Supervisor of one fabric: spawn, route, spill, revoke, merge."""

    def __init__(
        self,
        partition: FabricPartition,
        *,
        queue_limit: int = 64,
        spill_after: int = 4,
        warm_engine: str = "kernel",
        spill_topology: SpillTopology | None = None,
        round_timeout: float = 120.0,
        start_method: str | None = None,
    ) -> None:
        self.partition = partition
        self.queue_limit = queue_limit
        self.spill_after = spill_after
        self.warm_engine = warm_engine
        self.spill_topology = spill_topology or SpillTopology()
        self.round_timeout = round_timeout
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._handles: list[_CellHandle] = []
        self._registry: dict[str, int] = {}
        self._inflight: dict[int, dict[int, FabricRequest]] = {
            i: {} for i in range(partition.n_cells)
        }
        self._pending_spill: list[FabricRequest] = []
        self._repooled: list[FabricRequest] = []
        self._round_no = 0
        self._started = False
        self._closed = False
        self.spill_counter = OpCounter()
        self.events: list[dict[str, Any]] = []
        self.counters: dict[str, int] = {
            "escalated": 0,
            "spill_planned": 0,
            "spill_failed": 0,
            "spill_solves": 0,
            "revoked_on_death": 0,
            "cells_died": 0,
            "cells_killed": 0,
            "cells_rejoined": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every cell process (epoch 0)."""
        if self._started:
            raise FabricError("fabric already started")
        self._started = True
        for placement in self.partition.cells:
            self._handles.append(self._spawn(placement.index, epoch=0))

    def close(self) -> None:
        """Shut every live cell down and reap the processes."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                handle.conn.send(Shutdown())
            except (BrokenPipeError, OSError):
                pass
            handle.alive = False
        for handle in self._handles:
            handle.process.join(timeout=10.0)
            if handle.process.is_alive():  # pragma: no cover - stuck cell
                handle.process.terminate()
                handle.process.join(timeout=10.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "FabricBroker":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _spawn(self, index: int, epoch: int) -> _CellHandle:
        placement = self.partition.cells[index]
        spec = CellSpec(
            index=index,
            cell_id=placement.cell_id,
            topology=self.partition.topology,
            ports=self.partition.ports,
            queue_limit=self.queue_limit,
            spill_after=self.spill_after,
            warm_engine=self.warm_engine,
            lease_base=epoch * LEASE_EPOCH_STRIDE,
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=cell_main,
            args=(child_conn, spec),
            name=f"fabric-{placement.cell_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._inflight[index] = {}
        return _CellHandle(
            spec=spec, process=process, conn=parent_conn, epoch=epoch
        )

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    @property
    def live_cells(self) -> list[int]:
        """Indices of cells currently serving."""
        return [h.spec.index for h in self._handles if h.alive]

    def kill_cell(self, index: int) -> None:
        """SIGKILL a cell (chaos): revoke its leases, respill its work."""
        handle = self._handle(index)
        if not handle.alive:
            raise FabricError(f"cell {index} is already down")
        pid = handle.process.pid
        if pid is None:  # pragma: no cover - started processes have pids
            raise FabricError(f"cell {index} has no pid")
        os.kill(pid, signal.SIGKILL)
        handle.process.join(timeout=10.0)
        self.counters["cells_killed"] += 1
        self._on_death(handle, reason="killed")

    def rejoin_cell(self, index: int) -> None:
        """Bring a dead cell back as a fresh process, one epoch later.

        The new incarnation starts empty (no leases, no queue) under a
        lease base that cannot collide with names its predecessor
        issued; traffic to the cell resumes on the next round.
        """
        handle = self._handle(index)
        if handle.alive:
            raise FabricError(f"cell {index} is still up")
        handle.process.join(timeout=10.0)
        epoch = handle.epoch + 1
        self._handles[index] = self._spawn(index, epoch=epoch)
        self.counters["cells_rejoined"] += 1
        self.events.append(
            {
                "round": self._round_no,
                "event": "cell-rejoin",
                "cell": index,
                "cell_id": handle.spec.cell_id,
                "epoch": epoch,
            }
        )

    def _handle(self, index: int) -> _CellHandle:
        if not self._started:
            raise FabricError("fabric not started")
        if not 0 <= index < len(self._handles):
            raise FabricError(f"no cell {index}")
        return self._handles[index]

    def _on_death(self, handle: _CellHandle, *, reason: str) -> None:
        """A cell is gone: revoke custody, re-escalate its in-flight work."""
        handle.alive = False
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - pipe already torn down
            pass
        index = handle.spec.index
        revoked = sorted(
            lease for lease, cell in self._registry.items() if cell == index
        )
        for lease in revoked:
            del self._registry[lease]
        inflight = self._inflight[index]
        repooled = [inflight[req_id] for req_id in sorted(inflight)]
        self._inflight[index] = {}
        self._repooled.extend(repooled)
        self.counters["cells_died"] += 1
        self.counters["revoked_on_death"] += len(revoked)
        self.events.append(
            {
                "round": self._round_no,
                "event": "cell-death",
                "cell": index,
                "cell_id": handle.spec.cell_id,
                "reason": reason,
                "revoked": revoked,
                "repooled": len(repooled),
            }
        )

    # ------------------------------------------------------------------
    # The bulk-synchronous round
    # ------------------------------------------------------------------
    def run_round(
        self, arrivals: Sequence[FabricRequest], ticks: int
    ) -> RoundOutcome:
        """One round: deliver, barrier, account, spill-route.

        ``critical_ns`` in the outcome is the slowest cell's CPU cost
        for the round — the round's span on a one-core-per-cell
        deployment — and ``broker_ns`` the broker's own serial CPU.
        """
        if not self._started or self._closed:
            raise FabricError("fabric not running")
        cpu_start = process_time_ns()
        self._round_no += 1
        deaths: list[int] = []
        pool: list[FabricRequest] = list(self._repooled)
        self._repooled = []

        batches: dict[int, list[FabricRequest]] = {
            i: [] for i in range(self.partition.n_cells)
        }
        for request in self._pending_spill:
            batches[request.cell].append(request)
        self._pending_spill = []
        for request in arrivals:
            batches[request.cell].append(request)

        # A batch aimed at a dead cell is a delivery failure, not a
        # placement failure: back to the escalation pool.
        for index, batch in sorted(batches.items()):
            if batch and not self._handles[index].alive:
                pool.extend(batch)
                batches[index] = []

        for handle in self._handles:
            if not handle.alive:
                continue
            index = handle.spec.index
            work = RoundWork(
                round_no=self._round_no,
                ticks=ticks,
                arrivals=tuple(batches[index]),
            )
            try:
                handle.conn.send(work)
            except (BrokenPipeError, OSError):
                self._on_death(handle, reason="send-failed")
                deaths.append(index)
                pool.extend(batches[index])
                continue
            for request in work.arrivals:
                self._inflight[index][request.req_id] = request

        results: dict[int, RoundResult] = {}
        for handle in self._handles:
            if not handle.alive:
                continue
            index = handle.spec.index
            try:
                if not handle.conn.poll(self.round_timeout):
                    raise EOFError(f"cell {index} unresponsive")
                message = handle.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                self._on_death(handle, reason="recv-failed")
                deaths.append(index)
                continue
            if not isinstance(message, RoundResult):
                raise FabricError(
                    f"cell {index} sent {type(message).__name__}, "
                    "expected RoundResult"
                )
            if message.round_no != self._round_no:
                raise FabricError(
                    f"cell {index} answered round {message.round_no} "
                    f"during round {self._round_no}"
                )
            results[index] = message

        # Deaths detected mid-round repooled their in-flight work into
        # self._repooled; fold it into this round's escalation pool so
        # the spill solve sees it immediately.
        pool.extend(self._repooled)
        self._repooled = []

        granted_all: list[GrantMsg] = []
        spill_failed: list[FabricRequest] = []
        released = 0
        home_timeouts = 0
        home_rejections = 0
        for index in sorted(results):
            result = results[index]
            for grant in result.granted:
                self._inflight[index].pop(grant.req_id, None)
                if grant.lease_id in self._registry:
                    raise FabricInvariantError(
                        f"duplicate lease name {grant.lease_id!r}"
                    )
                self._registry[grant.lease_id] = index
                granted_all.append(grant)
            for lease_id in result.released:
                if self._registry.pop(lease_id, None) is not None:
                    released += 1
            for unplaced in result.unplaced:
                self._inflight[index].pop(unplaced.request.req_id, None)
                if unplaced.request.spilled:
                    # Second strike: the spill host could not place it
                    # either — fail it definitively.
                    spill_failed.append(unplaced.request)
                elif unplaced.reason == "rejected":
                    home_rejections += 1
                    pool.append(unplaced.request)
                else:
                    home_timeouts += 1
                    pool.append(unplaced.request)

        escalated = len(pool)
        planned = self._route_spills(pool, results, spill_failed)

        spares = {i: r.spare for i, r in sorted(results.items())}
        queue_depths = {i: r.queue_depth for i, r in sorted(results.items())}
        active = {i: r.active_leases for i, r in sorted(results.items())}
        self.counters["escalated"] += escalated
        self.counters["spill_planned"] += planned
        self.counters["spill_failed"] += len(spill_failed)
        idle = (
            not self._pending_spill
            and not self._repooled
            and all(not flights for flights in self._inflight.values())
            and all(r.queue_depth == 0 for r in results.values())
            and all(r.active_leases == 0 for r in results.values())
            and not granted_all
        )
        critical_ns = max(
            (r.compute_ns for r in results.values()), default=0
        )
        return RoundOutcome(
            round_no=self._round_no,
            granted=tuple(granted_all),
            spill_failed=tuple(spill_failed),
            released=released,
            escalated=escalated,
            spill_planned=planned,
            home_timeouts=home_timeouts,
            home_rejections=home_rejections,
            deaths=tuple(deaths),
            queue_depths=queue_depths,
            active_leases=active,
            spares=spares,
            critical_ns=critical_ns,
            broker_ns=max(process_time_ns() - cpu_start, 0),
            idle=idle,
        )

    def _route_spills(
        self,
        pool: list[FabricRequest],
        results: dict[int, RoundResult],
        spill_failed: list[FabricRequest],
    ) -> int:
        """Route the escalation pool over the reduced network.

        Placements become next round's deliveries (retargeted at a
        stable gateway port of the host cell); demand the max flow
        cannot carry is appended to ``spill_failed``.  Returns the
        number of placements planned.
        """
        if not pool:
            return 0
        pool.sort(key=lambda request: request.req_id)
        demands: dict[int, int] = {}
        for request in pool:
            demands[request.origin_cell] = demands.get(request.origin_cell, 0) + 1
        spares = {index: result.spare for index, result in results.items()}
        routes = solve_spill(
            demands,
            spares,
            topology=self.spill_topology,
            n_cells=self.partition.n_cells,
            counter=self.spill_counter,
        )
        self.counters["spill_solves"] += 1
        by_origin: dict[int, list[FabricRequest]] = {}
        for request in pool:
            by_origin.setdefault(request.origin_cell, []).append(request)
        planned = 0
        for origin in sorted(by_origin):
            waiting = by_origin[origin]
            for host in sorted(h for (o, h) in routes if o == origin):
                quota = routes[(origin, host)]
                while quota > 0 and waiting:
                    request = waiting.pop(0)
                    self._pending_spill.append(
                        replace(
                            request,
                            cell=host,
                            processor=gateway_port(
                                request.req_id, self.partition.ports
                            ),
                            spilled=True,
                        )
                    )
                    planned += 1
                    quota -= 1
            spill_failed.extend(waiting)
        return planned

    # ------------------------------------------------------------------
    # Custody and reporting
    # ------------------------------------------------------------------
    @property
    def registry_size(self) -> int:
        """Live leases under broker custody, fabric-wide."""
        return len(self._registry)

    def lease_owner(self, lease_id: str) -> int | None:
        """The cell serving ``lease_id``, or None if not live."""
        return self._registry.get(lease_id)

    def snapshot(self) -> dict[str, Any]:
        """Per-cell snapshots plus exact merged fabric-wide metrics.

        Wait and tick-phase quantiles are computed on histograms merged
        with :meth:`LatencyHistogram.merge` — lossless, not an average
        of per-cell quantiles.
        """
        replies: dict[int, SnapshotReply] = {}
        for handle in self._handles:
            if not handle.alive:
                continue
            index = handle.spec.index
            try:
                handle.conn.send(SnapshotRequest())
                if not handle.conn.poll(self.round_timeout):
                    raise EOFError(f"cell {index} unresponsive")
                message = handle.conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                self._on_death(handle, reason="snapshot-failed")
                continue
            if not isinstance(message, SnapshotReply):
                raise FabricError(
                    f"cell {index} sent {type(message).__name__}, "
                    "expected SnapshotReply"
                )
            replies[index] = message

        wait = LatencyHistogram()
        phases = {phase: LatencyHistogram() for phase in TICK_PHASES}
        allocated = 0
        for index in sorted(replies):
            reply = replies[index]
            wait.merge(reply.hists["wait"])
            for phase in TICK_PHASES:
                phases[phase].merge(reply.hists[f"tick_{phase}"])
            allocated += int(reply.snapshot["allocated"])

        wait_percentiles = {
            label: (value + 1) / UNITS_PER_TICK
            for label, value in wait.percentiles().items()
        }
        tick_timing: dict[str, dict[str, float]] = {}
        for phase in TICK_PHASES:
            hist = phases[phase]
            quantiles = hist.percentiles()
            tick_timing[phase] = {
                "total_ns": hist.total,
                "mean_ns": hist.mean,
                "p50_ns": quantiles["p50"],
                "p99_ns": quantiles["p99"],
            }
        return {
            "cells": {
                replies[index].cell_id: replies[index].snapshot
                for index in sorted(replies)
            },
            "merged": {
                "allocated": allocated,
                "wait_percentiles": wait_percentiles,
                "tick_timing": tick_timing,
            },
            "broker": {
                "rounds": self._round_no,
                "live_cells": self.live_cells,
                "registry_size": self.registry_size,
                "pending_spill": len(self._pending_spill),
                "counters": dict(sorted(self.counters.items())),
                "events": len(self.events),
                "spill_solver_ops": dict(
                    sorted(self.spill_counter.counts.items())
                ),
            },
        }

"""Whole-cell chaos: kill a live cell mid-run, watch the fabric heal.

The faults layer (:mod:`repro.faults`) breaks links, switchboxes, and
resources *inside* one service.  The fabric's failure unit is coarser:
an entire cell process dies (SIGKILL — no goodbye, no flush).  This
harness runs a seeded workload with one scheduled whole-cell kill and
optional rejoin, then enforces the fabric's hard invariants with real
exceptions (``-O`` safe):

1. **Custody revocation** — every lease the dead cell was serving is
   revoked, all revoked ids carry the dead cell's prefix, and no other
   cell's lease is touched;
2. **Continued service** — the surviving cells keep granting during
   the outage window (the fabric degrades, it does not stop);
3. **Respill** — work stranded by the death re-enters the spill tier
   (escalations strictly exceed a no-chaos run of the same seed when
   the dead cell had traffic);
4. **Clean rejoin** — a rejoined cell serves again under a fresh lease
   epoch, and the run still drains to zero leases and exact request
   conservation (enforced inside :func:`~repro.fabric.driver.run_fabric`);
5. **Determinism** — with ``verify_determinism``, a second run of the
   same seed settles every request identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.broker import FabricInvariantError
from repro.fabric.driver import ChaosSchedule, FabricConfig, FabricRunResult, run_fabric
from repro.util.tables import Table

__all__ = ["FabricChaosReport", "run_fabric_chaos"]


@dataclass
class FabricChaosReport:
    """Outcome of one clean fabric-chaos run (invariants all held)."""

    result: FabricRunResult
    schedule: ChaosSchedule
    revoked: int
    granted_during_outage: int
    deterministic: bool | None

    def render(self) -> str:
        """ASCII summary of the chaos run."""
        cfg = self.result.config
        table = Table(
            ["metric", "value"],
            title=(
                f"fabric chaos {cfg.topology}-{cfg.ports} x {cfg.cells}, "
                f"kill cell {self.schedule.cell} @ round {self.schedule.kill_round}"
            ),
        )
        table.add_row("rejoin round", self.schedule.rejoin_round or "never")
        table.add_row("leases revoked at kill", self.revoked)
        table.add_row("grants during outage", self.granted_during_outage)
        for key in (
            "offered", "allocated", "spill_allocated", "spill_failed",
            "escalated", "revoked_on_death",
        ):
            table.add_row(key, self.result.totals[key])
        if self.deterministic is not None:
            table.add_row("deterministic rerun", self.deterministic)
        return table.render()


def _outage_grants(result: FabricRunResult, schedule: ChaosSchedule) -> int:
    """Grants landed while the killed cell was down."""
    end = schedule.rejoin_round or len(result.per_round_granted)
    # per_round_granted is 0-indexed by round; rounds are 1-based.
    window = result.per_round_granted[schedule.kill_round - 1 : end]
    return sum(window)


def run_fabric_chaos(
    config: FabricConfig,
    schedule: ChaosSchedule | None = None,
    *,
    verify_determinism: bool = False,
) -> FabricChaosReport:
    """Run the kill/rejoin scenario and enforce the chaos invariants."""
    schedule = schedule or ChaosSchedule()
    if config.cells < 2:
        raise ValueError("fabric chaos needs at least 2 cells")
    if schedule.kill_round > config.rounds:
        raise ValueError(
            f"kill_round {schedule.kill_round} beyond {config.rounds} rounds"
        )
    result = run_fabric(config, chaos=schedule)

    deaths = [e for e in result.events if e["event"] == "cell-death"]
    kills = [e for e in deaths if e["reason"] == "killed"]
    if len(kills) != 1:
        raise FabricInvariantError(
            f"expected exactly one scheduled kill, saw {len(kills)}"
        )
    kill = kills[0]
    prefix = f"{kill['cell_id']}:"
    for lease_id in kill["revoked"]:
        if not lease_id.startswith(prefix):
            raise FabricInvariantError(
                f"revoked {lease_id!r} does not belong to killed cell "
                f"{kill['cell_id']}"
            )
    foreign = [
        lease_id
        for lease_id in result.revoked_lease_ids
        if not lease_id.startswith(prefix)
    ]
    if foreign:
        raise FabricInvariantError(
            f"revocation bled outside the killed cell: {foreign[:3]!r}"
        )
    if result.totals["revoked_on_death"] != len(kill["revoked"]):
        raise FabricInvariantError(
            "revocation accounting mismatch: "
            f"{result.totals['revoked_on_death']} != {len(kill['revoked'])}"
        )

    outage = _outage_grants(result, schedule)
    if outage == 0:
        raise FabricInvariantError(
            "fabric stopped granting during the outage window"
        )
    if result.totals["escalated"] == 0:
        raise FabricInvariantError(
            "death stranded no work and home cells never spilled — "
            "the scenario exercised nothing (raise the load)"
        )
    if schedule.rejoin_round is not None and result.totals["cells_rejoined"] != 1:
        raise FabricInvariantError("scheduled rejoin did not happen")

    deterministic: bool | None = None
    if verify_determinism:
        rerun = run_fabric(config, chaos=schedule)
        deterministic = (
            rerun.totals == result.totals
            and rerun.revoked_lease_ids == result.revoked_lease_ids
            and rerun.per_round_granted == result.per_round_granted
        )
        if not deterministic:
            raise FabricInvariantError(
                "chaos run is not deterministic: "
                f"{result.totals} != {rerun.totals}"
            )

    return FabricChaosReport(
        result=result,
        schedule=schedule,
        revoked=len(kill["revoked"]),
        granted_during_outage=outage,
        deterministic=deterministic,
    )

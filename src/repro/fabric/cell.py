"""The cell worker: one allocation service, one process, one loop.

:func:`cell_main` is the target of each cell's OS process.  It builds
an :class:`~repro.service.server.AllocationService` over the cell's
own MRSIN on a **persistent** event loop, then serves the broker's
bulk-synchronous protocol: a blocking ``conn.recv()`` in plain
synchronous code picks up each :class:`~repro.fabric.messages.RoundWork`,
``loop.run_until_complete`` runs the round's ticks, and the
:class:`~repro.fabric.messages.RoundResult` goes back on the pipe.
Pending ``acquire`` tasks survive between rounds because the loop
object persists — only *running* stops at each round boundary.

Ticks run on a :class:`~repro.service.clock.VirtualClock`, manually
stepped exactly like the chaos harness, so a cell's behaviour is a
pure function of the arrivals the broker feeds it — the source of the
fabric's seed-deterministic totals.
"""

from __future__ import annotations

import asyncio
from multiprocessing.connection import Connection

from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.fabric.messages import (
    CellSpec,
    FabricRequest,
    GrantMsg,
    RoundResult,
    RoundWork,
    Shutdown,
    SnapshotReply,
    SnapshotRequest,
    UnplacedMsg,
)
from repro.fabric.partition import CELL_BUILDERS
from repro.service.clock import VirtualClock, process_time_ns
from repro.service.metrics import TICK_PHASES
from repro.service.server import (
    AllocationRejected,
    AllocationService,
    AllocationTimeout,
    Lease,
    ServiceClosed,
    ServiceConfig,
)
from repro.util.histogram import LatencyHistogram

__all__ = ["CellWorker", "cell_main"]


class CellWorker:
    """Round-by-round driver of one cell's allocation service.

    Lives inside the cell process, but is plain-Python testable: the
    broker-facing behaviour is ``run_round(work) -> RoundResult`` plus
    ``snapshot_reply()``, with no pipe in sight.
    """

    def __init__(self, spec: CellSpec) -> None:
        self.spec = spec
        self.clock = VirtualClock()
        self.mrsin = MRSIN(CELL_BUILDERS[spec.topology](spec.ports))
        self.service = AllocationService(
            self.mrsin,
            config=ServiceConfig(
                queue_limit=spec.queue_limit,
                default_timeout=float(spec.spill_after),
                warm_start=True,
                warm_engine=spec.warm_engine,
            ),
            clock=self.clock,
        )
        self._tick = 0
        # (end_transmission_tick, release_tick, lease, origin request)
        self._held: list[tuple[int, int, Lease, FabricRequest]] = []
        self._granted: list[GrantMsg] = []
        self._released: list[str] = []
        self._unplaced: list[UnplacedMsg] = []
        self._submitters: set[asyncio.Task[None]] = set()

    # ------------------------------------------------------------------
    # Round protocol
    # ------------------------------------------------------------------
    async def run_round(self, work: RoundWork) -> RoundResult:
        """Inject the round's arrivals, run its ticks, account exactly."""
        cpu_start = process_time_ns()
        self._granted = []
        self._released = []
        self._unplaced = []
        by_tick: dict[int, list[FabricRequest]] = {}
        for arrival in work.arrivals:
            by_tick.setdefault(arrival.arrive_tick % work.ticks, []).append(arrival)
        for offset in range(work.ticks):
            for arrival in by_tick.get(offset, ()):
                task = asyncio.ensure_future(self._submit(arrival))
                self._submitters.add(task)
                task.add_done_callback(self._submitters.discard)
            # Let fresh submitters reach their acquire() await so this
            # tick's batch sees them queued.
            await self.clock.run_until(self.clock.now())
            self._step_tick()
            # advance() drains the loop after waking sleepers, so
            # grants and timeouts resolved by the tick above are
            # adopted/recorded before the round result is built.
            await self.clock.advance(1.0)
            self._tick += 1
        return self._round_result(work, cpu_start)

    def snapshot_reply(self) -> SnapshotReply:
        """Full metrics snapshot plus raw mergeable histograms."""
        metrics = self.service.metrics
        hists: dict[str, LatencyHistogram] = {"wait": metrics.wait_hist}
        for phase in TICK_PHASES:
            hists[f"tick_{phase}"] = metrics.phase_hists[phase]
        return SnapshotReply(
            cell=self.spec.index,
            cell_id=self.spec.cell_id,
            snapshot=self.service.snapshot(),
            hists=hists,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lease_name(self, lease: Lease) -> str:
        return f"{self.spec.cell_id}:{self.spec.lease_base + lease.lease_id}"

    async def _submit(self, arrival: FabricRequest) -> None:
        request = Request(arrival.processor, tag=arrival.req_id)
        try:
            lease = await self.service.acquire(request)
        except AllocationRejected:
            self._unplaced.append(UnplacedMsg(arrival, "rejected"))
            return
        except AllocationTimeout:
            self._unplaced.append(UnplacedMsg(arrival, "timeout"))
            return
        except ServiceClosed:
            return
        self._adopt(lease, arrival)

    def _adopt(self, lease: Lease, arrival: FabricRequest) -> None:
        """Take custody of a fresh grant: name it, schedule its life."""
        self._granted.append(
            GrantMsg(
                req_id=arrival.req_id,
                lease_id=self._lease_name(lease),
                waited_ticks=lease.waited,
                spilled=arrival.spilled,
            )
        )
        end_tx = self._tick + 1
        self._held.append(
            (end_tx, end_tx + max(arrival.hold_ticks, 1), lease, arrival)
        )

    def _step_tick(self) -> None:
        """One synchronous tick: lease lifecycle, then a service cycle.

        Synchronous on purpose: the held-lease read-modify-write never
        spans an ``await``, so there is no suspension a revocation
        could slip into between the read and the write-back.
        """
        surviving: list[tuple[int, int, Lease, FabricRequest]] = []
        for end_tx, release_at, lease, arrival in self._held:
            if lease.revoked or not lease.active:
                continue  # a fault (or cell chaos) already severed it
            if self._tick >= release_at:
                self.service.release(lease)
                self._released.append(self._lease_name(lease))
                continue
            if self._tick >= end_tx and lease.transmitting:
                self.service.end_transmission(lease)
            surviving.append((end_tx, release_at, lease, arrival))
        self._held = surviving
        self.service.run_one_cycle()

    def cancel_pending(self) -> None:
        """Cancel acquire tasks still parked across round boundaries."""
        for task in sorted(self._submitters, key=lambda t: t.get_name()):
            task.cancel()

    def _round_result(self, work: RoundWork, cpu_start: int) -> RoundResult:
        free = len(self.mrsin.free_resources())
        busy = sum(1 for res in self.mrsin.resources if res.busy)
        return RoundResult(
            round_no=work.round_no,
            cell=self.spec.index,
            granted=tuple(self._granted),
            released=tuple(self._released),
            unplaced=tuple(self._unplaced),
            spare=max(free - self.service.queue_depth, 0),
            queue_depth=self.service.queue_depth,
            active_leases=self.service.active_leases,
            busy_resources=busy,
            compute_ns=max(process_time_ns() - cpu_start, 0),
        )


def cell_main(conn: Connection, spec: CellSpec) -> None:
    """Process entry point: serve the broker until Shutdown or EOF.

    The receive loop is plain synchronous code — the blocking
    ``conn.recv()`` never runs inside a coroutine — and every round is
    executed with ``loop.run_until_complete`` on one persistent loop,
    so acquire() tasks parked across a round boundary stay alive.
    """
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    worker = CellWorker(spec)
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break  # broker went away; nothing left to serve
            if isinstance(message, Shutdown):
                break
            if isinstance(message, RoundWork):
                conn.send(loop.run_until_complete(worker.run_round(message)))
            elif isinstance(message, SnapshotRequest):
                conn.send(worker.snapshot_reply())
    except (BrokenPipeError, OSError, KeyboardInterrupt):
        pass  # broker died mid-send or the run was interrupted
    finally:
        worker.cancel_pending()
        try:
            loop.run_until_complete(asyncio.sleep(0))
        except RuntimeError:  # pragma: no cover - loop already closing
            pass
        loop.close()
        conn.close()

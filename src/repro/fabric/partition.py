"""Deterministic cell placement and the fabric-wide name space.

A fabric partitions ``cells * ports`` processors (and as many
resources) into ``cells`` equal shards.  Each shard gets a stable
**cell id** derived from its label with
:func:`repro.util.labels.label_tag` — a SHA-256 tag, *never* builtin
``hash``, which is salted per process and would give every cell
process a different idea of the namespace.  Fabric-wide lease names
are ``"{cell_id}:{local_id}"``; spilled requests enter their host cell
on a **gateway port** chosen by the same stable hash so routing is
reproducible across runs and across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.networks import benes, clos, omega
from repro.networks.topology import MultistageNetwork
from repro.util.labels import label_hash, label_tag

__all__ = ["CELL_BUILDERS", "CellPlacement", "FabricPartition", "gateway_port"]

#: Topologies a cell's intra-shard MRSIN may use.  Mirrors the chaos
#: registry (kept local so ``repro.fabric`` never imports the CLI).
CELL_BUILDERS: dict[str, Callable[[int], MultistageNetwork]] = {
    "omega": omega,
    "benes": benes,
    "clos": lambda n: clos(max(n // 2, 1), 2, max(n // 2, 1)),
}


def gateway_port(req_id: int, ports: int) -> int:
    """The local input port a spilled request enters its host cell on.

    Derived from the fabric-wide request id with a stable hash, so the
    broker (which picks the port) and any replay of the run agree.
    """
    if ports < 1:
        raise ValueError(f"ports must be >= 1, got {ports}")
    return label_hash(f"spill:{req_id}", bits=32) % ports


@dataclass(frozen=True)
class CellPlacement:
    """One cell's place in the fabric.

    Attributes
    ----------
    index:
        Dense cell index ``0..n_cells-1`` (wire-protocol addressing).
    label:
        Human-readable label, e.g. ``"omega-32#3"``.
    cell_id:
        Stable hex tag of the label — the lease-namespace prefix.
    """

    index: int
    label: str
    cell_id: str


class FabricPartition:
    """An equal split of a large installation into identical cells.

    Processor ``p`` (fabric-wide, ``0 <= p < cells * ports``) lives in
    cell ``p // ports`` at local port ``p % ports``.  Every cell runs
    the same topology at the same radix, so the spill tier may treat
    spare capacity as fungible across cells.
    """

    def __init__(self, topology: str, ports: int, n_cells: int) -> None:
        if topology not in CELL_BUILDERS:
            raise ValueError(
                f"unknown topology {topology!r}; "
                f"choose from {sorted(CELL_BUILDERS)}"
            )
        if ports < 2:
            raise ValueError(f"ports must be >= 2, got {ports}")
        if n_cells < 1:
            raise ValueError(f"n_cells must be >= 1, got {n_cells}")
        self.topology = topology
        self.ports = ports
        self.n_cells = n_cells
        self.cells: tuple[CellPlacement, ...] = tuple(
            CellPlacement(
                index=i,
                label=f"{topology}-{ports}#{i}",
                cell_id=label_tag(f"{topology}-{ports}#{i}"),
            )
            for i in range(n_cells)
        )
        ids = {placement.cell_id for placement in self.cells}
        if len(ids) != n_cells:  # 8-hex-char tag collision: astronomically rare
            raise ValueError(
                f"cell_id collision across {n_cells} cells of {topology}-{ports}"
            )

    @property
    def n_processors(self) -> int:
        """Fabric-wide processor count."""
        return self.n_cells * self.ports

    def home_cell(self, processor: int) -> int:
        """The cell index owning fabric-wide ``processor``."""
        if not 0 <= processor < self.n_processors:
            raise ValueError(
                f"processor {processor} outside fabric of {self.n_processors}"
            )
        return processor // self.ports

    def local_port(self, processor: int) -> int:
        """``processor``'s input port within its home cell."""
        if not 0 <= processor < self.n_processors:
            raise ValueError(
                f"processor {processor} outside fabric of {self.n_processors}"
            )
        return processor % self.ports

    def global_processor(self, cell: int, local_port: int) -> int:
        """The fabric-wide index of ``local_port`` in ``cell``."""
        if not 0 <= cell < self.n_cells:
            raise ValueError(f"cell {cell} outside fabric of {self.n_cells}")
        if not 0 <= local_port < self.ports:
            raise ValueError(f"local port {local_port} outside cell of {self.ports}")
        return cell * self.ports + local_port

    def build_network(self) -> MultistageNetwork:
        """A fresh intra-cell network instance (one per cell process)."""
        return CELL_BUILDERS[self.topology](self.ports)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FabricPartition({self.topology}-{self.ports} x {self.n_cells})"
        )

"""The spill tier: inter-cell routing over a reduced flow network.

When a home cell cannot place a request (admission-queue overflow or a
queue wait past ``spill_after`` ticks), the broker escalates it to the
spill tier.  Spill routing is itself an instance of the paper's
resource-sharing problem **one level up**: the "processors" are cells
with unplaced demand, the "resources" are cells exporting spare
capacity, and the interconnect is a small Clos/fat-tree whose leaves
are cells, grouped under aggregation pods with bounded uplinks and a
bounded core trunk.  A max-flow solve over that reduced network (a few
dozen nodes, regardless of how many thousand ports the cells contain)
decides how many requests each origin may ship to each destination —
capacity limits on pods and trunk fall out of the flow constraints
rather than ad-hoc rate limiting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.flows.dinic import dinic
from repro.flows.graph import FlowNetwork, Node
from repro.util.counters import OpCounter

__all__ = ["SpillTopology", "build_spill_network", "solve_spill"]


@dataclass(frozen=True)
class SpillTopology:
    """Shape of the reduced inter-cell network.

    Attributes
    ----------
    group_size:
        Cells per aggregation pod (fat-tree leaves per edge switch).
    uplink:
        Per-cell link capacity to its pod, in requests per round —
        both directions (out of an origin, into a destination).
    trunk:
        Core capacity between any pod pair, in requests per round.
    """

    group_size: int = 4
    uplink: int = 8
    trunk: int = 32

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if self.uplink < 1:
            raise ValueError(f"uplink must be >= 1, got {self.uplink}")
        if self.trunk < 1:
            raise ValueError(f"trunk must be >= 1, got {self.trunk}")


def build_spill_network(
    demands: Mapping[int, int],
    spares: Mapping[int, int],
    topology: SpillTopology,
    n_cells: int,
) -> tuple[FlowNetwork, Node, Node]:
    """The reduced Clos: source -> origins -> pods -> core -> pods -> hosts -> sink.

    Nodes are tuples: ``("out", c)`` is cell ``c`` as an origin,
    ``("in", c)`` as a destination, ``("up", g)``/``("down", g)`` the
    ascending/descending side of pod ``g``, and ``"core"`` the trunk.
    Same-pod spills bypass the core over an intra-pod arc, exactly as
    a fat-tree keeps pod-local traffic off the spine.
    """
    net = FlowNetwork()
    source: Node = "source"
    sink: Node = "sink"
    n_groups = (n_cells + topology.group_size - 1) // topology.group_size
    for cell in range(n_cells):
        group = cell // topology.group_size
        demand = demands.get(cell, 0)
        if demand > 0:
            net.add_arc(source, ("out", cell), demand)
            net.add_arc(("out", cell), ("up", group), topology.uplink)
        spare = spares.get(cell, 0)
        if spare > 0:
            net.add_arc(("down", group), ("in", cell), topology.uplink)
            net.add_arc(("in", cell), sink, spare)
    pod_capacity = topology.uplink * topology.group_size
    for group in range(n_groups):
        net.add_arc(("up", group), ("down", group), pod_capacity)
        if n_groups > 1:
            net.add_arc(("up", group), "core", topology.trunk)
            net.add_arc("core", ("down", group), topology.trunk)
    return net, source, sink


def solve_spill(
    demands: Mapping[int, int],
    spares: Mapping[int, int],
    *,
    topology: SpillTopology,
    n_cells: int,
    counter: OpCounter | None = None,
) -> dict[tuple[int, int], int]:
    """Max-flow spill routing: how many requests go origin -> host.

    Returns ``{(origin_cell, host_cell): count}`` covering the largest
    demand volume the reduced network admits; what the flow leaves
    behind is genuinely unplaceable this round (no spare reachable
    within pod/trunk capacity) and the broker fails it.  The result is
    deterministic: the network is built in cell order and Dinic's
    augmentation order is a function of insertion order alone.
    """
    total_demand = sum(demands.values())
    total_spare = sum(spares.values())
    if total_demand == 0 or total_spare == 0:
        return {}
    net, source, sink = build_spill_network(demands, spares, topology, n_cells)
    dinic(net, source, sink, counter=counter)
    routes: dict[tuple[int, int], int] = {}
    for path in net.decompose_paths(source, sink):
        origin_node = path[0].head
        host_node = path[-1].tail
        if not (isinstance(origin_node, tuple) and isinstance(host_node, tuple)):
            raise RuntimeError(f"malformed spill path {path!r}")
        key = (int(origin_node[1]), int(host_node[1]))
        routes[key] = routes.get(key, 0) + 1
    return routes

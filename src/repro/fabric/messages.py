"""The picklable broker <-> cell wire protocol.

Everything crossing a process boundary is a frozen dataclass of plain
values (plus :class:`~repro.util.histogram.LatencyHistogram`, whose
attribute-only state pickles losslessly), so the default pickler works
under both ``fork`` and ``spawn`` start methods.

The protocol is bulk-synchronous: the broker sends one
:class:`RoundWork` per cell per round and barriers on the matching
:class:`RoundResult` from every live cell.  Because each cell runs its
ticks on a :class:`~repro.service.clock.VirtualClock` and the broker
only acts on complete rounds, the fabric's allocation totals are a
pure function of the seed — real multiprocessing, deterministic
outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util.histogram import LatencyHistogram

__all__ = [
    "CellSpec",
    "FabricRequest",
    "GrantMsg",
    "RoundResult",
    "RoundWork",
    "Shutdown",
    "SnapshotReply",
    "SnapshotRequest",
    "UnplacedMsg",
]


@dataclass(frozen=True)
class CellSpec:
    """Everything a cell process needs to build its service.

    ``lease_base`` offsets local lease ids so names stay unique across
    a kill/rejoin: incarnation ``e`` of a cell issues names
    ``cell_id:{e * 10**9 + local_id}`` and can never collide with an
    id revoked from incarnation ``e - 1``.
    """

    index: int
    cell_id: str
    topology: str
    ports: int
    queue_limit: int
    spill_after: int
    warm_engine: str
    lease_base: int

    def __post_init__(self) -> None:
        if self.spill_after < 1:
            raise ValueError(f"spill_after must be >= 1, got {self.spill_after}")
        if self.lease_base < 0:
            raise ValueError(f"lease_base must be >= 0, got {self.lease_base}")


@dataclass(frozen=True)
class FabricRequest:
    """One allocation request as routed by the broker.

    ``cell``/``processor`` are the *serving* cell and its local input
    port; ``origin_cell`` is where the request came from (they differ
    exactly when ``spilled`` — the broker retargeted the request at a
    gateway port of a host cell with exported spare capacity).
    ``arrive_tick`` staggers the request within its round (arrivals
    are Poisson *per tick*, not a burst at each round boundary).
    """

    req_id: int
    cell: int
    processor: int
    hold_ticks: int
    origin_cell: int
    arrive_tick: int = 0
    spilled: bool = False


@dataclass(frozen=True)
class RoundWork:
    """One bulk-synchronous round: inject ``arrivals``, run ``ticks``."""

    round_no: int
    ticks: int
    arrivals: tuple[FabricRequest, ...] = ()

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {self.ticks}")


@dataclass(frozen=True)
class GrantMsg:
    """A lease granted this round, under its fabric-wide name."""

    req_id: int
    lease_id: str
    waited_ticks: float
    spilled: bool


@dataclass(frozen=True)
class UnplacedMsg:
    """A request the cell could not place (escalation candidate).

    ``reason`` is ``"timeout"`` (queued past ``spill_after`` ticks) or
    ``"rejected"`` (bounced off the admission queue).
    """

    request: FabricRequest
    reason: str


@dataclass(frozen=True)
class RoundResult:
    """A cell's complete accounting for one round.

    ``spare`` is the capacity the cell exports to the spill tier:
    free healthy resources beyond what its own queue will consume.
    ``compute_ns`` is the process-CPU cost of the round — the critical
    path's raw material on hosts with fewer cores than cells.
    """

    round_no: int
    cell: int
    granted: tuple[GrantMsg, ...]
    released: tuple[str, ...]
    unplaced: tuple[UnplacedMsg, ...]
    spare: int
    queue_depth: int
    active_leases: int
    busy_resources: int
    compute_ns: int


@dataclass(frozen=True)
class SnapshotRequest:
    """Ask a cell for its full metrics snapshot."""


@dataclass(frozen=True)
class SnapshotReply:
    """A cell's metrics snapshot plus mergeable histograms.

    ``hists`` carries the raw :class:`LatencyHistogram` objects (wait
    plus one per tick phase) so the broker can merge them losslessly
    with :meth:`LatencyHistogram.merge` instead of averaging quantiles.
    """

    cell: int
    cell_id: str
    snapshot: dict[str, Any] = field(compare=False)
    hists: dict[str, LatencyHistogram] = field(compare=False)


@dataclass(frozen=True)
class Shutdown:
    """Orderly cell shutdown (the reply is the process exiting)."""

"""The seeded fabric driver: workloads, scaling sweeps, invariants.

:func:`run_fabric` stands a whole fabric up (broker + one process per
cell), plays a seeded Poisson workload through it in bulk-synchronous
rounds, drains it to quiescence, verifies the conservation and
zero-leak invariants with real exceptions, and returns a
:class:`FabricRunResult` with both throughput readings:

- ``wall`` — allocations over elapsed wall seconds, whatever the host
  gives us;
- ``aggregate`` — allocations over *critical-path* seconds, where each
  round costs the slowest cell's CPU time plus the broker's serial CPU
  time.  CPU time excludes time a process spends descheduled, so this
  measures what a one-core-per-cell deployment would deliver — the
  honest scaling figure on hosts with fewer cores than cells (this
  repo's CI has one).

:func:`sweep_cells` repeats the run across fabric widths for the
near-linear-scaling benchmark (``benchmarks/bench_fabric.py``).

Per-cell arrival streams are seeded by stable label hashes, so a
cell's workload does not depend on how many other cells exist — the
1-cell and 8-cell sweeps see identical per-cell traffic.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.fabric.broker import (
    FabricBroker,
    FabricInvariantError,
    RoundOutcome,
)
from repro.fabric.messages import FabricRequest
from repro.fabric.partition import FabricPartition
from repro.fabric.spill import SpillTopology
from repro.service.clock import perf_counter_ns
from repro.util.labels import label_hash
from repro.util.rng import make_rng
from repro.util.tables import Table

__all__ = [
    "ChaosSchedule",
    "FabricConfig",
    "FabricRunResult",
    "run_fabric",
    "sweep_cells",
]


@dataclass(frozen=True)
class FabricConfig:
    """One fabric run, fully specified (a pure function of itself)."""

    topology: str = "omega"
    ports: int = 32
    cells: int = 4
    seed: int = 0
    rounds: int = 40
    ticks_per_round: int = 8
    rate: float = 0.18
    spill_after: int = 4
    max_hold: int = 6
    queue_limit: int = 0  # 0 = auto: 4 * ports
    group_size: int = 4
    uplink: int = 8
    trunk: int = 32
    warm_engine: str = "kernel"
    max_drain_rounds: int = 80

    def __post_init__(self) -> None:
        if self.cells < 1:
            raise ValueError(f"cells must be >= 1, got {self.cells}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.ticks_per_round < 1:
            raise ValueError(
                f"ticks_per_round must be >= 1, got {self.ticks_per_round}"
            )
        if not 0 < self.rate:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.max_hold < 1:
            raise ValueError(f"max_hold must be >= 1, got {self.max_hold}")
        if self.queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.max_drain_rounds < 1:
            raise ValueError(
                f"max_drain_rounds must be >= 1, got {self.max_drain_rounds}"
            )

    @property
    def effective_queue_limit(self) -> int:
        """The admission-queue bound each cell runs with."""
        return self.queue_limit if self.queue_limit > 0 else 4 * self.ports

    def spill_topology(self) -> SpillTopology:
        """The reduced inter-cell network shape for this run."""
        return SpillTopology(
            group_size=self.group_size, uplink=self.uplink, trunk=self.trunk
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """Whole-cell failure plan: kill one cell, optionally rejoin it."""

    cell: int = 1
    kill_round: int = 10
    rejoin_round: int | None = 20

    def __post_init__(self) -> None:
        if self.kill_round < 1:
            raise ValueError(f"kill_round must be >= 1, got {self.kill_round}")
        if self.rejoin_round is not None and self.rejoin_round <= self.kill_round:
            raise ValueError(
                f"rejoin_round {self.rejoin_round} must come after "
                f"kill_round {self.kill_round}"
            )


@dataclass
class FabricRunResult:
    """Outcome of one fabric run, invariants already enforced."""

    config: FabricConfig
    totals: dict[str, int]
    per_round_granted: tuple[int, ...]
    events: list[dict[str, Any]]
    snapshot: dict[str, Any]
    rounds_run: int
    drain_rounds: int
    wall_s: float
    critical_path_s: float
    broker_cpu_s: float
    host_cpus: int
    revoked_lease_ids: tuple[str, ...] = field(default_factory=tuple)

    @property
    def wall_allocs_per_sec(self) -> float:
        """Allocations over elapsed wall time (host-timesharing bound)."""
        return self.totals["allocated"] / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def aggregate_allocs_per_sec(self) -> float:
        """Allocations over critical-path seconds (one core per cell).

        The denominator sums, per round, the slowest cell's CPU time
        plus the broker's serial CPU time — the round's span if every
        cell had a dedicated core.  Clearly labelled as a model: on a
        host with >= cells cores, wall and aggregate converge.
        """
        if self.critical_path_s <= 0:
            return 0.0
        return self.totals["allocated"] / self.critical_path_s

    def render(self) -> str:
        """ASCII summary table of the run."""
        cfg = self.config
        table = Table(
            ["metric", "value"],
            title=(
                f"fabric {cfg.topology}-{cfg.ports} x {cfg.cells} cells, "
                f"seed {cfg.seed}"
            ),
        )
        for key, value in sorted(self.totals.items()):
            table.add_row(key, value)
        table.add_row("rounds (load + drain)", f"{self.rounds_run}+{self.drain_rounds}")
        table.add_row("wall seconds", f"{self.wall_s:.3f}")
        table.add_row("critical-path seconds", f"{self.critical_path_s:.3f}")
        table.add_row("wall allocs/sec", f"{self.wall_allocs_per_sec:.0f}")
        table.add_row(
            "aggregate allocs/sec (1 core/cell)",
            f"{self.aggregate_allocs_per_sec:.0f}",
        )
        merged = self.snapshot["merged"]
        for label, ticks in merged["wait_percentiles"].items():
            table.add_row(f"wait {label} (ticks)", f"{ticks:.3f}")
        return table.render()


def _cell_arrivals(
    config: FabricConfig,
    cell: int,
    rng: np.random.Generator,
    next_id: int,
) -> tuple[list[FabricRequest], int]:
    """One round of Poisson arrivals for one cell (home-routed)."""
    mean = config.rate * config.ports * config.ticks_per_round
    count = int(rng.poisson(mean))
    requests: list[FabricRequest] = []
    for _ in range(count):
        processor = int(rng.integers(0, config.ports))
        hold = int(rng.integers(1, config.max_hold + 1))
        arrive = int(rng.integers(0, config.ticks_per_round))
        requests.append(
            FabricRequest(
                req_id=next_id,
                cell=cell,
                processor=processor,
                hold_ticks=hold,
                origin_cell=cell,
                arrive_tick=arrive,
                spilled=False,
            )
        )
        next_id += 1
    return requests, next_id


def run_fabric(
    config: FabricConfig, *, chaos: ChaosSchedule | None = None
) -> FabricRunResult:
    """Run one seeded fabric workload end to end, invariants enforced.

    Raises :class:`FabricInvariantError` if the fabric fails to drain,
    loses a request (conservation: every offered request is granted or
    definitively spill-failed, modulo leases revoked by chaos), or
    leaks a lease (non-empty custody registry, busy resources, or
    active leases after the drain).
    """
    partition = FabricPartition(config.topology, config.ports, config.cells)
    if chaos is not None and not 0 <= chaos.cell < config.cells:
        raise ValueError(f"chaos cell {chaos.cell} outside fabric")
    rngs = [
        make_rng(config.seed + label_hash(placement.label, bits=32))
        for placement in partition.cells
    ]
    totals = {
        "offered": 0,
        "allocated": 0,
        "spill_allocated": 0,
        "released": 0,
        "escalated": 0,
        "spill_planned": 0,
        "spill_failed": 0,
        "home_timeouts": 0,
        "home_rejections": 0,
        "revoked_on_death": 0,
        "cells_killed": 0,
        "cells_rejoined": 0,
    }
    per_round: list[int] = []
    critical_ns = 0
    broker_ns = 0
    next_id = 0
    wall_start = perf_counter_ns()
    broker = FabricBroker(
        partition,
        queue_limit=config.effective_queue_limit,
        spill_after=config.spill_after,
        warm_engine=config.warm_engine,
        spill_topology=config.spill_topology(),
    )
    with broker:
        for round_no in range(1, config.rounds + 1):
            if chaos is not None and round_no == chaos.kill_round:
                broker.kill_cell(chaos.cell)
            if (
                chaos is not None
                and chaos.rejoin_round is not None
                and round_no == chaos.rejoin_round
            ):
                broker.rejoin_cell(chaos.cell)
            arrivals: list[FabricRequest] = []
            for cell in range(config.cells):
                fresh, next_id = _cell_arrivals(config, cell, rngs[cell], next_id)
                arrivals.extend(fresh)
            totals["offered"] += len(arrivals)
            outcome = broker.run_round(arrivals, config.ticks_per_round)
            _absorb(totals, per_round, outcome)
            critical_ns += outcome.critical_ns
            broker_ns += outcome.broker_ns

        drain_rounds = 0
        while drain_rounds < config.max_drain_rounds:
            outcome = broker.run_round([], config.ticks_per_round)
            drain_rounds += 1
            _absorb(totals, per_round, outcome)
            critical_ns += outcome.critical_ns
            broker_ns += outcome.broker_ns
            if outcome.idle:
                break
        else:
            raise FabricInvariantError(
                f"fabric failed to drain within {config.max_drain_rounds} rounds"
            )

        totals["cells_killed"] = broker.counters["cells_killed"]
        totals["cells_rejoined"] = broker.counters["cells_rejoined"]
        totals["revoked_on_death"] = broker.counters["revoked_on_death"]
        snapshot = broker.snapshot()
        registry_size = broker.registry_size
        revoked_ids = tuple(
            lease
            for event in broker.events
            if event["event"] == "cell-death"
            for lease in event["revoked"]
        )
        events = list(broker.events)
    wall_s = (perf_counter_ns() - wall_start) / 1e9

    _enforce_invariants(totals, snapshot, registry_size)
    return FabricRunResult(
        config=config,
        totals=totals,
        per_round_granted=tuple(per_round),
        events=events,
        snapshot=snapshot,
        rounds_run=config.rounds,
        drain_rounds=drain_rounds,
        wall_s=wall_s,
        critical_path_s=(critical_ns + broker_ns) / 1e9,
        broker_cpu_s=broker_ns / 1e9,
        host_cpus=os.cpu_count() or 1,
        revoked_lease_ids=revoked_ids,
    )


def _absorb(
    totals: dict[str, int], per_round: list[int], outcome: RoundOutcome
) -> None:
    granted = len(outcome.granted)
    totals["allocated"] += granted
    totals["spill_allocated"] += sum(1 for g in outcome.granted if g.spilled)
    totals["released"] += outcome.released
    totals["escalated"] += outcome.escalated
    totals["spill_planned"] += outcome.spill_planned
    totals["spill_failed"] += len(outcome.spill_failed)
    totals["home_timeouts"] += outcome.home_timeouts
    totals["home_rejections"] += outcome.home_rejections
    per_round.append(granted)


def _enforce_invariants(
    totals: dict[str, int], snapshot: dict[str, Any], registry_size: int
) -> None:
    """Conservation and zero-leak checks — real raises, -O safe."""
    offered = totals["offered"]
    settled = totals["allocated"] + totals["spill_failed"]
    if settled != offered:
        raise FabricInvariantError(
            f"request conservation violated: offered {offered}, "
            f"settled {settled} (allocated {totals['allocated']} + "
            f"spill_failed {totals['spill_failed']})"
        )
    if registry_size != 0:
        raise FabricInvariantError(
            f"lease leak: {registry_size} leases still in custody after drain"
        )
    expected_released = totals["allocated"] - totals["revoked_on_death"]
    if totals["released"] != expected_released:
        raise FabricInvariantError(
            f"lease conservation violated: released {totals['released']}, "
            f"expected allocated - revoked = {expected_released}"
        )
    for cell_id, cell_snapshot in sorted(snapshot["cells"].items()):
        # Live cells must end quiescent: every lease either released
        # or revoked, no resource left busy.
        outstanding = (
            int(cell_snapshot["allocated"])
            - int(cell_snapshot["released"])
            - int(cell_snapshot["revoked"])
        )
        if outstanding != 0:
            raise FabricInvariantError(
                f"cell {cell_id} leaked {outstanding} leases"
            )


def sweep_cells(
    config: FabricConfig,
    cell_counts: tuple[int, ...] = (1, 2, 4, 8),
    *,
    repeats: int = 1,
) -> dict[str, Any]:
    """Scaling sweep: the same per-cell workload at increasing widths.

    Because per-cell arrival streams are label-seeded, each width adds
    cells without perturbing existing ones; near-linear scaling of
    aggregate throughput is then a direct read of the broker's
    coordination overhead plus any spill coupling.

    With ``repeats > 1`` each width runs several times and the
    best-timed run (shortest critical path) is kept — allocation
    totals are seed-deterministic, so repeats differ only in timing
    noise, and taking the best is the same noise discipline the other
    benchmarks use (best-of-N).  A repeat whose totals differ raises
    :class:`FabricInvariantError`.
    """
    if not cell_counts:
        raise ValueError("cell_counts must be non-empty")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    rows: list[dict[str, Any]] = []
    baseline: float | None = None
    for cells in cell_counts:
        result = run_fabric(replace(config, cells=cells))
        for _ in range(repeats - 1):
            rerun = run_fabric(replace(config, cells=cells))
            if rerun.totals != result.totals:
                raise FabricInvariantError(
                    f"nondeterministic totals at {cells} cells: "
                    f"{result.totals} != {rerun.totals}"
                )
            if rerun.critical_path_s < result.critical_path_s:
                result = rerun
        aggregate = result.aggregate_allocs_per_sec
        if baseline is None:
            baseline = aggregate
        rows.append(
            {
                "cells": cells,
                "offered": result.totals["offered"],
                "allocated": result.totals["allocated"],
                "spill_allocated": result.totals["spill_allocated"],
                "spill_failed": result.totals["spill_failed"],
                "wall_s": result.wall_s,
                "critical_path_s": result.critical_path_s,
                "wall_allocs_per_sec": result.wall_allocs_per_sec,
                "aggregate_allocs_per_sec": aggregate,
                "speedup_vs_1": aggregate / baseline if baseline else 0.0,
                "wait_p99_ticks": result.snapshot["merged"][
                    "wait_percentiles"
                ]["p99"],
            }
        )
    return {
        "config": {
            "topology": config.topology,
            "ports": config.ports,
            "seed": config.seed,
            "rounds": config.rounds,
            "ticks_per_round": config.ticks_per_round,
            "rate": config.rate,
            "spill_after": config.spill_after,
            "max_hold": config.max_hold,
        },
        "rows": rows,
    }

"""Minimum-cost flow solvers (Section III-C).

Transformation 2 reduces priority/preference scheduling to finding a
minimum-cost flow of prescribed value ``F0`` (the number of pending
requests).  Two independent solvers are provided:

- :func:`min_cost_flow` — successive shortest augmenting paths with
  node potentials (Bellman–Ford initialisation, Dijkstra per
  augmentation).  This is the primal–dual method; with integral
  capacities it returns an integral assignment, the property Theorem 3
  relies on.
- :func:`cycle_cancel_min_cost` — negative-cycle canceling on top of
  any feasible flow; asymptotically slower but structurally unrelated,
  so the test suite uses it (and the paper's out-of-kilter method in
  :mod:`repro.flows.out_of_kilter`) to cross-validate optimal costs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Hashable

from repro.flows.graph import Arc, FlowNetwork
from repro.flows.maxflow import augment_along, edmonds_karp
from repro.util.counters import OpCounter

__all__ = ["MinCostResult", "InfeasibleFlowError", "min_cost_flow", "cycle_cancel_min_cost"]

Node = Hashable


class InfeasibleFlowError(ValueError):
    """Raised when the requested flow value cannot be circulated."""


@dataclass
class MinCostResult:
    """Outcome of a min-cost flow computation.

    Attributes
    ----------
    value:
        Flow value actually circulated.
    cost:
        Total cost ``sum w(e) f(e)`` of the final assignment.
    augmentations:
        Number of shortest-path augmentations (or cycles cancelled).
    """

    value: int
    cost: float
    augmentations: int


def _move_cost(arc: Arc, forward: bool) -> float:
    """Cost of one unit along a residual move (cancellation refunds)."""
    return arc.cost if forward else -arc.cost


def _bellman_ford_potentials(net: FlowNetwork, source: Node) -> dict[Node, float]:
    """Shortest-path distances from ``source`` over the residual graph.

    Plain Bellman–Ford; detects negative residual cycles, which cannot
    occur at a zero flow unless the input itself has a negative-cost
    cycle of positive capacity (rejected, since none of the paper's
    transformations produce one).
    """
    dist: dict[Node, float] = {node: math.inf for node in net.nodes}
    dist[source] = 0.0
    n = net.n_nodes
    for i in range(n):
        changed = False
        for arc in net.arcs:
            for forward in (True, False):
                if arc.residual(forward) <= 0:
                    continue
                u, v = (arc.tail, arc.head) if forward else (arc.head, arc.tail)
                cand = dist[u] + _move_cost(arc, forward)
                if cand < dist[v] - 1e-12:
                    dist[v] = cand
                    changed = True
        if not changed:
            return dist
    raise ValueError("negative-cost residual cycle: problem is unbounded below")


def _dijkstra(
    net: FlowNetwork,
    source: Node,
    potential: dict[Node, float],
    counter: OpCounter | None,
) -> tuple[dict[Node, float], dict[Node, tuple[Node, Arc, bool]]]:
    """Reduced-cost Dijkstra over the residual graph.

    Returns (distance map over reachable nodes, predecessor map).
    Reduced costs ``c(e) + pi(u) - pi(v)`` are nonnegative by the
    potential invariant, so Dijkstra is valid even with cancellation
    moves of negative raw cost.
    """
    dist: dict[Node, float] = {source: 0.0}
    pred: dict[Node, tuple[Node, Arc, bool]] = {}
    done: set[Node] = set()
    tie = itertools.count()
    heap: list[tuple[float, int, Node]] = [(0.0, next(tie), source)]
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        if counter is not None:
            counter.charge("node_visit")
        for arc, forward in net.incident(node):
            if counter is not None:
                counter.charge("arc_scan")
            if arc.residual(forward) <= 0:
                continue
            nxt = arc.head if forward else arc.tail
            if nxt in done:
                continue
            reduced = _move_cost(arc, forward) + potential[node] - potential[nxt]
            if reduced < -1e-7:
                raise AssertionError(
                    f"negative reduced cost {reduced} on {arc!r}: potential invariant broken"
                )
            cand = d + max(reduced, 0.0)
            if cand < dist.get(nxt, math.inf) - 1e-12:
                dist[nxt] = cand
                pred[nxt] = (node, arc, forward)
                heapq.heappush(heap, (cand, next(tie), nxt))
    return dist, pred


def min_cost_flow(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    target_flow: int | None = None,
    counter: OpCounter | None = None,
) -> MinCostResult:
    """Circulate flow from ``source`` to ``sink`` at minimum total cost.

    With ``target_flow`` given, exactly that value is pushed (raising
    :class:`InfeasibleFlowError` if the network cannot carry it) — the
    paper's formulation with fixed ``F0``.  Without it, the maximum
    flow is found and, among maximum flows, one of minimum cost: the
    successive-shortest-path invariant guarantees every intermediate
    flow value is reached at its own minimum cost.

    The network's current flow must be zero (the potential
    initialisation assumes it); call :meth:`FlowNetwork.zero_flow`
    first when reusing a network.
    """
    for arc in net.arcs:
        if arc.flow != 0:
            raise ValueError("min_cost_flow requires a zero initial flow")
    if source not in net or sink not in net:
        # `is not None`, not truthiness: an explicit target_flow=0 is
        # still a demand on terminals that must exist.
        if target_flow is not None:
            raise InfeasibleFlowError("terminal missing from network")
        return MinCostResult(0, 0.0, 0)
    if any(arc.cost < 0 for arc in net.arcs):
        potential = _bellman_ford_potentials(net, source)
    else:
        potential = {node: 0.0 for node in net.nodes}
    value = 0
    augmentations = 0
    while target_flow is None or value < target_flow:
        dist, pred = _dijkstra(net, source, potential, counter)
        if sink not in dist:
            if target_flow is not None:
                raise InfeasibleFlowError(
                    f"only {value} of {target_flow} units can be circulated"
                )
            break
        # Reconstruct the shortest residual path.
        path: list[tuple[Arc, bool]] = []
        node = sink
        while node != source:
            prev, arc, forward = pred[node]
            path.append((arc, forward))
            node = prev
        path.reverse()
        amount = min(arc.residual(forward) for arc, forward in path)
        if target_flow is not None:
            amount = min(amount, target_flow - value)
        augment_along(path, amount)
        if counter is not None:
            counter.charge("augmentation")
            counter.charge("arc_update", len(path))
        value += amount
        augmentations += 1
        # Update potentials with the new distances; nodes unreachable in
        # this round can never become reachable again (flow only changed
        # on reachable nodes), so their stale potentials are harmless.
        for node, d in dist.items():
            potential[node] += d
    return MinCostResult(value=value, cost=net.total_cost(), augmentations=augmentations)


def _find_negative_cycle(net: FlowNetwork) -> list[tuple[Arc, bool]] | None:
    """A negative-cost cycle in the residual graph, or ``None``.

    Bellman–Ford from a virtual super-source touching every node,
    with parent-pointer walkback to extract the cycle.
    """
    dist: dict[Node, float] = {node: 0.0 for node in net.nodes}
    pred: dict[Node, tuple[Node, Arc, bool]] = {}
    last_improved: Node | None = None
    n = net.n_nodes
    for i in range(n):
        last_improved = None
        for arc in net.arcs:
            for forward in (True, False):
                if arc.residual(forward) <= 1e-12:
                    continue
                u, v = (arc.tail, arc.head) if forward else (arc.head, arc.tail)
                cand = dist[u] + _move_cost(arc, forward)
                if cand < dist[v] - 1e-9:
                    dist[v] = cand
                    pred[v] = (u, arc, forward)
                    last_improved = v
        if last_improved is None:
            return None
    # A relaxation in round n implies a negative cycle; walk back n
    # steps to land on it, then collect it.
    node = last_improved
    for _ in range(n):
        node = pred[node][0]
    cycle: list[tuple[Arc, bool]] = []
    cur = node
    while True:
        prev, arc, forward = pred[cur]
        cycle.append((arc, forward))
        cur = prev
        if cur == node:
            break
    cycle.reverse()
    return cycle


def cycle_cancel_min_cost(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    target_flow: int | None = None,
    counter: OpCounter | None = None,
) -> MinCostResult:
    """Min-cost flow by Klein's negative-cycle canceling.

    First establishes a feasible flow of the requested value with
    plain max-flow, then cancels negative residual cycles until none
    remain — at which point the flow is cost-optimal for its value.
    """
    mf = edmonds_karp(net, source, sink, counter=counter, flow_limit=target_flow)
    if target_flow is not None and mf.value < target_flow:
        raise InfeasibleFlowError(
            f"only {mf.value} of {target_flow} units can be circulated"
        )
    cancelled = 0
    while True:
        cycle = _find_negative_cycle(net)
        if cycle is None:
            break
        amount = min(arc.residual(forward) for arc, forward in cycle)
        augment_along(cycle, amount)
        cancelled += 1
        if counter is not None:
            counter.charge("cycle_cancel")
    return MinCostResult(value=net.flow_value(source), cost=net.total_cost(), augmentations=cancelled)

"""Flat-array CSR Dinic kernel — the hot-path max-flow engine.

The paper's Section IV realises Dinic's algorithm in *hardware* because
the per-phase work is regular and array-shaped: token propagation reads
and writes fixed-layout state, never chases pointers.  This module is
the software analogue.  Where :mod:`repro.flows.dinic` walks
:class:`~repro.flows.graph.Arc` objects (attribute loads dominating the
inner loop), :class:`FlowKernel` stores the whole residual network in
flat integer lists:

``head[v]``
    First arc out of node ``v`` (``-1`` when none) — the entry point of
    a per-node singly linked adjacency list.
``next_arc[a]`` / ``to[a]``
    Next arc in the tail node's list / head node of arc ``a``.
``cap[a]``
    *Residual* capacity of directed arc ``a``.  Pushing ``x`` units
    along ``a`` is ``cap[a] -= x; cap[a ^ 1] += x`` — arcs are created
    in **pairs** (forward even, reverse odd) so the reverse arc is
    always ``a ^ 1``; no dictionary, no object, one XOR.
``base[a]``
    The original capacity, so the flow on a forward arc is always
    ``base[a] - cap[a]`` (reverse arcs have ``base == 0``).

Everything is a plain ``int``: PR 4's integral-flow migration (lint
rule R003) guarantees every capacity, lower bound, and flow in the repo
is integer-valued, so the kernel needs no float arithmetic anywhere —
Theorem 2's integrality falls out of the representation.

:meth:`FlowNetwork.compile() <repro.flows.graph.FlowNetwork.compile>`
lowers an object graph (including lower bounds, via the standard
circulation reduction) onto a kernel and maps solved flows back onto
``Arc.flow``, so every existing consumer of the object API keeps
working; :func:`kernel_solve` packages that round trip with the same
call shape as the object solvers.  The object Dinic stays as the
teaching implementation and the differential-test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.util.counters import OpCounter

if TYPE_CHECKING:  # import cycle: graph.compile() returns CompiledNetwork
    from repro.flows.graph import FlowNetwork

__all__ = ["FlowKernel", "CompiledNetwork", "KernelResult", "kernel_solve"]

Node = Hashable

#: Effectively-unbounded capacity for reduction arcs (fits any network
#: whose real arc capacities sum below it; all MRSIN arcs are unit).
INF_CAPACITY = 1 << 60


class FlowKernel:
    """A residual flow network as flat integer arrays.

    Nodes are dense ints ``0..n_nodes-1``; arcs are dense ints created
    in forward/reverse pairs (``a`` even, ``a ^ 1`` its reverse).  The
    only mutable solver state is ``cap`` — callers may read and write
    it directly to enable/disable arcs or freeze flow (the warm-start
    engine does exactly that), as long as pair symmetry is respected:
    flow on forward arc ``a`` is ``base[a] - cap[a]`` and must equal
    ``cap[a ^ 1]`` minus the reverse base of 0.

    Operation counters (``visits``/``scans``/``augmentations``/
    ``pushes``/``phases``) accumulate across solves as plain ints; the
    caller decides when to charge them to an
    :class:`~repro.util.counters.OpCounter` (one aggregated charge per
    solve instead of one call per node keeps the kernel hot loop free
    of Python-level function calls).
    """

    def __init__(self, n_nodes: int = 0) -> None:
        if n_nodes < 0:
            raise ValueError(f"negative node count {n_nodes}")
        self.n_nodes = n_nodes
        self.head: list[int] = [-1] * n_nodes
        self.next_arc: list[int] = []
        self.to: list[int] = []
        self.cap: list[int] = []
        self.base: list[int] = []
        # Cumulative operation counts (see class docstring).
        self.visits = 0
        self.scans = 0
        self.augmentations = 0
        self.pushes = 0
        self.phases = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def n_arcs(self) -> int:
        """Number of directed arcs (always even: forward/reverse pairs)."""
        return len(self.to)

    def add_node(self) -> int:
        """Append one node; returns its index."""
        self.head.append(-1)
        self.n_nodes += 1
        return self.n_nodes - 1

    def add_arc(self, tail: int, head: int, capacity: int) -> int:
        """Add a ``tail -> head`` arc pair; returns the forward arc id.

        The reverse arc (id ``^ 1``) starts with zero capacity.  Unlike
        the object graph, self-loops and parallel arcs are accepted —
        the compiler, not the kernel, enforces model rules.
        """
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity} on {tail}->{head}")
        if not (0 <= tail < self.n_nodes and 0 <= head < self.n_nodes):
            raise ValueError(f"arc {tail}->{head} outside 0..{self.n_nodes - 1}")
        a = len(self.to)
        self.to.append(head)
        self.next_arc.append(self.head[tail])
        self.head[tail] = a
        self.cap.append(capacity)
        self.base.append(capacity)
        self.to.append(tail)
        self.next_arc.append(self.head[head])
        self.head[head] = a + 1
        self.cap.append(0)
        self.base.append(0)
        return a

    def flow_of(self, arc: int) -> int:
        """Current flow on forward arc ``arc`` (``base - cap``)."""
        return self.base[arc] - self.cap[arc]

    def reset(self) -> None:
        """Restore every arc to its base capacity (zero flow)."""
        self.cap[:] = self.base

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------
    def max_flow(
        self,
        source: int,
        sink: int,
        *,
        levels: list[int] | None = None,
        value_bound: int | None = None,
        touched: list[int] | None = None,
        paths_out: list[list[int]] | None = None,
    ) -> int:
        """Augment the current residual state to a maximum s-t flow.

        Runs Dinic phases (BFS level build, then a blocking flow by
        iterative DFS with per-node arc cursors) until the sink is
        unreachable.  Augments *on top of* whatever flow the ``cap``
        arrays already encode — warm starting is just calling this
        again after nudging capacities.  Returns the flow added.

        Three optional work-saving hooks (all preserve exactness):

        ``levels``
            A precomputed level labeling used for the *first* phase in
            place of its BFS (a copy is taken; the caller's list is
            never mutated).  Any labeling is sound: the blocking-flow
            DFS only follows residual arcs that climb exactly one
            level, so every path it pushes is a real augmenting path
            and no cycle can form; phases after the first rebuild
            levels by BFS as usual, so optimality never depends on the
            hint.  On the layered Transformation-1 networks the node's
            physical layer *is* its BFS level, making the hint exact.
        ``value_bound``
            A known upper bound on the flow this call can add (for the
            warm engine: the number of enabled unit source arcs).  When
            the augmented total reaches it the solve stops without the
            terminating everyone-unreachable BFS — reaching a bound
            that caps the max flow is already a certificate of
            optimality.
        ``touched``
            When given, every arc id pushed on (forward or reverse,
            duplicates included) is appended.  Lets the caller find the
            flow delta of a warm solve by looking only at touched arc
            pairs instead of scanning the whole arc array.
        ``paths_out``
            When given, each augmentation's arc path is appended (once
            per augmentation, regardless of the units it pushed).  When
            no reverse arc was ever pushed on — ``touched`` is all even
            — no unit was cancelled or rerouted, so on unit-capacity
            networks these paths *are* the flow-delta decomposition and
            the caller can skip decomposing entirely.
        """
        if source == sink:
            raise ValueError("source and sink must differ")
        n = self.n_nodes
        head = self.head
        next_arc = self.next_arc
        to = self.to
        cap = self.cap
        total = 0
        visits = scans = augmentations = pushes = 0
        use_hint = levels is not None
        while True:
            if value_bound is not None and total >= value_bound:
                break
            if use_hint and levels is not None:
                use_hint = False
                level = list(levels)
            else:
                # --- BFS: level[v] = layered-network rank over useful arcs.
                level = [-1] * n
                level[source] = 0
                queue = [source]
                for v in queue:
                    visits += 1
                    lv = level[v] + 1
                    a = head[v]
                    while a != -1:
                        scans += 1
                        if cap[a] > 0:
                            w = to[a]
                            if level[w] < 0:
                                level[w] = lv
                                queue.append(w)
                        a = next_arc[a]
                if level[sink] < 0:
                    break
            self.phases += 1
            # --- Blocking flow: iterative DFS with arc cursors.  A
            # node whose moves are exhausted is pruned from the level
            # graph (level[v] = -1), the software mirror of the paper's
            # "marking cleared when a resource token backtracks" rule.
            cursor = list(head)
            path: list[int] = []
            v = source
            while True:
                if v == sink:
                    aug = min(cap[a] for a in path)
                    for a in path:
                        cap[a] -= aug
                        cap[a ^ 1] += aug
                    total += aug
                    augmentations += 1
                    pushes += len(path)
                    if touched is not None:
                        touched.extend(path)
                    if paths_out is not None:
                        paths_out.append(list(path))
                    # Retreat to the tail of the first saturated arc.
                    for i, a in enumerate(path):  # pragma: no branch
                        if cap[a] == 0:
                            del path[i:]
                            v = to[a ^ 1]
                            break
                    continue
                visits += 1
                a = cursor[v]
                lv = level[v] + 1
                while a != -1:
                    scans += 1
                    if cap[a] > 0 and level[to[a]] == lv:
                        break
                    a = next_arc[a]
                cursor[v] = a
                if a != -1:
                    path.append(a)
                    v = to[a]
                    continue
                if v == source:
                    break
                level[v] = -1  # dead end: prune for the rest of the phase
                back = path.pop()
                v = to[back ^ 1]
        self.visits += visits
        self.scans += scans
        self.augmentations += augmentations
        self.pushes += pushes
        return total

    def charge(self, counter: OpCounter | None, baseline: tuple[int, int, int, int]) -> None:
        """Charge op-count deltas since ``baseline`` to ``counter``.

        ``baseline`` is a :meth:`snapshot` taken before the solve; the
        keys match the object solvers' cost model so
        ``instructions_per_allocation`` stays comparable.
        """
        if counter is None:
            return
        v0, s0, a0, p0 = baseline
        counter.charge("node_visit", self.visits - v0)
        counter.charge("arc_scan", self.scans - s0)
        counter.charge("augmentation", self.augmentations - a0)
        counter.charge("arc_update", self.pushes - p0)

    def snapshot(self) -> tuple[int, int, int, int]:
        """Current op counts, for delta charging around one solve."""
        return (self.visits, self.scans, self.augmentations, self.pushes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowKernel(|V|={self.n_nodes}, |E|={self.n_arcs // 2} pairs)"


@dataclass
class KernelResult:
    """Outcome of a kernel max-flow solve (shape-compatible with
    :class:`~repro.flows.dinic.DinicResult` where the schedulers care:
    ``value`` and ``phases``)."""

    value: int
    phases: int


class CompiledNetwork:
    """A :class:`~repro.flows.graph.FlowNetwork` lowered to a kernel.

    Built by :meth:`FlowNetwork.compile()
    <repro.flows.graph.FlowNetwork.compile>`.  The lowering is
    positional: object arc ``k`` becomes kernel arc pair ``2 * k``, so
    callers holding object arc indices can address kernel state with a
    shift, no dictionaries.  Nodes get dense ids in insertion order
    (``node_of``).

    Lower bounds use the standard circulation reduction, materialised
    at compile time when any arc has ``lower > 0``: arc capacities are
    reduced to ``capacity - lower``, per-node imbalances are wired to a
    super source/sink pair, and :meth:`solve` runs a feasibility phase
    before the real max flow.  Networks without lower bounds (every
    Transformation-1 problem) skip all of that.

    ``solve`` seeds the kernel from the network's *current* flow
    assignment (the object solvers' augment-on-top contract) and
    :meth:`readback` writes the solved flow onto ``Arc.flow``, so the
    object graph remains the single source of truth between solves.
    """

    def __init__(self, net: "FlowNetwork") -> None:
        self.net = net
        self.node_of: dict[Node, int] = {}
        kernel = FlowKernel()
        for node in net.nodes:
            self.node_of[node] = kernel.add_node()
        self.has_lower = any(arc.lower > 0 for arc in net.arcs)
        node_of = self.node_of
        for arc in net.arcs:
            kernel.add_arc(
                node_of[arc.tail], node_of[arc.head], arc.capacity - arc.lower
            )
        self.n_base_arcs = kernel.n_arcs
        # Circulation-reduction plumbing (only when lower bounds exist):
        # per-node imbalance arcs from/to a super source/sink.
        self._super_source = -1
        self._super_sink = -1
        self._excess_arcs: list[int] = []
        self._return_arc = -1
        self._required_excess = 0
        if self.has_lower:
            self._super_source = kernel.add_node()
            self._super_sink = kernel.add_node()
            excess = [0] * (kernel.n_nodes)
            for arc in net.arcs:
                if arc.lower:
                    excess[node_of[arc.head]] += arc.lower
                    excess[node_of[arc.tail]] -= arc.lower
            for v, e in enumerate(excess):
                if e > 0:
                    self._excess_arcs.append(
                        kernel.add_arc(self._super_source, v, e)
                    )
                    self._required_excess += e
                elif e < 0:
                    self._excess_arcs.append(
                        kernel.add_arc(v, self._super_sink, -e)
                    )
        self.kernel = kernel

    # ------------------------------------------------------------------
    def seed_from_flow(self) -> None:
        """Load the network's current ``Arc.flow`` into the kernel.

        Every flow must already sit within ``[lower, capacity]`` (the
        repo-wide invariant between solves); violations raise
        ``ValueError`` rather than silently producing a wrong residual
        network.
        """
        cap = self.kernel.cap
        for k, arc in enumerate(self.net.arcs):
            flow = arc.flow
            if flow < arc.lower or flow > arc.capacity:
                raise ValueError(
                    f"flow {flow} outside [{arc.lower}, {arc.capacity}] on "
                    f"{arc!r}; cannot seed the kernel from an illegal flow"
                )
            a = 2 * k
            cap[a] = arc.capacity - flow
            cap[a + 1] = flow - arc.lower
        for a in self._excess_arcs:
            cap[a] = self.kernel.base[a]
            cap[a + 1] = 0

    def _feasible_circulation(self, source: int, sink: int) -> None:
        """Satisfy all lower bounds (cold start only): saturate the
        super source through a temporary ``sink -> source`` return arc."""
        kernel = self.kernel
        if self._return_arc < 0:
            self._return_arc = kernel.add_arc(sink, source, 0)
        ret = self._return_arc
        kernel.cap[ret] = INF_CAPACITY
        kernel.cap[ret + 1] = 0
        pushed = kernel.max_flow(self._super_source, self._super_sink)
        if pushed != self._required_excess:
            kernel.cap[ret] = 0
            kernel.cap[ret + 1] = 0
            raise ValueError(
                f"lower bounds are infeasible: circulation satisfied {pushed} "
                f"of {self._required_excess} required units"
            )
        # Freeze the reduction arcs so the s-t phase cannot disturb the
        # satisfying circulation, then drop the return arc (its flow is
        # exactly the s-t flow already embedded in the base arcs).
        cap = kernel.cap
        for a in self._excess_arcs:
            cap[a] = 0
            cap[a + 1] = 0
        cap[ret] = 0
        cap[ret + 1] = 0

    def solve(self, source: Node, sink: Node, *, counter: OpCounter | None = None) -> KernelResult:
        """Max flow from ``source`` to ``sink``; flows land on ``Arc.flow``.

        Seeds the kernel from the current assignment when it is legal
        for the lower bounds; otherwise (a cold network with unmet
        lower bounds, i.e. every ``flow < lower`` case is the all-zero
        start) runs the circulation feasibility phase first.  Raises
        ``ValueError`` when the lower bounds admit no feasible flow.
        """
        net = self.net
        if source not in self.node_of or sink not in self.node_of:
            return KernelResult(value=0, phases=0)
        s = self.node_of[source]
        t = self.node_of[sink]
        kernel = self.kernel
        phases0 = kernel.phases
        baseline = kernel.snapshot()
        needs_feasibility = self.has_lower and any(
            arc.flow < arc.lower for arc in net.arcs
        )
        if needs_feasibility:
            if any(arc.flow for arc in net.arcs):
                raise ValueError(
                    "cannot warm-start a lower-bounded solve from a partial "
                    "assignment; zero the flow or satisfy the lower bounds"
                )
            kernel.reset()
            self._feasible_circulation(s, t)
        else:
            self.seed_from_flow()
        kernel.max_flow(s, t)
        kernel.charge(counter, baseline)
        self.readback()
        return KernelResult(
            value=net.flow_value(source), phases=kernel.phases - phases0
        )

    def readback(self) -> None:
        """Write the kernel's flow assignment back onto ``Arc.flow``."""
        cap = self.kernel.cap
        base = self.kernel.base
        for k, arc in enumerate(self.net.arcs):
            a = 2 * k
            arc.flow = arc.lower + base[a] - cap[a]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lowered = ", +circulation" if self.has_lower else ""
        return f"CompiledNetwork({self.kernel!r}{lowered})"


def kernel_solve(
    net: "FlowNetwork",
    source: Node,
    sink: Node,
    *,
    counter: OpCounter | None = None,
    record_layers: bool = False,
) -> KernelResult:
    """Drop-in max-flow entry point backed by the flat-array kernel.

    Call-compatible with :func:`repro.flows.dinic.dinic` for the
    scheduler's purposes (augments on top of the current assignment,
    returns an object with ``value``/``phases``); ``record_layers`` is
    accepted for signature parity but layered networks are an
    object-solver concept and are not recorded here.
    """
    if record_layers:
        raise ValueError(
            "the kernel does not materialise layered networks; use the "
            "object dinic solver to record them"
        )
    return net.compile().solve(source, sink, counter=counter)

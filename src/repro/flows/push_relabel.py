"""Goldberg–Tarjan push–relabel maximum flow (FIFO active-node rule).

A third, structurally independent max-flow solver: unlike the
augmenting-path family (Ford–Fulkerson, Dinic), push–relabel maintains
a *preflow* and node height labels, pushing excess downhill and
relabeling stuck nodes.  The paper predates it (Goldberg & Tarjan,
1988 — contemporaneous with the journal version), but it provides the
test suite a solver with no shared machinery to cross-validate the
others, and the ablation benchmark a modern comparison point.

Highest-level details implemented: FIFO active queue, gap-free simple
relabeling, and the standard ``height[s] = |V|`` initialisation with
source saturation.  Complexity ``O(|V|^2 |E|)`` — worse on paper than
Dinic's unit-network bound, usually competitive in practice.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.flows.graph import Arc, FlowNetwork
from repro.flows.maxflow import MaxFlowResult
from repro.util.counters import OpCounter

__all__ = ["push_relabel"]

Node = Hashable


def push_relabel(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    counter: OpCounter | None = None,
    flow_limit: int | None = None,
) -> MaxFlowResult:
    """Maximum flow by FIFO push–relabel.

    Mutates ``net``'s flow in place and returns a
    :class:`~repro.flows.maxflow.MaxFlowResult` (``augmentations``
    counts *pushes*).  The network's current flow must be zero (the
    preflow initialisation assumes it).  With ``flow_limit`` the full
    maximum flow is computed first and surplus units are then peeled
    off by path decomposition (limiting the source saturation instead
    could strand the budget on dead-end arcs).
    """
    for arc in net.arcs:
        if arc.flow != 0:
            raise ValueError("push_relabel requires a zero initial flow")
    if source not in net or sink not in net or source == sink:
        return MaxFlowResult(value=0, augmentations=0)

    n = net.n_nodes
    height: dict[Node, int] = {v: 0 for v in net.nodes}
    excess: dict[Node, int] = {v: 0 for v in net.nodes}
    height[source] = n

    # Saturate every source out-arc.
    pushes = 0
    active: deque[Node] = deque()
    for arc in net.out_arcs(source):
        if arc.capacity <= 0:
            continue
        arc.flow = arc.capacity
        excess[arc.head] += arc.capacity
        excess[source] -= arc.capacity
        if arc.head not in (source, sink) and arc.head not in active:
            active.append(arc.head)
        pushes += 1

    # Per-node residual move lists with a current-arc cursor.
    moves: dict[Node, list[tuple[Arc, bool]]] = {
        v: list(net.incident(v)) for v in net.nodes
    }
    cursor: dict[Node, int] = {v: 0 for v in net.nodes}

    def push(v: Node, arc: Arc, forward: bool) -> None:
        nonlocal pushes
        w = arc.head if forward else arc.tail
        delta = min(excess[v], arc.residual(forward))
        if forward:
            arc.flow += delta
        else:
            arc.flow -= delta
        excess[v] -= delta
        excess[w] += delta
        pushes += 1
        if counter is not None:
            counter.charge("push")
        if w not in (source, sink) and excess[w] > 0 and w not in active:
            active.append(w)

    while active:
        v = active.popleft()
        while excess[v] > 0:
            if cursor[v] == len(moves[v]):
                # Relabel: one above the lowest admissible neighbour.
                if counter is not None:
                    counter.charge("relabel")
                best = None
                for arc, forward in moves[v]:
                    if arc.residual(forward) <= 0:
                        continue
                    w = arc.head if forward else arc.tail
                    if best is None or height[w] < best:
                        best = height[w]
                if best is None:
                    break  # isolated excess; cannot route anywhere
                height[v] = best + 1
                cursor[v] = 0
                continue
            arc, forward = moves[v][cursor[v]]
            w = arc.head if forward else arc.tail
            if arc.residual(forward) > 0 and height[v] == height[w] + 1:
                push(v, arc, forward)
            else:
                cursor[v] += 1
        # Re-queueing is handled inside push(); a node that exits the
        # loop with zero excess is simply done for now.

    value = net.flow_value(source)
    if flow_limit is not None and value > flow_limit:
        # Peel off surplus source–sink paths; every decomposed path
        # carries exactly one unit of the integral flow.
        surplus = value - flow_limit
        for path in net.decompose_paths(source, sink):
            if surplus <= 0:
                break
            for arc in path:
                arc.flow -= 1
            surplus -= 1
        value = net.flow_value(source)
    return MaxFlowResult(value=value, augmentations=pushes)

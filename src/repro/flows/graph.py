"""The :class:`FlowNetwork` digraph underlying every solver in :mod:`repro.flows`.

A flow network here follows the paper's Section III-A definition: a
digraph ``D = (V, E)`` with distinguished source ``s`` and sink ``t``
(tracked by the caller, not the graph), a nonnegative capacity ``c(e)``
on every arc, an optional cost ``w(e)`` per unit of flow, and a current
flow assignment ``f(e)``.  Parallel arcs are allowed (they arise when a
switchbox offers several links between the same pair of elements), so
arcs are first-class objects addressed by index rather than by
endpoint pair.

Design notes
------------
- Node ids are arbitrary hashables.  The MRSIN transformations use
  structured tuples such as ``("p", 3)`` or ``("x", 1, 2)``.
- The flow assignment lives *on the network* (``arc.flow``); algorithms
  mutate it in place and return summary results.  This mirrors the
  paper's usage where a flow network is repeatedly re-augmented across
  scheduling iterations.
- Residual traversal is done arc-wise: an arc can be used *forward*
  with residual ``capacity - flow`` or *backward* with residual
  ``flow``.  No separate residual-graph object is materialised; the
  layered networks of Dinic's algorithm reference ``(arc, forward)``
  pairs directly, which is exactly the paper's "useful link" notion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator

if TYPE_CHECKING:  # deferred: kernel imports graph for its own types
    from repro.flows.kernel import CompiledNetwork

__all__ = ["Arc", "FlowNetwork", "Node"]

Node = Hashable


@dataclass
class Arc:
    """One directed arc of a flow network.

    Attributes
    ----------
    index:
        Position in :attr:`FlowNetwork.arcs`; stable for the lifetime
        of the network and usable as a key.
    tail, head:
        Endpoints; the arc carries flow from ``tail`` to ``head``.
    capacity:
        Upper flow bound ``c(e) >= 0``.
    cost:
        Cost per unit of flow, ``w(e)`` in the paper; 0 for pure
        max-flow problems.
    lower:
        Lower flow bound; 0 everywhere except in circulation
        formulations (out-of-kilter).
    flow:
        Current flow assignment ``f(e)``.
    """

    index: int
    tail: Node
    head: Node
    capacity: int
    cost: float = 0.0
    lower: int = 0
    flow: int = 0

    @property
    def residual_forward(self) -> int:
        """Extra flow this arc can still carry in its own direction."""
        return self.capacity - self.flow

    @property
    def residual_backward(self) -> int:
        """Flow that could be cancelled (pushed against the arc)."""
        return self.flow - self.lower

    def residual(self, forward: bool) -> int:
        """Residual capacity in the given traversal direction."""
        return self.residual_forward if forward else self.residual_backward

    def other(self, node: Node) -> Node:
        """The endpoint that is not ``node`` (for undirected walks)."""
        if node == self.tail:
            return self.head
        if node == self.head:
            return self.tail
        raise ValueError(f"{node!r} is not an endpoint of arc {self.index}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cost = f", cost={self.cost}" if self.cost else ""
        return (
            f"Arc#{self.index}({self.tail!r}->{self.head!r}, "
            f"f={self.flow}/{self.capacity}{cost})"
        )


class FlowNetwork:
    """A mutable digraph with capacities, costs, and a flow assignment.

    The class is a plain adjacency structure plus convenience queries;
    all algorithmic work lives in the solver modules.
    """

    def __init__(self) -> None:
        self.arcs: list[Arc] = []
        self._out: dict[Node, list[int]] = {}
        self._in: dict[Node, list[int]] = {}
        # Per-node incidence lists ((arc, forward) pairs, out-arcs
        # first), built once per node and invalidated by add_arc.  The
        # solvers walk incident() in their innermost loops; handing
        # them a ready-made list instead of re-zipping _out/_in per
        # traversal is what makes repeated (warm-start) solves on a
        # persistent network cheap.
        self._inc: dict[Node, list[tuple[Arc, bool]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Register ``node`` (idempotent) and return it."""
        if node not in self._out:
            self._out[node] = []
            self._in[node] = []
        return node

    def add_arc(
        self,
        tail: Node,
        head: Node,
        capacity: int,
        cost: float = 0.0,
        lower: int = 0,
    ) -> Arc:
        """Add an arc ``tail -> head`` and return it.

        Endpoints are registered automatically.  Self-loops are
        rejected: the paper's networks are loop-free and a self-loop
        can never carry useful flow.
        """
        if tail == head:
            raise ValueError(f"self-loop at {tail!r} not allowed in a loop-free RSIN")
        if capacity < 0:
            raise ValueError(f"negative capacity {capacity} on {tail!r}->{head!r}")
        if lower < 0 or lower > capacity:
            raise ValueError(f"lower bound {lower} outside [0, {capacity}]")
        self.add_node(tail)
        self.add_node(head)
        arc = Arc(len(self.arcs), tail, head, capacity, cost, lower)
        self.arcs.append(arc)
        self._out[tail].append(arc.index)
        self._in[head].append(arc.index)
        self._inc.pop(tail, None)
        self._inc.pop(head, None)
        return arc

    def pop_arc(self, arc: Arc) -> None:
        """Remove ``arc``, which must be the most recently added one.

        Arc indices are stable identifiers, so arbitrary removal is
        not offered; the only sanctioned deletion is unwinding a
        temporary arc in LIFO order (e.g. the out-of-kilter return
        arc).  Raises :class:`ValueError` when ``arc`` is not the
        last arc of this network.
        """
        if not self.arcs or self.arcs[-1] is not arc:
            raise ValueError(
                f"pop_arc: {arc!r} is not the most recently added arc; "
                "only LIFO removal keeps arc indices stable"
            )
        self.arcs.pop()
        self._out[arc.tail].pop()
        self._in[arc.head].pop()
        self._inc.pop(arc.tail, None)
        self._inc.pop(arc.head, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Iterable[Node]:
        """All registered nodes (insertion order)."""
        return self._out.keys()

    @property
    def n_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._out)

    @property
    def n_arcs(self) -> int:
        """Number of arcs."""
        return len(self.arcs)

    def __contains__(self, node: Node) -> bool:
        return node in self._out

    def out_arcs(self, node: Node) -> Iterator[Arc]:
        """Arcs leaving ``node`` — the paper's ``beta(v)``."""
        return (self.arcs[i] for i in self._out[node])

    def in_arcs(self, node: Node) -> Iterator[Arc]:
        """Arcs entering ``node`` — the paper's ``alpha(v)``."""
        return (self.arcs[i] for i in self._in[node])

    def incident(self, node: Node) -> list[tuple[Arc, bool]]:
        """All residual moves out of ``node``: ``(arc, forward)`` pairs.

        ``forward=True`` means leaving along an out-arc; ``False``
        means walking an in-arc backwards (flow cancellation).  The
        list (out-arcs first, then in-arcs, each in insertion order)
        is precomputed per node and reused until the next ``add_arc``
        touching ``node`` — callers must not mutate it.
        """
        cached = self._inc.get(node)
        if cached is None:
            cached = [(self.arcs[i], True) for i in self._out[node]]
            cached.extend((self.arcs[i], False) for i in self._in[node])
            self._inc[node] = cached
        return cached

    def degree(self, node: Node) -> int:
        """Total number of incident arcs."""
        return len(self._out[node]) + len(self._in[node])

    def find_arcs(self, tail: Node, head: Node) -> list[Arc]:
        """All (parallel) arcs from ``tail`` to ``head``."""
        return [self.arcs[i] for i in self._out.get(tail, ()) if self.arcs[i].head == head]

    # ------------------------------------------------------------------
    # Flow bookkeeping
    # ------------------------------------------------------------------
    def zero_flow(self) -> None:
        """Reset the flow assignment to all-zero.

        The zero is an ``int`` so that networks with integer
        capacities (every unit-capacity MRSIN transformation) keep
        exact integer flows through augmentation — no float drift on
        the hot scheduling path.
        """
        for arc in self.arcs:
            arc.flow = 0

    def net_outflow(self, node: Node) -> int:
        """Flow leaving minus flow entering ``node``.

        Positive at a source, negative at a sink, zero at conserved
        intermediate nodes.
        """
        out = sum(self.arcs[i].flow for i in self._out[node])
        inn = sum(self.arcs[i].flow for i in self._in[node])
        return out - inn

    def flow_value(self, source: Node) -> int:
        """Value of the current flow, measured at ``source``."""
        return self.net_outflow(source)

    def total_cost(self) -> float:
        """Total cost ``sum_e w(e) f(e)`` of the current assignment."""
        return sum(arc.cost * arc.flow for arc in self.arcs)

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def copy(self) -> "FlowNetwork":
        """Deep copy (nodes, arcs, and the current flow assignment)."""
        dup = FlowNetwork()
        for node in self.nodes:
            dup.add_node(node)
        for arc in self.arcs:
            new = dup.add_arc(arc.tail, arc.head, arc.capacity, arc.cost, arc.lower)
            new.flow = arc.flow
        return dup

    def compile(self) -> "CompiledNetwork":
        """Lower this network onto the flat-array flow kernel.

        Returns a :class:`~repro.flows.kernel.CompiledNetwork` bound to
        this network: object arc ``k`` becomes kernel arc pair
        ``2 * k``, lower bounds are handled by the circulation
        reduction, and solved flows are written back onto ``Arc.flow``.
        The compiled form captures *structure* (nodes, capacities,
        lower bounds); arcs added after compilation are not visible to
        it — compile again after structural changes.
        """
        from repro.flows.kernel import CompiledNetwork

        return CompiledNetwork(self)

    def decompose_paths(
        self, source: Node, sink: Node, *, above_lower: bool = False
    ) -> list[list[Arc]]:
        """Decompose an integral flow into arc-disjoint ``s``–``t`` paths.

        This realises the paper's Theorem 2 in reverse: each unit of
        flow defines one nonoverlapping path, hence one
        request→resource circuit.  The current flow must be integral
        and legal; a leftover circulation (flow on a cycle touching
        neither terminal) is ignored, matching the fact that such a
        cycle corresponds to no allocation.

        With ``above_lower=True`` only the flow *above* each arc's
        lower bound is decomposed.  The incremental engine freezes
        committed circuits at ``lower == flow``, so the excess
        ``flow - lower`` is exactly the flow found by the latest
        warm-start solve, and its paths are the cycle's new
        allocations.

        Returns a list of paths, each a list of arcs from ``source``
        to ``sink``.  The flow assignment itself is not modified.
        """
        # Sparse: only arcs actually carrying (excess) flow enter the
        # walk structure — on the incremental engine's persistent
        # network the delta is a handful of paths in a sea of frozen
        # and idle arcs, so a dense per-arc table would dominate.
        remaining: dict[int, int] = {}
        for arc in self.arcs:
            exc = arc.flow - arc.lower if above_lower else arc.flow
            if exc:
                rem = int(round(exc))
                if abs(exc - rem) > 1e-9:
                    raise ValueError(f"flow on {arc!r} is not integral")
                remaining[arc.index] = rem
        paths: list[list[Arc]] = []
        while True:
            # Walk from the source along positive-flow arcs.  If the walk
            # re-enters a node already on the path, the loop between the
            # two visits is a flow cycle: cancel it and keep walking.  By
            # conservation, a walk that cannot be extended has reached the
            # sink or started with no outgoing flow at the source.
            path: list[Arc] = []
            on_path: dict[Node, int] = {source: 0}
            node = source
            while node != sink:
                nxt: Arc | None = None
                for i in self._out[node]:
                    if remaining.get(i, 0) > 0:
                        nxt = self.arcs[i]
                        break
                if nxt is None:
                    break
                remaining[nxt.index] -= 1
                if nxt.head in on_path:
                    # Cancel the cycle: drop arcs back to the first visit.
                    cut = on_path[nxt.head]
                    for dropped in path[cut:]:
                        del on_path[dropped.head]
                    path = path[:cut]
                    node = nxt.head
                else:
                    path.append(nxt)
                    node = nxt.head
                    on_path[node] = len(path)
            if node != sink or not path:
                break
            paths.append(path)
        return paths

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowNetwork(|V|={self.n_nodes}, |E|={self.n_arcs})"

"""Flow legality checks shared by solvers, tests, and transformations.

Section III-A of the paper defines a *legal flow* as an assignment
satisfying (1) flow conservation at every node other than the terminals
and (2) the capacity limitation on every arc.  These checks are the
invariants the property-based tests enforce after every solver run.
"""

from __future__ import annotations

from typing import Hashable

from repro.flows.graph import FlowNetwork

__all__ = ["check_flow", "is_integral", "FlowViolation"]

# Tolerance for float flows produced by the LP-based solvers.
EPS = 1e-7


class FlowViolation(AssertionError):
    """Raised when a flow assignment violates legality constraints."""


def check_flow(
    net: FlowNetwork,
    source: Hashable | None = None,
    sink: Hashable | None = None,
    *,
    eps: float = EPS,
) -> int:
    """Verify the current assignment is a legal flow; return its value.

    Conservation is enforced at every node except ``source`` and
    ``sink``.  If both terminals are given, the net outflow of the
    source must equal the net inflow of the sink and that common value
    is returned; with no terminals, the assignment must be a
    circulation and 0 is returned.  Arc flows are ints (Theorem 2), so
    the value is too; ``eps`` only cushions the legality comparisons.

    Raises
    ------
    FlowViolation
        On any capacity, lower-bound, or conservation violation.
    """
    for arc in net.arcs:
        if arc.flow < arc.lower - eps or arc.flow > arc.capacity + eps:
            raise FlowViolation(
                f"capacity violated on {arc!r}: {arc.flow} not in "
                f"[{arc.lower}, {arc.capacity}]"
            )
    for node in net.nodes:
        if node == source or node == sink:
            continue
        imbalance = net.net_outflow(node)
        if abs(imbalance) > eps:
            raise FlowViolation(f"conservation violated at {node!r}: net outflow {imbalance}")
    if source is None:
        return 0
    value = net.net_outflow(source)
    if sink is not None:
        sink_value = -net.net_outflow(sink)
        if abs(value - sink_value) > eps:
            raise FlowViolation(
                f"source emits {value} but sink absorbs {sink_value}"
            )
    return value


def is_integral(net: FlowNetwork, *, eps: float = EPS) -> bool:
    """True if every arc carries an integral amount of flow.

    Integrality is what makes a flow *realisable* as circuit-switched
    paths (Theorems 1 and 2): half a unit of flow has no meaning as a
    switch setting.
    """
    return all(abs(arc.flow - round(arc.flow)) <= eps for arc in net.arcs)

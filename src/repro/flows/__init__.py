"""Network-flow substrate built from scratch for the RSIN reproduction.

The paper reduces every resource-scheduling discipline to a network
flow problem (its Table II):

=====================================  =================================
Scheduling discipline                  Flow problem / algorithm
=====================================  =================================
Homogeneous, no priority               Max flow — Ford–Fulkerson, Dinic
Homogeneous, priority & preference     Min-cost flow — out-of-kilter
Heterogeneous, restricted topology     Multicommodity LP — Simplex
Heterogeneous, general topology        Integer multicommodity (NP-hard)
=====================================  =================================

This subpackage implements all of those solvers natively (NetworkX is
used only as a cross-check oracle in the test suite):

- :mod:`repro.flows.graph` — the :class:`FlowNetwork` digraph.
- :mod:`repro.flows.maxflow` — Ford–Fulkerson labeling (BFS/DFS).
- :mod:`repro.flows.dinic` — Dinic's algorithm with explicit layered
  networks (the object realized in hardware by Section IV).
- :mod:`repro.flows.kernel` — the flat-int-array CSR Dinic kernel,
  the production hot path (``FlowNetwork.compile()`` lowers onto it;
  the object solvers remain the teaching/differential oracle).
- :mod:`repro.flows.mincut` — min-cut extraction / optimality proof.
- :mod:`repro.flows.mincost` — successive shortest paths and
  cycle-canceling minimum-cost flow.
- :mod:`repro.flows.out_of_kilter` — Fulkerson's out-of-kilter method,
  the algorithm the paper names for priority scheduling.
- :mod:`repro.flows.lp` / :mod:`repro.flows.simplex` — a
  bounded-variable primal Simplex solver.
- :mod:`repro.flows.multicommodity` — multicommodity max-flow and
  min-cost-flow via the LP formulations of Section III-D, with a
  branch-and-bound fallback for integral solutions.
"""

from repro.flows.graph import Arc, FlowNetwork
from repro.flows.kernel import CompiledNetwork, FlowKernel, KernelResult, kernel_solve
from repro.flows.maxflow import MaxFlowResult, edmonds_karp, ford_fulkerson
from repro.flows.push_relabel import push_relabel
from repro.flows.dinic import LayeredNetwork, DinicResult, build_layered_network, dinic
from repro.flows.mincut import MinCut, min_cut
from repro.flows.mincost import MinCostResult, min_cost_flow, cycle_cancel_min_cost
from repro.flows.out_of_kilter import out_of_kilter
from repro.flows.network_simplex import network_simplex
from repro.flows.lp import LinearProgram, LPResult, LPStatus
from repro.flows.simplex import simplex_solve
from repro.flows.multicommodity import (
    Commodity,
    MultiCommodityProblem,
    MultiCommodityResult,
    solve_max_multicommodity,
    solve_min_cost_multicommodity,
    solve_integral_multicommodity,
)
from repro.flows.validate import check_flow, is_integral

__all__ = [
    "Arc",
    "FlowNetwork",
    "CompiledNetwork",
    "FlowKernel",
    "KernelResult",
    "kernel_solve",
    "MaxFlowResult",
    "edmonds_karp",
    "ford_fulkerson",
    "push_relabel",
    "LayeredNetwork",
    "DinicResult",
    "build_layered_network",
    "dinic",
    "MinCut",
    "min_cut",
    "MinCostResult",
    "min_cost_flow",
    "cycle_cancel_min_cost",
    "out_of_kilter",
    "network_simplex",
    "LinearProgram",
    "LPResult",
    "LPStatus",
    "simplex_solve",
    "Commodity",
    "MultiCommodityProblem",
    "MultiCommodityResult",
    "solve_max_multicommodity",
    "solve_min_cost_multicommodity",
    "solve_integral_multicommodity",
    "check_flow",
    "is_integral",
]

"""Dinic's maximum-flow algorithm with explicit layered networks.

Section IV of the paper realises Dinic's algorithm in hardware, so the
layered network is a first-class object here rather than an internal
detail: the distributed token-propagation simulator is tested for
equivalence against :func:`build_layered_network` (request-token phase
builds the layered network, Theorem 4) and against the blocking flow
found per phase (resource-token phase).

Algorithm (the paper's Fig. 7 control flow):

1. Construct the layered network from the current flow: breadth-first
   ranks over *useful links* — unsaturated arcs taken forward, or
   arcs with nonzero flow taken backward — stopping at the layer that
   first contains the sink.
2. Find a *maximal* (blocking) flow in the layered network by
   depth-first search: every s-t path in the layered network gets
   saturated.  "Finding a maximal flow is sufficient ... computing the
   maximal flow is easier than computing the maximum flow."
3. Augment and repeat until the sink is unreachable.

On the unit-capacity networks produced by Transformation 1 the
complexity is ``O(|V|^{2/3} |E|)`` (Even–Tarjan, cited as [35]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.flows.graph import Arc, FlowNetwork
from repro.util.counters import OpCounter

__all__ = ["LayeredNetwork", "DinicResult", "build_layered_network", "blocking_flow", "dinic"]

Node = Hashable


@dataclass
class LayeredNetwork:
    """The auxiliary layered (level) network of one Dinic phase.

    Attributes
    ----------
    layers:
        ``layers[i]`` is the set of nodes at BFS distance ``i`` from
        the source over useful links; ``layers[0] == {source}``.  The
        last layer contains the sink iff the phase can augment.
    level:
        Node → layer index for all reached nodes.
    moves:
        Adjacency over useful links: node → list of ``(arc, forward)``
        residual moves that lead from its layer to the next one.
    reaches_sink:
        Whether the sink appears in the final layer.
    """

    source: Node
    sink: Node
    layers: list[set[Node]] = field(default_factory=list)
    level: dict[Node, int] = field(default_factory=dict)
    moves: dict[Node, list[tuple[Arc, bool]]] = field(default_factory=dict)
    reaches_sink: bool = False

    @property
    def depth(self) -> int:
        """Number of layers (= shortest augmenting path length + 1)."""
        return len(self.layers)

    def useful_moves(self, node: Node) -> list[tuple[Arc, bool]]:
        """Residual moves from ``node`` into the next layer."""
        return self.moves.get(node, [])


def build_layered_network(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    counter: OpCounter | None = None,
) -> LayeredNetwork:
    """Construct the layered network for the current flow assignment.

    Layer construction follows the paper exactly: *"A layer consists
    of nodes that are not included in the previous layers and have
    either an unsaturated arc or an arc with nonzero flow originating
    from any node in the layer before it."*  Construction stops with
    the first layer containing the sink (nothing beyond it can lie on
    a shortest augmenting path).
    """
    layered = LayeredNetwork(source=source, sink=sink)
    if source not in net or sink not in net:
        return layered
    layered.layers.append({source})
    layered.level[source] = 0
    frontier = [source]
    while frontier and not layered.reaches_sink:
        next_layer: set[Node] = set()
        for node in frontier:
            incident = net.incident(node)
            if counter is not None:
                counter.charge("node_visit")
                counter.charge("arc_scan", len(incident))
            for arc, forward in incident:
                # arc.residual(forward) <= 0, with the attribute reads
                # inlined: this is the innermost loop of every solve.
                if forward:
                    if arc.capacity - arc.flow <= 0:
                        continue
                elif arc.flow - arc.lower <= 0:
                    continue
                nxt = arc.head if forward else arc.tail
                # Nodes in `level` all sit in an earlier layer (the
                # current next layer is levelled only after this
                # frontier pass), so membership alone rules them out.
                if nxt in layered.level:
                    continue
                next_layer.add(nxt)
                layered.moves.setdefault(node, []).append((arc, forward))
        if not next_layer:
            break
        depth = len(layered.layers)
        for node in next_layer:
            layered.level[node] = depth
        layered.layers.append(next_layer)
        if sink in next_layer:
            layered.reaches_sink = True
            break
        frontier = list(next_layer)
    return layered


def blocking_flow(
    net: FlowNetwork,
    layered: LayeredNetwork,
    *,
    counter: OpCounter | None = None,
) -> int:
    """Saturate every s-t path of the layered network (maximal flow).

    Depth-first search with move pruning: a move that dead-ends is
    discarded so it is never retried — the software analogue of the
    resource token *"marking of a port is cleared whenever a resource
    token backtracks through the port"* rule.

    Returns the amount of flow added to the underlying network.
    """
    if not layered.reaches_sink:
        return 0
    source, sink = layered.source, layered.sink
    total = 0
    # Mutable per-node move cursors; exhausted moves are popped.
    moves = {node: list(ms) for node, ms in layered.moves.items()}
    while True:
        # Depth-first walk from the source.
        path: list[tuple[Arc, bool]] = []
        node = source
        while node != sink:
            if counter is not None:
                counter.charge("node_visit")
            available = moves.get(node, [])
            # Drop saturated moves from the tail of the list.
            while available:
                arc, forward = available[-1]
                residual = arc.capacity - arc.flow if forward else arc.flow - arc.lower
                if residual <= 0:
                    available.pop()
                    if counter is not None:
                        counter.charge("arc_scan")
                else:
                    break
            if not available:
                if not path:
                    node = None  # type: ignore[assignment]
                    break
                # Backtrack: the move that led here is fruitless.
                arc, forward = path.pop()
                prev = arc.tail if forward else arc.head
                moves[prev].pop()
                node = prev
                if counter is not None:
                    counter.charge("backtrack")
                continue
            arc, forward = available[-1]
            path.append((arc, forward))
            node = arc.head if forward else arc.tail
        if node is None:
            break  # source exhausted: flow is maximal
        amount = min(arc.residual(forward) for arc, forward in path)
        for arc, forward in path:
            if forward:
                arc.flow += amount
            else:
                arc.flow -= amount
        if counter is not None:
            counter.charge("augmentation")
            counter.charge("arc_update", len(path))
        total += amount
    return total


@dataclass
class DinicResult:
    """Outcome of a Dinic max-flow run.

    Attributes
    ----------
    value:
        The maximum flow.  Integral: capacities and lower bounds are
        ints (Theorem 1's unit-capacity construction), so every
        augmentation amount is an int.
    phases:
        Number of layered-network phases executed (each corresponds to
        one scheduling iteration of the distributed architecture).
    layered_networks:
        The layered network built in each phase, recorded when
        ``record_layers=True`` — used by the figures and by the tests
        that compare hardware token propagation against software Dinic.
    """

    value: int
    phases: int
    layered_networks: list[LayeredNetwork] = field(default_factory=list)


def dinic(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    counter: OpCounter | None = None,
    record_layers: bool = False,
) -> DinicResult:
    """Compute the maximum flow with Dinic's algorithm.

    Augments on top of the network's current flow assignment (the
    scheduler uses this across scheduling cycles).  Each phase builds
    a layered network and pushes a blocking flow; phases strictly
    increase the source–sink distance, so the loop terminates.
    """
    phases = 0
    recorded: list[LayeredNetwork] = []
    value = net.flow_value(source) if source in net else 0
    while True:
        layered = build_layered_network(net, source, sink, counter=counter)
        if record_layers:
            recorded.append(layered)
        if not layered.reaches_sink:
            break
        phases += 1
        value += blocking_flow(net, layered, counter=counter)
    return DinicResult(value=value, phases=phases, layered_networks=recorded)

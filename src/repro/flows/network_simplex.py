"""Network simplex for minimum-cost flow.

The paper's Table II solves heterogeneous scheduling with the Simplex
method; *network* simplex is the same pivoting logic specialised to
flow polytopes — bases are spanning trees, potentials come free from
the tree, and pivots push flow around a single cycle.  It is included
as a fourth structurally independent min-cost solver (after successive
shortest paths, cycle canceling, and out-of-kilter) and as the
bounded-variable simplex's sanity check on pure flow problems.

Implementation notes
--------------------
- Strongly-feasible-tree bookkeeping is not needed at our sizes;
  instead we use deterministic Bland-style entering (smallest arc
  index) with a leaving rule that prefers the blocking arc closest to
  the join on the *entering* side, plus a generous pivot cap as a
  nontermination guard.
- Initialisation uses an artificial root node with big-M arcs carrying
  each node's supply, exactly like textbook phase-1-free network
  simplex.
"""

from __future__ import annotations

from typing import Hashable

from repro.flows.graph import Arc, FlowNetwork
from repro.flows.mincost import InfeasibleFlowError, MinCostResult
from repro.util.counters import OpCounter

__all__ = ["network_simplex"]

Node = Hashable
EPS = 1e-9


class _TreeArc:
    """An arc of the working graph (real or artificial)."""

    __slots__ = ("index", "tail", "head", "capacity", "cost", "flow", "real")

    def __init__(self, index: int, tail: Node, head: Node, capacity: int,
                 cost: float, real: Arc | None) -> None:
        self.index = index
        self.tail = tail
        self.head = head
        self.capacity = capacity
        self.cost = cost
        self.flow = 0
        self.real = real

    def residual(self, forward: bool) -> int:
        return self.capacity - self.flow if forward else self.flow


def network_simplex(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    target_flow: int,
    counter: OpCounter | None = None,
    max_pivots: int | None = None,
) -> MinCostResult:
    """Min-cost ``source``→``sink`` flow of value ``target_flow``.

    Writes the optimal flow back onto ``net`` (which must start at
    zero flow) and returns a
    :class:`~repro.flows.mincost.MinCostResult` whose ``augmentations``
    field counts simplex pivots.  Raises
    :class:`~repro.flows.mincost.InfeasibleFlowError` when the value
    cannot be circulated (detected by artificial flow remaining).
    """
    for arc in net.arcs:
        if arc.flow != 0:
            raise ValueError("network_simplex requires a zero initial flow")
    if target_flow < 0:
        raise ValueError(f"negative target flow {target_flow}")
    if target_flow == 0:
        return MinCostResult(0, 0.0, 0)
    if source not in net or sink not in net:
        raise InfeasibleFlowError("terminal missing from network")

    # Working arcs: copies of the real arcs plus artificial root arcs.
    arcs: list[_TreeArc] = []
    for arc in net.arcs:
        arcs.append(_TreeArc(len(arcs), arc.tail, arc.head, arc.capacity, arc.cost, arc))
    nodes = list(net.nodes)
    supply = {v: 0 for v in nodes}
    supply[source] = target_flow
    supply[sink] = -target_flow

    big_m = (max((abs(a.cost) for a in arcs), default=0.0) + 1.0) * (len(nodes) + 1)
    root: Node = ("__ns_root__",)
    tree_arcs: set[int] = set()
    # Artificial arcs form the initial spanning tree, oriented to carry
    # each node's supply toward/away from the root.  Their capacity is
    # a finite "effectively infinite" *integer* so every residual (and
    # hence every pivot theta) stays exact — Theorem 2 integrality.
    art_cap = max(target_flow, sum(min(a.capacity, target_flow) for a in arcs)) + 1
    for v in nodes:
        if supply[v] >= 0:
            art = _TreeArc(len(arcs), v, root, capacity=art_cap, cost=big_m, real=None)
            art.flow = supply[v]
        else:
            art = _TreeArc(len(arcs), root, v, capacity=art_cap, cost=big_m, real=None)
            art.flow = -supply[v]
        arcs.append(art)
        tree_arcs.add(art.index)

    # Adjacency over tree arcs for potential/path computation.
    def tree_adjacency() -> dict[Node, list[_TreeArc]]:
        adj: dict[Node, list[_TreeArc]] = {v: [] for v in nodes}
        adj[root] = []
        for i in tree_arcs:
            a = arcs[i]
            adj[a.tail].append(a)
            adj[a.head].append(a)
        return adj

    def compute_state() -> tuple[dict[Node, float], dict[Node, tuple[Node, _TreeArc]]]:
        """Potentials and parent pointers from the current tree."""
        adj = tree_adjacency()
        pi: dict[Node, float] = {root: 0.0}
        parent: dict[Node, tuple[Node, _TreeArc]] = {}
        stack = [root]
        while stack:
            v = stack.pop()
            for a in adj[v]:
                w = a.head if a.tail == v else a.tail
                if w in pi:
                    continue
                # Reduced cost of tree arcs is zero: c + pi(tail) - pi(head) = 0.
                pi[w] = pi[a.tail] + a.cost if a.head == w else pi[a.head] - a.cost
                parent[w] = (v, a)
                stack.append(w)
        return pi, parent

    def tree_path(v: Node, parent: dict[Node, tuple[Node, _TreeArc]]) -> list[tuple[Node, _TreeArc]]:
        """Arcs from ``v`` up to the root, with the child node first."""
        path = []
        while v in parent:
            up, a = parent[v]
            path.append((v, a))
            v = up
        return path

    pivots = 0
    if max_pivots is None:
        max_pivots = 200 * (len(arcs) + 10) * (len(nodes) + 10)
    while True:
        pi, parent = compute_state()
        if counter is not None:
            counter.charge("ns_iteration")
        entering = None
        entering_forward = True
        for a in arcs:
            if a.index in tree_arcs:
                continue
            reduced = a.cost + pi[a.tail] - pi[a.head]
            at_lower = a.flow <= 0
            at_upper = a.flow >= a.capacity
            if at_lower and reduced < -EPS:
                entering, entering_forward = a, True
                break
            if at_upper and reduced > EPS:
                entering, entering_forward = a, False
                break
        if entering is None:
            break
        pivots += 1
        if pivots > max_pivots:
            raise RuntimeError("network simplex failed to terminate (pivot cap)")
        if counter is not None:
            counter.charge("ns_pivot")
        # The pivot cycle: entering arc plus the tree paths from its
        # endpoints to their lowest common ancestor.
        up_tail = tree_path(entering.tail, parent)
        up_head = tree_path(entering.head, parent)
        tail_nodes = {entering.tail: 0}
        for i, (child, _) in enumerate(up_tail):
            a = up_tail[i][1]
            nxt = a.tail if a.head == child else a.head
            tail_nodes[nxt] = i + 1
        join = None
        head_prefix: list[tuple[Node, _TreeArc]] = []
        node = entering.head
        if node in tail_nodes:
            join = node
        else:
            for child, a in up_head:
                head_prefix.append((child, a))
                node = a.tail if a.head == child else a.head
                if node in tail_nodes:
                    join = node
                    break
        if join is None:
            raise RuntimeError(
                "network simplex invariant broken: the tree paths from the "
                "entering arc's endpoints never met at a common ancestor"
            )
        tail_prefix = up_tail[: tail_nodes[join]]

        # Orient every cycle arc in the direction flow will move:
        # around the cycle following the entering arc's push direction.
        moves: list[tuple[_TreeArc, bool]] = [(entering, entering_forward)]
        # From entering.head up to join: flow moves child -> parent if
        # entering pushes toward head, i.e. along the path upward.
        for child, a in head_prefix:
            fwd = a.tail == child
            if not entering_forward:
                fwd = not fwd
            moves.append((a, fwd))
        # From join down to entering.tail (reverse of tail_prefix):
        for child, a in reversed(tail_prefix):
            fwd = a.head == child
            if not entering_forward:
                fwd = not fwd
            moves.append((a, fwd))

        theta = min(a.residual(fwd) for a, fwd in moves)
        # Leaving arc: the first blocking arc encountered (deterministic;
        # residuals are exact integers, so no tolerance is needed).
        leaving = None
        for a, fwd in moves:
            if a.residual(fwd) <= theta:
                leaving = a
                break
        for a, fwd in moves:
            a.flow += theta if fwd else -theta
        if leaving is None:
            raise RuntimeError(
                "network simplex invariant broken: no blocking arc found on "
                f"a pivot cycle of residual {theta}"
            )
        if leaving is not entering:
            tree_arcs.remove(leaving.index)
            tree_arcs.add(entering.index)
        # else: a bound flip — tree unchanged.

    # Feasibility: artificial arcs must be empty.
    for a in arcs:
        if a.real is None and a.flow > 0:
            raise InfeasibleFlowError(
                f"only {target_flow - a.flow} of {target_flow} units can be circulated"
            )
    for a in arcs:
        if a.real is not None:
            a.real.flow = a.flow
    return MinCostResult(value=net.flow_value(source), cost=net.total_cost(), augmentations=pivots)

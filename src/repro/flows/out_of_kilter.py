"""Fulkerson's out-of-kilter algorithm (the paper's Section III-C solver).

The paper: *"Edmonds and Karp have developed a scaled out-of-kilter
algorithm to obtain the minimum cost flow of a general flow network in
polynomial time.  For a flow network of 0-1 capacity, the time
complexity is bounded by O(|V| |E|^2)."*  We implement the classic
(unscaled) out-of-kilter method, which suffices for the 0–1 networks
produced by Transformation 2 and provides a third, structurally
independent min-cost solver for cross-validation.

The method works on a *circulation* network where every arc has bounds
``l(e) <= f(e) <= u(e)`` and a cost, with node potentials ``pi``.
Every arc is classified by its reduced cost
``cbar(e) = c(e) + pi(tail) - pi(head)``:

- ``cbar > 0`` — in kilter iff ``f = l``;
- ``cbar = 0`` — in kilter iff ``l <= f <= u``;
- ``cbar < 0`` — in kilter iff ``f = u``.

The *kilter number* measures the violation.  The algorithm repeatedly
selects an out-of-kilter arc and alternates primal steps (augment
around a cycle through the arc, found by a labeling search that never
worsens any kilter number) with dual steps (potential updates) until
every arc is in kilter — at which point complementary slackness makes
the circulation cost-optimal.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Hashable

from repro.flows.graph import Arc, FlowNetwork
from repro.flows.mincost import InfeasibleFlowError, MinCostResult
from repro.util.counters import OpCounter

__all__ = ["out_of_kilter", "min_cost_circulation"]

Node = Hashable
EPS = 1e-9


def _reduced_cost(arc: Arc, pi: dict[Node, float]) -> float:
    """``cbar(e) = c(e) + pi(tail) - pi(head)``."""
    return arc.cost + pi[arc.tail] - pi[arc.head]


def _kilter_number(arc: Arc, cbar: float) -> float:
    """Distance of the arc from its kilter condition."""
    if cbar > EPS:
        return abs(arc.flow - arc.lower)
    if cbar < -EPS:
        return abs(arc.capacity - arc.flow)
    return max(arc.flow - arc.capacity, arc.lower - arc.flow, 0.0)


def _needs_increase(arc: Arc, cbar: float) -> bool:
    """Whether fixing this out-of-kilter arc requires raising its flow."""
    if cbar > EPS:
        return arc.flow < arc.lower - EPS
    if cbar < -EPS:
        return arc.flow < arc.capacity - EPS
    return arc.flow < arc.lower - EPS


def _forward_slack(arc: Arc, cbar: float) -> float:
    """How much the labeling search may *increase* this arc's flow."""
    if cbar > EPS:
        # Raising flow is only kilter-improving while below the lower bound.
        return max(arc.lower - arc.flow, 0.0)
    return max(arc.capacity - arc.flow, 0.0)


def _backward_slack(arc: Arc, cbar: float) -> float:
    """How much the labeling search may *decrease* this arc's flow."""
    if cbar < -EPS:
        # Lowering flow is only kilter-improving while above the capacity.
        return max(arc.flow - arc.capacity, 0.0)
    return max(arc.flow - arc.lower, 0.0)


def min_cost_circulation(
    net: FlowNetwork,
    *,
    counter: OpCounter | None = None,
    max_steps: int | None = None,
) -> float:
    """Find a minimum-cost feasible circulation by the out-of-kilter method.

    Mutates ``net``'s flow in place (starting from the current, possibly
    infeasible, assignment) and returns the final total cost.  Raises
    :class:`InfeasibleFlowError` when no circulation satisfies the
    bounds.
    """
    pi: dict[Node, float] = {node: 0.0 for node in net.nodes}
    if max_steps is None:
        # Generous polynomial bound; out-of-kilter on integral data
        # terminates well within it.  Guards against silent nontermination.
        max_steps = 20 * (net.n_nodes + 5) * (net.n_arcs + 5) ** 2 + 10_000
    steps = 0
    while True:
        target_arc = None
        for arc in net.arcs:
            cbar = _reduced_cost(arc, pi)
            if _kilter_number(arc, cbar) > EPS:
                target_arc = arc
                break
        if target_arc is None:
            return net.total_cost()
        # Fix this arc, alternating labeling and potential updates.
        while True:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("out-of-kilter failed to terminate (step cap hit)")
            if counter is not None:
                counter.charge("kilter_step")
            cbar0 = _reduced_cost(target_arc, pi)
            if _kilter_number(target_arc, cbar0) <= EPS:
                break
            increase = _needs_increase(target_arc, cbar0)
            if increase:
                start, goal = target_arc.head, target_arc.tail
                need = (
                    target_arc.lower - target_arc.flow
                    if cbar0 > EPS
                    else target_arc.capacity - target_arc.flow
                )
            else:
                start, goal = target_arc.tail, target_arc.head
                need = (
                    target_arc.flow - target_arc.capacity
                    if cbar0 < -EPS
                    else target_arc.flow - target_arc.lower
                )
            # Labeling search (BFS) over kilter-preserving moves.
            labeled: dict[Node, tuple[Node, Arc, bool] | None] = {start: None}
            queue: deque[Node] = deque([start])
            while queue and goal not in labeled:
                node = queue.popleft()
                if counter is not None:
                    counter.charge("node_visit")
                for arc, forward in net.incident(node):
                    if arc is target_arc:
                        continue
                    if counter is not None:
                        counter.charge("arc_scan")
                    cbar = _reduced_cost(arc, pi)
                    slack = _forward_slack(arc, cbar) if forward else _backward_slack(arc, cbar)
                    if slack <= EPS:
                        continue
                    nxt = arc.head if forward else arc.tail
                    if nxt not in labeled:
                        labeled[nxt] = (node, arc, forward)
                        queue.append(nxt)
            if goal in labeled:
                # Breakthrough: augment around the cycle through target_arc.
                path: list[tuple[Arc, bool]] = []
                cur = goal
                while cur != start:
                    prev, arc, forward = labeled[cur]  # type: ignore[misc]
                    path.append((arc, forward))
                    cur = prev
                delta = need
                for arc, forward in path:
                    cbar = _reduced_cost(arc, pi)
                    slack = _forward_slack(arc, cbar) if forward else _backward_slack(arc, cbar)
                    delta = min(delta, slack)
                for arc, forward in path:
                    arc.flow += delta if forward else -delta
                target_arc.flow += delta if increase else -delta
                if counter is not None:
                    counter.charge("augmentation")
            else:
                # Non-breakthrough: dual (potential) update.
                in_s = set(labeled)
                theta = math.inf
                for arc in net.arcs:
                    cbar = _reduced_cost(arc, pi)
                    if arc.tail in in_s and arc.head not in in_s:
                        if cbar > EPS and arc.flow < arc.capacity - EPS:
                            theta = min(theta, cbar)
                    elif arc.head in in_s and arc.tail not in in_s:
                        if cbar < -EPS and arc.flow > arc.lower + EPS:
                            theta = min(theta, -cbar)
                if not math.isfinite(theta):
                    raise InfeasibleFlowError(
                        "no feasible circulation: kilter state cannot be repaired"
                    )
                for node in pi:
                    if node not in in_s:
                        pi[node] += theta
                if counter is not None:
                    counter.charge("dual_update")


def out_of_kilter(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    target_flow: int,
    counter: OpCounter | None = None,
) -> MinCostResult:
    """Min-cost ``source``→``sink`` flow of value ``target_flow``.

    Implements the paper's usage: the s-t problem is closed into a
    circulation by a return arc ``t -> s`` with bounds
    ``[target_flow, target_flow]`` and zero cost, then
    :func:`min_cost_circulation` is run.  The temporary return arc is
    removed before returning, leaving a legal s-t flow on ``net``.
    """
    if source not in net or sink not in net:
        raise InfeasibleFlowError("terminal missing from network")
    return_arc = net.add_arc(sink, source, capacity=target_flow, lower=target_flow, cost=0.0)
    try:
        min_cost_circulation(net, counter=counter)
    finally:
        # Detach the temporary return arc; it is by construction the
        # most recently added arc, which is the only removal
        # FlowNetwork sanctions (arc indices are stable identifiers).
        net.pop_arc(return_arc)
    augmentations = counter["augmentation"] if counter is not None else 0
    return MinCostResult(value=net.flow_value(source), cost=net.total_cost(), augmentations=augmentations)

"""Minimum-cut extraction and the max-flow = min-cut optimality proof.

The paper's termination argument — *"no more flow can be advanced
since the minimum cut-set is the bottleneck"* — is exactly the
max-flow/min-cut theorem.  The test suite uses :func:`min_cut` as an
*optimality certificate*: after any solver claims a maximum flow, the
cut it induces must have capacity equal to the flow value.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.flows.graph import Arc, FlowNetwork

__all__ = ["MinCut", "min_cut", "residual_reachable"]

Node = Hashable


@dataclass
class MinCut:
    """An ``s``–``t`` cut: a bipartition and its crossing arcs.

    Attributes
    ----------
    source_side:
        Nodes residually reachable from the source (contains ``s``).
    sink_side:
        The complement (contains ``t``).
    arcs:
        Forward arcs crossing from ``source_side`` to ``sink_side``.
    capacity:
        Total capacity of :attr:`arcs` — equals the max-flow value
        when computed at a maximum flow.
    """

    source_side: frozenset[Node]
    sink_side: frozenset[Node]
    arcs: tuple[Arc, ...]
    capacity: int


def residual_reachable(net: FlowNetwork, source: Node) -> set[Node]:
    """Nodes reachable from ``source`` in the residual graph."""
    if source not in net:
        return set()
    seen = {source}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        for arc, forward in net.incident(node):
            if arc.residual(forward) <= 0:
                continue
            nxt = arc.head if forward else arc.tail
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return seen


def min_cut(net: FlowNetwork, source: Node, sink: Node) -> MinCut:
    """Extract the canonical minimum cut at the current (maximum) flow.

    Must be called when the flow is maximum; if the sink is still
    residually reachable a :class:`ValueError` is raised because the
    claimed cut would not separate the terminals.
    """
    reach = residual_reachable(net, source)
    if sink in reach:
        raise ValueError("sink reachable in residual graph: flow is not maximum")
    crossing = tuple(
        arc for arc in net.arcs if arc.tail in reach and arc.head not in reach
    )
    all_nodes = set(net.nodes)
    return MinCut(
        source_side=frozenset(reach),
        sink_side=frozenset(all_nodes - reach),
        arcs=crossing,
        capacity=sum(arc.capacity for arc in crossing),
    )

"""Linear-programming model objects for the multicommodity formulations.

Section III-D of the paper formulates heterogeneous scheduling as
multicommodity (min-cost) flow linear programs and solves them with
the Simplex method.  :class:`LinearProgram` is the model container;
:func:`repro.flows.simplex.simplex_solve` is the solver.

The model is deliberately small: named variables with bounds and
objective coefficients, and equality/inequality constraints.
Inequalities are normalised to equalities with slack variables at
solve time, so solvers only see the standard form

    minimize    c' x
    subject to  A x = b,   l <= x <= u.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import numpy as np

__all__ = ["LinearProgram", "LPResult", "LPStatus", "Sense"]

VarKey = Hashable


class Sense(enum.Enum):
    """Constraint sense."""

    EQ = "=="
    LE = "<="
    GE = ">="


class LPStatus(enum.Enum):
    """Solver outcome classification."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class _Constraint:
    coeffs: dict[int, float]
    sense: Sense
    rhs: float


@dataclass
class LPResult:
    """Solution of a :class:`LinearProgram`.

    Attributes
    ----------
    status:
        Termination status; values are meaningful only for
        :attr:`LPStatus.OPTIMAL`.
    objective:
        Objective value (in the program's own min/max orientation).
    values:
        Variable key → optimal value.
    iterations:
        Simplex pivots performed (phase 1 + phase 2).
    """

    status: LPStatus
    objective: float
    values: dict[VarKey, float] = field(default_factory=dict)
    iterations: int = 0

    def __getitem__(self, key: VarKey) -> float:
        return self.values[key]


class LinearProgram:
    """A small LP builder keyed by arbitrary hashable variable names.

    Example
    -------
    >>> lp = LinearProgram(maximize=True)
    >>> x = lp.add_variable("x", high=4.0, objective=1.0)
    >>> y = lp.add_variable("y", high=3.0, objective=2.0)
    >>> lp.add_constraint({"x": 1.0, "y": 1.0}, Sense.LE, 5.0)
    >>> from repro.flows.simplex import simplex_solve
    >>> res = simplex_solve(lp)
    >>> res.status.value, res.objective
    ('optimal', 8.0)
    """

    def __init__(self, *, maximize: bool = False) -> None:
        self.maximize = maximize
        self._keys: list[VarKey] = []
        self._index: dict[VarKey, int] = {}
        self._low: list[float] = []
        self._high: list[float] = []
        self._cost: list[float] = []
        self._constraints: list[_Constraint] = []

    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Number of structural variables."""
        return len(self._keys)

    @property
    def n_constraints(self) -> int:
        """Number of constraints."""
        return len(self._constraints)

    def add_variable(
        self,
        key: VarKey,
        *,
        low: float = 0.0,
        high: float = math.inf,
        objective: float = 0.0,
    ) -> VarKey:
        """Declare variable ``key`` with bounds ``[low, high]``.

        Returns the key for fluent use.  Duplicate keys are rejected.
        """
        if key in self._index:
            raise ValueError(f"duplicate variable {key!r}")
        if low > high:
            raise ValueError(f"empty bound interval [{low}, {high}] for {key!r}")
        self._index[key] = len(self._keys)
        self._keys.append(key)
        self._low.append(float(low))
        self._high.append(float(high))
        self._cost.append(float(objective))
        return key

    def set_objective(self, key: VarKey, coefficient: float) -> None:
        """Overwrite the objective coefficient of an existing variable."""
        self._cost[self._index[key]] = float(coefficient)

    def add_constraint(self, coeffs: Mapping[VarKey, float], sense: Sense, rhs: float) -> None:
        """Add ``sum coeffs[k] * x_k  <sense>  rhs``.

        Unknown variable keys are an error; zero coefficients are
        dropped.
        """
        packed: dict[int, float] = {}
        for key, coef in coeffs.items():
            if key not in self._index:
                raise KeyError(f"unknown variable {key!r}")
            if coef != 0.0:
                packed[self._index[key]] = packed.get(self._index[key], 0.0) + float(coef)
        self._constraints.append(_Constraint(packed, sense, float(rhs)))

    # ------------------------------------------------------------------
    def to_standard_form(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Normalise to ``min c'x, Ax = b, l <= x <= u``.

        Slack variables (with infinite one-sided bounds) are appended
        for LE/GE rows; a maximisation objective is negated.  Returns
        ``(A, b, c, l, u)`` as dense numpy arrays; slack columns come
        after the structural ones.
        """
        n = self.n_variables
        m = self.n_constraints
        n_slack = sum(1 for c in self._constraints if c.sense is not Sense.EQ)
        A = np.zeros((m, n + n_slack))
        b = np.zeros(m)
        c = np.array(self._cost + [0.0] * n_slack)
        low = np.array(self._low + [0.0] * n_slack)
        high = np.array(self._high + [math.inf] * n_slack)
        if self.maximize:
            c = -c
        slack_col = n
        for i, con in enumerate(self._constraints):
            for j, coef in con.coeffs.items():
                A[i, j] = coef
            b[i] = con.rhs
            if con.sense is Sense.LE:
                A[i, slack_col] = 1.0
                slack_col += 1
            elif con.sense is Sense.GE:
                A[i, slack_col] = -1.0
                slack_col += 1
        return A, b, c, low, high

    def wrap_solution(self, x: np.ndarray, objective_min: float, status: LPStatus, iterations: int) -> LPResult:
        """Package a standard-form solution back into keyed values."""
        values = {key: float(x[i]) for i, key in enumerate(self._keys)}
        objective = -objective_min if self.maximize else objective_min
        return LPResult(status=status, objective=objective, values=values, iterations=iterations)

"""Ford–Fulkerson maximum flow by augmenting-path search (Section III-B).

The paper describes Ford and Fulkerson's primal–dual scheme: *"the flow
value is increased by iteratively searching for flow augmenting paths
until the minimum cut-set of the network is saturated"*.  Two search
orders are provided:

- :func:`edmonds_karp` — breadth-first search, i.e. shortest
  augmenting path first; ``O(|V||E|^2)`` in general, and the variant
  the min-cost and out-of-kilter solvers reuse.
- :func:`ford_fulkerson` — depth-first search, the classic labeling
  scheme.  On unit-capacity networks (every MRSIN transformation) the
  number of augmentations is bounded by the flow value, so both are
  fast; DFS is included because the distributed architecture's
  resource-token phase is a depth-first search and tests compare
  against it.

Both mutate the network's flow assignment in place and optionally
charge an :class:`~repro.util.counters.OpCounter` so the monitor
architecture's instruction-count cost model can be evaluated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable

from repro.flows.graph import Arc, FlowNetwork
from repro.util.counters import OpCounter

__all__ = ["MaxFlowResult", "edmonds_karp", "ford_fulkerson", "augment_along"]

Node = Hashable


@dataclass
class MaxFlowResult:
    """Outcome of a max-flow computation.

    Attributes
    ----------
    value:
        The maximum flow ``F``.
    augmentations:
        Number of augmenting paths advanced; on unit-capacity networks
        this equals ``value``.
    """

    value: int
    augmentations: int


def augment_along(path: list[tuple[Arc, bool]], amount: int) -> None:
    """Advance ``amount`` units of flow along a residual path.

    ``path`` is a list of ``(arc, forward)`` residual moves; forward
    moves gain flow, backward moves are cancelled.  This is the
    paper's Fig. 3 operation: *"if arc e points in the opposite
    direction as the s-t path, then additional flow may be pushed
    through the s-t path by cancelling its current flow"*.
    """
    for arc, forward in path:
        if forward:
            arc.flow += amount
        else:
            arc.flow -= amount


def _bottleneck(path: list[tuple[Arc, bool]]) -> int:
    """Residual capacity of a path: the minimum over its moves."""
    return min(arc.residual(forward) for arc, forward in path)


def _bfs_augmenting_path(
    net: FlowNetwork, source: Node, sink: Node, counter: OpCounter | None
) -> list[tuple[Arc, bool]] | None:
    """Shortest residual ``source``→``sink`` path, or ``None``."""
    parent: dict[Node, tuple[Node, Arc, bool]] = {}
    queue: deque[Node] = deque([source])
    seen = {source}
    while queue:
        node = queue.popleft()
        if counter is not None:
            counter.charge("node_visit")
        for arc, forward in net.incident(node):
            if counter is not None:
                counter.charge("arc_scan")
            if arc.residual(forward) <= 0:
                continue
            nxt = arc.head if forward else arc.tail
            if nxt in seen:
                continue
            seen.add(nxt)
            parent[nxt] = (node, arc, forward)
            if nxt == sink:
                path: list[tuple[Arc, bool]] = []
                cur = sink
                while cur != source:
                    prev, a, fwd = parent[cur]
                    path.append((a, fwd))
                    cur = prev
                path.reverse()
                return path
            queue.append(nxt)
    return None


def _dfs_augmenting_path(
    net: FlowNetwork, source: Node, sink: Node, counter: OpCounter | None
) -> list[tuple[Arc, bool]] | None:
    """Any residual ``source``→``sink`` path found depth-first."""
    stack: list[tuple[Node, list[tuple[Arc, bool]]]] = [(source, [])]
    seen = {source}
    while stack:
        node, path = stack.pop()
        if counter is not None:
            counter.charge("node_visit")
        if node == sink:
            return path
        for arc, forward in net.incident(node):
            if counter is not None:
                counter.charge("arc_scan")
            if arc.residual(forward) <= 0:
                continue
            nxt = arc.head if forward else arc.tail
            if nxt in seen:
                continue
            seen.add(nxt)
            stack.append((nxt, path + [(arc, forward)]))
    return None


def _run(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    finder,
    counter: OpCounter | None,
    flow_limit: int | None,
) -> MaxFlowResult:
    if source not in net or sink not in net:
        # A terminal with no incident arcs simply admits no flow; the
        # transformations prune unreachable nodes, so tolerate this.
        return MaxFlowResult(value=net.flow_value(source) if source in net else 0, augmentations=0)
    value = net.flow_value(source)
    augmentations = 0
    while flow_limit is None or value < flow_limit:
        path = finder(net, source, sink, counter)
        if path is None:
            break
        amount = _bottleneck(path)
        if flow_limit is not None:
            amount = min(amount, flow_limit - value)
        augment_along(path, amount)
        if counter is not None:
            counter.charge("augmentation")
            counter.charge("arc_update", len(path))
        value += amount
        augmentations += 1
    return MaxFlowResult(value=value, augmentations=augmentations)


def edmonds_karp(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    counter: OpCounter | None = None,
    flow_limit: int | None = None,
) -> MaxFlowResult:
    """Maximum flow by shortest augmenting paths (BFS).

    Augments on top of whatever flow is already assigned, which the
    scheduler relies on when re-optimising after a partial allocation.
    ``flow_limit`` stops early once the given value is reached.
    """
    return _run(net, source, sink, _bfs_augmenting_path, counter, flow_limit)


def ford_fulkerson(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    counter: OpCounter | None = None,
    flow_limit: int | None = None,
) -> MaxFlowResult:
    """Maximum flow by depth-first augmenting-path search.

    Identical optimum as :func:`edmonds_karp` (max-flow is unique in
    value, not in assignment); kept as an independent implementation
    for cross-checking and because its path choices resemble the
    token backtracking of the distributed architecture.
    """
    return _run(net, source, sink, _dfs_augmenting_path, counter, flow_limit)

"""Bounded-variable primal Simplex, written from scratch on numpy.

The paper solves the multicommodity LPs with the Simplex method,
noting it *"has been shown empirically to be a linear time algorithm"*
(McCall [31]).  This module implements the textbook two-phase primal
simplex with variable bounds:

- nonbasic variables rest at their lower *or* upper bound;
- phase 1 minimises the sum of artificial variables to find a basic
  feasible solution;
- Bland's smallest-index rule is used throughout, so the method cannot
  cycle (important: degenerate vertices are the norm in unit-capacity
  flow polytopes).

The dense ``numpy`` linear algebra keeps the code short and is more
than fast enough for the network sizes of the paper (tens of boxes);
the benchmark ``bench_multicommodity`` measures the empirical
near-linear scaling claim.
"""

from __future__ import annotations

import math

import numpy as np

from repro.flows.lp import LinearProgram, LPResult, LPStatus

__all__ = ["simplex_solve", "simplex_standard_form"]

TOL = 1e-8


def _solve_phase(
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    x: np.ndarray,
    basis: list[int],
    allowed: np.ndarray,
    max_iter: int,
) -> tuple[str, int]:
    """Run primal simplex from a basic feasible solution.

    ``x`` and ``basis`` are updated in place.  ``allowed[j]`` masks
    variables that may enter the basis (used to freeze artificials in
    phase 2).  Returns ``(status, iterations)`` where status is
    ``"optimal"``, ``"unbounded"`` or ``"iteration_limit"``.
    """
    m, n = A.shape
    at_upper = np.isclose(x, high) & ~np.isclose(low, high)
    iterations = 0
    while iterations < max_iter:
        iterations += 1
        B = A[:, basis]
        cB = c[basis]
        # Dual values and reduced costs.
        y = np.linalg.solve(B.T, cB)
        d = c - y @ A
        in_basis = np.zeros(n, dtype=bool)
        in_basis[basis] = True
        # Entering variable (Bland): smallest index with a profitable
        # direction — increase from lower bound if d < 0, decrease
        # from upper bound if d > 0.
        entering = -1
        increase = True
        for j in range(n):
            if in_basis[j] or not allowed[j]:
                continue
            if low[j] == high[j]:
                continue  # fixed variable can never improve
            if not at_upper[j] and d[j] < -TOL:
                entering, increase = j, True
                break
            if at_upper[j] and d[j] > TOL:
                entering, increase = j, False
                break
        if entering < 0:
            return "optimal", iterations
        # Direction of basic variables as x_entering moves by +t
        # (or -t when decreasing from the upper bound).
        w = np.linalg.solve(B, A[:, entering])
        if not increase:
            w = -w
        # Ratio test: keep every basic variable inside its bounds, and
        # allow a bound-to-bound flip of the entering variable.
        t_max = high[entering] - low[entering]
        leaving_pos = -1
        leaving_to_upper = False
        for i in range(m):
            xi = x[basis[i]]
            if w[i] > TOL:
                limit = (xi - low[basis[i]]) / w[i]
                to_upper = False
            elif w[i] < -TOL:
                limit = (high[basis[i]] - xi) / (-w[i])
                to_upper = True
            else:
                continue
            if math.isinf(limit):
                continue
            better = limit < t_max - TOL
            tie = (
                not better
                and not math.isinf(t_max)
                and abs(limit - t_max) <= TOL
                and (leaving_pos < 0 or basis[i] < basis[leaving_pos])
            )
            if better or tie:
                t_max = max(limit, 0.0)
                leaving_pos, leaving_to_upper = i, to_upper
        if math.isinf(t_max):
            return "unbounded", iterations
        # Apply the step.
        step = t_max if increase else -t_max
        x[entering] += step
        for i in range(m):
            x[basis[i]] -= w[i] * t_max
        if leaving_pos < 0:
            # Pure bound flip: entering variable moved to its other bound.
            at_upper[entering] = increase
        else:
            leaving = basis[leaving_pos]
            x[leaving] = high[leaving] if leaving_to_upper else low[leaving]
            at_upper[leaving] = leaving_to_upper
            basis[leaving_pos] = entering
            at_upper[entering] = False
    return "iteration_limit", iterations


def simplex_standard_form(
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    low: np.ndarray,
    high: np.ndarray,
    *,
    max_iter: int = 50_000,
) -> tuple[LPStatus, np.ndarray, float, int]:
    """Solve ``min c'x  s.t.  Ax = b, low <= x <= high``.

    Returns ``(status, x, objective, iterations)``.  Uses two phases:
    artificial variables with an identity basis first, the true
    objective second.
    """
    m, n = A.shape
    if m == 0:
        x = np.where(c > 0, low, np.where(c < 0, high, low))
        if not np.all(np.isfinite(x)):
            return LPStatus.UNBOUNDED, np.zeros(n), -math.inf, 0
        return LPStatus.OPTIMAL, x, float(c @ x), 0
    # Start structural variables at a finite bound.
    x0 = np.where(np.isfinite(low), low, 0.0)
    x0 = np.where(np.isfinite(x0), x0, np.where(np.isfinite(high), high, 0.0))
    residual = b - A @ x0
    # Artificial columns: +/-1 so artificial values start nonnegative.
    signs = np.where(residual >= 0, 1.0, -1.0)
    A1 = np.hstack([A, np.diag(signs)])
    x1 = np.concatenate([x0, np.abs(residual)])
    low1 = np.concatenate([low, np.zeros(m)])
    high1 = np.concatenate([high, np.full(m, math.inf)])
    c1 = np.concatenate([np.zeros(n), np.ones(m)])
    basis = list(range(n, n + m))
    allowed = np.ones(n + m, dtype=bool)
    status, it1 = _solve_phase(A1, b, c1, low1, high1, x1, basis, allowed, max_iter)
    if status == "iteration_limit":
        return LPStatus.ITERATION_LIMIT, x1[:n], float(c @ x1[:n]), it1
    if float(c1 @ x1) > 1e-6:
        return LPStatus.INFEASIBLE, x1[:n], math.inf, it1
    # Pivot any residual artificial out of the basis where possible;
    # rows that stay artificial are redundant, so freezing the
    # artificial at value 0 is safe.
    for pos, var in enumerate(basis):
        if var < n:
            continue
        B = A1[:, basis]
        for j in range(n):
            if j in basis:
                continue
            w = np.linalg.solve(B, A1[:, j])
            if abs(w[pos]) > 1e-7:
                basis[pos] = j
                break
    # Phase 2: real objective; artificials may not re-enter.
    allowed[n:] = False
    high1[n:] = 0.0  # pin remaining basic artificials to zero
    c2 = np.concatenate([c, np.zeros(m)])
    status, it2 = _solve_phase(A1, b, c2, low1, high1, x1, basis, allowed, max_iter)
    x = x1[:n]
    obj = float(c @ x)
    if status == "optimal":
        return LPStatus.OPTIMAL, x, obj, it1 + it2
    if status == "unbounded":
        return LPStatus.UNBOUNDED, x, -math.inf, it1 + it2
    return LPStatus.ITERATION_LIMIT, x, obj, it1 + it2


def simplex_solve(lp: LinearProgram, *, max_iter: int = 50_000) -> LPResult:
    """Solve a :class:`~repro.flows.lp.LinearProgram` with primal simplex."""
    A, b, c, low, high = lp.to_standard_form()
    status, x, obj, iterations = simplex_standard_form(A, b, c, low, high, max_iter=max_iter)
    return lp.wrap_solution(x, obj, status, iterations)

"""Multicommodity flow for heterogeneous MRSINs (Section III-D).

A heterogeneous MRSIN *"is equivalent to a flow network carrying
different types of commodities"*: one source–sink pair per resource
type, flows of different commodities sharing link capacity.  The paper
formulates both the multicommodity **maximum flow** and the
multicommodity **minimum cost flow** as linear programs and solves them
with the Simplex method; for *restricted topologies* (Evans–Jarvis
class, which includes the loop-free stage-structured MRSINs) the LP
optimum is integral, while the general integral problem is NP-hard —
handled here by a small branch-and-bound over the LP relaxation.

The LP uses the node–arc formulation exactly as printed in the paper:
variables ``f_i(e)`` per commodity and arc, conservation per node and
commodity, and the bundling constraint ``sum_i f_i(e) <= c(e)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable

from repro.flows.graph import Arc, FlowNetwork
from repro.flows.lp import LinearProgram, LPStatus, Sense
from repro.flows.simplex import simplex_solve

__all__ = [
    "Commodity",
    "MultiCommodityProblem",
    "MultiCommodityResult",
    "solve_max_multicommodity",
    "solve_min_cost_multicommodity",
    "solve_integral_multicommodity",
]

Node = Hashable
INT_TOL = 1e-6


@dataclass(frozen=True)
class Commodity:
    """One commodity: a resource type's source–sink pair.

    Attributes
    ----------
    name:
        Identifier (e.g. the resource type).
    source, sink:
        The commodity's ``s_i`` / ``t_i`` nodes in the shared network.
    demand:
        Required flow value for min-cost problems; ignored (may be
        ``None``) for maximum-flow problems.
    """

    name: Hashable
    source: Node
    sink: Node
    demand: float | None = None


@dataclass
class MultiCommodityProblem:
    """A shared-capacity network plus its commodities.

    ``costs[(k, arc_index)]`` optionally overrides the per-commodity
    unit cost ``w_i(e)``; otherwise the arc's own ``cost`` is charged
    to every commodity.
    """

    net: FlowNetwork
    commodities: list[Commodity]
    costs: dict[tuple[int, int], float] = field(default_factory=dict)

    def cost_of(self, k: int, arc: Arc) -> float:
        """Unit cost of commodity ``k`` on ``arc``."""
        return self.costs.get((k, arc.index), arc.cost)


@dataclass
class MultiCommodityResult:
    """Solution of a multicommodity problem.

    Attributes
    ----------
    status:
        LP status (branch-and-bound reports OPTIMAL or INFEASIBLE).
    flow_values:
        Per-commodity flow value ``F_i``, by commodity position.
    total_flow:
        ``sum_i F_i``.
    cost:
        Total cost ``sum_i sum_e w_i(e) f_i(e)``.
    arc_flows:
        ``(commodity index, arc index) -> flow``; zero entries omitted.
    integral:
        Whether every arc flow is integral (Evans–Jarvis topologies
        guarantee this for the pure LP).
    iterations:
        Simplex pivots (summed over branch-and-bound nodes, if any).
    nodes_explored:
        Branch-and-bound nodes (0 when the bare LP was integral).
    """

    status: LPStatus
    flow_values: list[float]
    total_flow: float
    cost: float
    arc_flows: dict[tuple[int, int], float]
    integral: bool
    iterations: int = 0
    nodes_explored: int = 0

    def commodity_flow(self, k: int, arc: Arc) -> float:
        """Flow of commodity ``k`` on ``arc`` (0.0 if absent)."""
        return self.arc_flows.get((k, arc.index), 0.0)


def _build_lp(
    problem: MultiCommodityProblem,
    *,
    maximize_total: bool,
    fixed_bounds: dict[tuple[str, int, int], tuple[float, float]] | None = None,
) -> LinearProgram:
    """Assemble the node–arc LP of Section III-D.

    ``maximize_total=True`` builds the multicommodity maximum flow
    problem (auxiliary ``F_i`` variables, objective ``sum F_i``);
    otherwise the min-cost problem with fixed demands.  ``fixed_bounds``
    lets branch-and-bound pin individual ``f_i(e)`` variables.
    """
    net = problem.net
    lp = LinearProgram(maximize=maximize_total)
    fixed_bounds = fixed_bounds or {}
    for k, com in enumerate(problem.commodities):
        for arc in net.arcs:
            key = ("f", k, arc.index)
            low, high = fixed_bounds.get(key, (0.0, arc.capacity))
            cost = 0.0 if maximize_total else problem.cost_of(k, arc)
            lp.add_variable(key, low=low, high=high, objective=cost)
        if maximize_total:
            lp.add_variable(("F", k), low=0.0, high=math.inf, objective=1.0)
    # Conservation per commodity and node (the paper's constraint 1).
    for k, com in enumerate(problem.commodities):
        for node in net.nodes:
            coeffs: dict[Hashable, float] = {}
            for arc in net.out_arcs(node):
                coeffs[("f", k, arc.index)] = coeffs.get(("f", k, arc.index), 0.0) + 1.0
            for arc in net.in_arcs(node):
                coeffs[("f", k, arc.index)] = coeffs.get(("f", k, arc.index), 0.0) - 1.0
            if node == com.source:
                if maximize_total:
                    coeffs[("F", k)] = -1.0
                    lp.add_constraint(coeffs, Sense.EQ, 0.0)
                else:
                    lp.add_constraint(coeffs, Sense.EQ, float(com.demand or 0.0))
            elif node == com.sink:
                if maximize_total:
                    coeffs[("F", k)] = 1.0
                    lp.add_constraint(coeffs, Sense.EQ, 0.0)
                else:
                    lp.add_constraint(coeffs, Sense.EQ, -float(com.demand or 0.0))
            else:
                lp.add_constraint(coeffs, Sense.EQ, 0.0)
    # Bundling: commodities share each arc's capacity (constraint 2).
    for arc in net.arcs:
        coeffs = {("f", k, arc.index): 1.0 for k in range(len(problem.commodities))}
        lp.add_constraint(coeffs, Sense.LE, arc.capacity)
    return lp


def _package(
    problem: MultiCommodityProblem,
    values: dict[Hashable, float],
    status: LPStatus,
    iterations: int,
    nodes_explored: int = 0,
) -> MultiCommodityResult:
    net = problem.net
    arc_flows: dict[tuple[int, int], float] = {}
    flow_values: list[float] = []
    cost = 0.0
    for k, com in enumerate(problem.commodities):
        out = 0.0
        for arc in net.arcs:
            f = values.get(("f", k, arc.index), 0.0)
            if abs(f) > INT_TOL:
                arc_flows[(k, arc.index)] = f
                cost += problem.cost_of(k, arc) * f
        for arc in net.out_arcs(com.source):
            out += values.get(("f", k, arc.index), 0.0)
        for arc in net.in_arcs(com.source):
            out -= values.get(("f", k, arc.index), 0.0)
        flow_values.append(out)
    integral = all(abs(f - round(f)) <= INT_TOL for f in arc_flows.values())
    return MultiCommodityResult(
        status=status,
        flow_values=flow_values,
        total_flow=sum(flow_values),
        cost=cost,
        arc_flows=arc_flows,
        integral=integral,
        iterations=iterations,
        nodes_explored=nodes_explored,
    )


def solve_max_multicommodity(problem: MultiCommodityProblem) -> MultiCommodityResult:
    """Multicommodity maximum flow: maximise ``sum_i F_i`` by LP.

    The LP relaxation; on Evans–Jarvis (restricted) topologies the
    result is already integral.  Use
    :func:`solve_integral_multicommodity` when integrality must be
    enforced on arbitrary networks.
    """
    lp = _build_lp(problem, maximize_total=True)
    res = simplex_solve(lp)
    return _package(problem, res.values, res.status, res.iterations)


def solve_min_cost_multicommodity(problem: MultiCommodityProblem) -> MultiCommodityResult:
    """Multicommodity minimum-cost flow with fixed per-commodity demands."""
    for com in problem.commodities:
        if com.demand is None:
            raise ValueError(f"commodity {com.name!r} needs a demand for the min-cost problem")
    lp = _build_lp(problem, maximize_total=False)
    res = simplex_solve(lp)
    return _package(problem, res.values, res.status, res.iterations)


def solve_integral_multicommodity(
    problem: MultiCommodityProblem,
    *,
    max_nodes: int = 2_000,
) -> MultiCommodityResult:
    """Integral multicommodity maximum flow by branch-and-bound.

    The general problem is NP-hard (the paper cites this), so this is
    exponential in the worst case; ``max_nodes`` caps the search.  The
    LP relaxation provides bounds; branching fixes one fractional
    ``f_i(e)`` to ``floor`` or ``ceil`` of its relaxed value (0/1 on
    unit-capacity networks).
    """
    best: MultiCommodityResult | None = None
    total_iter = 0
    explored = 0
    stack: list[dict[tuple[str, int, int], tuple[float, float]]] = [{}]
    while stack:
        if explored >= max_nodes:
            raise RuntimeError(f"branch-and-bound exceeded {max_nodes} nodes")
        bounds = stack.pop()
        explored += 1
        lp = _build_lp(problem, maximize_total=True, fixed_bounds=bounds)
        res = simplex_solve(lp)
        total_iter += res.iterations
        if res.status is not LPStatus.OPTIMAL:
            continue
        if best is not None and res.objective <= best.total_flow + INT_TOL:
            continue  # bound: cannot beat the incumbent
        packaged = _package(problem, res.values, res.status, res.iterations)
        fractional = None
        for key, val in res.values.items():
            if key[0] == "f" and abs(val - round(val)) > INT_TOL:
                fractional = key
                break
        if fractional is None:
            if best is None or packaged.total_flow > best.total_flow + INT_TOL:
                best = packaged
            continue
        val = res.values[fractional]
        lo_branch = dict(bounds)
        lo_branch[fractional] = (0.0, math.floor(val))
        hi_branch = dict(bounds)
        hi_branch[fractional] = (math.ceil(val), problem.net.arcs[fractional[2]].capacity)
        stack.append(lo_branch)
        stack.append(hi_branch)
    if best is None:
        return MultiCommodityResult(
            status=LPStatus.INFEASIBLE,
            flow_values=[0.0] * len(problem.commodities),
            total_flow=0.0,
            cost=0.0,
            arc_flows={},
            integral=True,
            iterations=total_iter,
            nodes_explored=explored,
        )
    best.iterations = total_iter
    best.nodes_explored = explored
    return best

"""Interconnection-network substrate: multistage networks as objects.

The paper's results are *"derived with respect to multistage
interconnection networks ... and are applicable to any general
loop-free network configuration"*.  This subpackage provides the
network model (:mod:`repro.networks.topology`) and constructors for
the classic topologies the paper cites from Feng's survey:

- :func:`omega` — Lawrie's Omega (perfect shuffle), the paper's Fig. 2
  and Fig. 9 substrate;
- :func:`flip` — the STARAN Flip network (inverse Omega);
- :func:`cube` / :func:`indirect_binary_cube` — the multistage
  cube / Pease's indirect binary n-cube;
- :func:`delta` — Patel's delta network (butterfly wiring, MSB first);
- :func:`baseline` — Wu and Feng's baseline network;
- :func:`benes` — the Beneš rearrangeable network (2 log N - 1 stages);
- :func:`clos` — the 3-stage Clos network;
- :func:`crossbar` — a single-stage crossbar switch;
- :func:`gamma` / :func:`data_manipulator` — the PM2I family the
  conclusions name (redundant paths, 3x3 switches);
- :func:`extra_stage_omega` — Omega with extra stages (the paper's
  "if extra stages are provided, there will be more paths" case).

All builders return a :class:`~repro.networks.topology.MultistageNetwork`
whose switchboxes are non-broadcast crossbars, matching the model of
Section II.
"""

from repro.networks.switchbox import Switchbox
from repro.networks.topology import Circuit, Link, MultistageNetwork, PortRef
from repro.networks.omega import omega, extra_stage_omega, flip
from repro.networks.cube import cube, indirect_binary_cube, delta
from repro.networks.baseline import baseline
from repro.networks.benes import benes
from repro.networks.clos import clos
from repro.networks.crossbar import crossbar
from repro.networks.gamma import gamma, data_manipulator
from repro.networks.routing import destination_tag_path, reachable_resources

__all__ = [
    "Switchbox",
    "Circuit",
    "Link",
    "MultistageNetwork",
    "PortRef",
    "omega",
    "extra_stage_omega",
    "flip",
    "cube",
    "indirect_binary_cube",
    "delta",
    "baseline",
    "benes",
    "clos",
    "crossbar",
    "gamma",
    "data_manipulator",
    "destination_tag_path",
    "reachable_resources",
]

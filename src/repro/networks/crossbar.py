"""Single-stage crossbar (Feng's third class of networks).

A crossbar is nonblocking: any free processor can always reach any
free resource, so optimal scheduling degenerates to counting.  It
serves as the zero-blocking control in the experiments and as the
simplest fixture for the transformation tests.
"""

from __future__ import annotations

from repro.networks.permutations import identity
from repro.networks.topology import MultistageNetwork, assemble

__all__ = ["crossbar"]


def crossbar(n_processors: int, n_resources: int | None = None) -> MultistageNetwork:
    """An ``n_processors x n_resources`` crossbar (one big switchbox)."""
    if n_resources is None:
        n_resources = n_processors
    if n_processors < 1 or n_resources < 1:
        raise ValueError("crossbar needs at least one port on each side")
    shapes = [[(n_processors, n_resources)]]
    return assemble(
        f"crossbar-{n_processors}x{n_resources}",
        n_processors,
        n_resources,
        shapes,
        [identity, identity],
    )

"""The gamma network (Parker & Raghavendra, cited as [36]).

The paper's conclusion singles out redundant-path networks: *"the
method is applicable to networks with multiple paths between
source-destination pairs, such as the data manipulator, augmented
data manipulator, and gamma network."*  The gamma network is the
cleanest representative: ``n = log2 N`` columns of ``N`` 3x3 switches
where column ``i``'s switch ``j`` connects to switches
``(j - 2^i) mod N``, ``j``, and ``(j + 2^i) mod N`` of the next
column — every destination is reachable through as many paths as the
signed-digit representations of ``(dest - src) mod N``.

It is also the only builder in this package with non-2x2 switchboxes
(1x3 ingress, 3x3 middle, 3x1 egress), so it exercises the general
crossbar paths of the model, the transformations, and the distributed
token architecture.
"""

from __future__ import annotations

from repro.networks.permutations import identity, log2_exact
from repro.networks.topology import MultistageNetwork, assemble

__all__ = ["gamma", "data_manipulator"]


def _gamma_boundary(i: int, n_ports: int):
    """Wiring after a column whose stride is ``2^i``.

    Output port 0 of switch ``j`` goes *down* to switch
    ``(j - 2^i) mod N`` (arriving at its input port 2), port 1 goes
    straight (input port 1), port 2 goes *up* to ``(j + 2^i) mod N``
    (input port 0).  Each next-column switch thus receives exactly its
    minus/straight/plus predecessors on ports 0/1/2.
    """
    stride = 1 << i

    def wired(wire: int, size: int) -> int:
        if size != 3 * n_ports:
            raise ValueError(f"gamma boundary expects {3 * n_ports} wires, got {size}")
        j, p = divmod(wire, 3)
        if p == 0:
            k, q = (j - stride) % n_ports, 2
        elif p == 1:
            k, q = j, 1
        else:
            k, q = (j + stride) % n_ports, 0
        return 3 * k + q

    return wired


def gamma(n_ports: int) -> MultistageNetwork:
    """An ``n_ports x n_ports`` gamma network.

    ``log2(n_ports) + 1`` stages: an ingress column of 1x3 switches,
    ``log2(n_ports) - 1`` middle columns of 3x3 switches, and an
    egress column of 3x1 concentrators.  Strides double per column
    (1, 2, 4, ...), the classic plus-minus-2^i structure.
    """
    return _pm2i("gamma", n_ports, ascending=True)


def data_manipulator(n_ports: int) -> MultistageNetwork:
    """Feng's data manipulator / augmented data manipulator structure.

    The same plus-minus-2^i cell columns as the gamma network but with
    strides resolved *descending* (N/2, ..., 2, 1) — the original data
    manipulator's MSB-first order, which the ADM augments with
    independent stage controls.  Topologically this is the gamma's
    mirror; it is included because the paper's conclusion names all
    three networks explicitly.
    """
    return _pm2i("data-manipulator", n_ports, ascending=False)


def _pm2i(name: str, n_ports: int, *, ascending: bool) -> MultistageNetwork:
    """Shared builder for the PM2I (plus-minus 2^i) network family."""
    n = log2_exact(n_ports)
    shapes: list[list[tuple[int, int]]] = [[(1, 3)] * n_ports]
    for _ in range(max(n - 1, 0)):
        shapes.append([(3, 3)] * n_ports)
    shapes.append([(3, 1)] * n_ports)
    strides = range(n) if ascending else range(n - 1, -1, -1)
    boundaries = [identity]
    for i in strides:
        boundaries.append(_gamma_boundary(i, n_ports))
    boundaries.append(identity)
    return assemble(f"{name}-{n_ports}", n_ports, n_ports, shapes, boundaries)

"""The generic multistage-network model: boxes, links, and circuits.

A :class:`MultistageNetwork` is the physical substrate of an MRSIN
(Section II): processors on the input side, resources on the output
side, stages of non-broadcast switchboxes in between, and point-to-
point links.  Circuit switching means a request holds an entire
processor→resource path of links plus one input→output connection in
each traversed box; this module owns that bookkeeping
(:meth:`MultistageNetwork.establish_circuit` /
:meth:`~MultistageNetwork.release_circuit`).

Networks are assembled from *stage boundaries*: permutation functions
describing how the wires of one rank connect to the next (see
:mod:`repro.networks.permutations`).  The topology builders
(:func:`~repro.networks.omega.omega` etc.) all funnel through
:func:`assemble`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, NamedTuple, Sequence

from repro.networks.switchbox import Switchbox

__all__ = ["PortRef", "Link", "Circuit", "MultistageNetwork", "assemble"]


class PortRef(NamedTuple):
    """A network attachment point.

    ``kind`` is one of ``"proc"``, ``"res"``, ``"box_in"``,
    ``"box_out"``.  For processors/resources, ``box`` holds the
    processor/resource index and ``stage``/``port`` are ``-1``/``0``.
    """

    kind: str
    stage: int
    box: int
    port: int

    @staticmethod
    def processor(p: int) -> "PortRef":
        """The output port of processor ``p``."""
        return PortRef("proc", -1, p, 0)

    @staticmethod
    def resource(r: int) -> "PortRef":
        """The input port of resource ``r``."""
        return PortRef("res", -1, r, 0)

    @staticmethod
    def box_in(stage: int, box: int, port: int) -> "PortRef":
        """Input ``port`` of switchbox ``box`` in ``stage``."""
        return PortRef("box_in", stage, box, port)

    @staticmethod
    def box_out(stage: int, box: int, port: int) -> "PortRef":
        """Output ``port`` of switchbox ``box`` in ``stage``."""
        return PortRef("box_out", stage, box, port)


@dataclass
class Link:
    """A physical wire between two ports.

    ``occupied`` marks a link held by an established circuit; the
    scheduling transformations give occupied links zero capacity.
    ``failed`` marks a physically broken wire: it can carry no new
    circuit until repaired, and a circuit holding it when it fails is
    *severed* (the service revokes the lease).
    """

    index: int
    src: PortRef
    dst: PortRef
    occupied: bool = False
    failed: bool = False


@dataclass
class Circuit:
    """An established processor→resource connection.

    Holds the ordered links of the path; used as the handle for
    :meth:`MultistageNetwork.release_circuit`.
    """

    processor: int
    resource: int
    links: tuple[Link, ...]


class MultistageNetwork:
    """Switchboxes + links + circuit state for one interconnection network.

    Use the topology builders or :func:`assemble` to construct
    instances; direct construction is for hand-built test fixtures.
    """

    def __init__(self, name: str, n_processors: int, n_resources: int) -> None:
        self.name = name
        self.n_processors = n_processors
        self.n_resources = n_resources
        self.stages: list[list[Switchbox]] = []
        self.links: list[Link] = []
        self._from_src: dict[PortRef, Link] = {}
        self._to_dst: dict[PortRef, Link] = {}
        self.circuits: list[Circuit] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_stage(self, boxes: Sequence[tuple[int, int]]) -> list[Switchbox]:
        """Append a stage of switchboxes given ``(n_in, n_out)`` shapes."""
        stage = len(self.stages)
        created = [Switchbox(stage, i, n_in, n_out) for i, (n_in, n_out) in enumerate(boxes)]
        self.stages.append(created)
        return created

    def add_link(self, src: PortRef, dst: PortRef) -> Link:
        """Wire ``src`` to ``dst``; each port carries at most one link."""
        if src in self._from_src:
            raise ValueError(f"port {src} already wired")
        if dst in self._to_dst:
            raise ValueError(f"port {dst} already wired")
        link = Link(len(self.links), src, dst)
        self.links.append(link)
        self._from_src[src] = link
        self._to_dst[dst] = link
        return link

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Number of switchbox stages."""
        return len(self.stages)

    def box(self, stage: int, index: int) -> Switchbox:
        """The switchbox at ``(stage, index)``."""
        return self.stages[stage][index]

    def boxes(self) -> Iterator[Switchbox]:
        """All switchboxes, stage by stage."""
        for stage in self.stages:
            yield from stage

    def processor_link(self, p: int) -> Link:
        """The single link leaving processor ``p``."""
        return self._from_src[PortRef.processor(p)]

    def resource_link(self, r: int) -> Link:
        """The single link entering resource ``r``."""
        return self._to_dst[PortRef.resource(r)]

    def link_from(self, port: PortRef) -> Link | None:
        """Link whose source is ``port`` (None if unwired)."""
        return self._from_src.get(port)

    def link_to(self, port: PortRef) -> Link | None:
        """Link whose destination is ``port`` (None if unwired)."""
        return self._to_dst.get(port)

    def links_out_of_box(self, stage: int, index: int) -> list[Link]:
        """Links leaving each output port of a box, in port order."""
        box = self.box(stage, index)
        out = []
        for port in range(box.n_out):
            link = self._from_src.get(PortRef.box_out(stage, index, port))
            if link is not None:
                out.append(link)
        return out

    def links_into_box(self, stage: int, index: int) -> list[Link]:
        """Links entering each input port of a box, in port order."""
        box = self.box(stage, index)
        inn = []
        for port in range(box.n_in):
            link = self._to_dst.get(PortRef.box_in(stage, index, port))
            if link is not None:
                inn.append(link)
        return inn

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------
    def link_usable(self, link: Link) -> bool:
        """Whether ``link`` can carry a (new) circuit at all.

        A link is unusable when it has failed itself or when either
        switchbox it touches has failed.  Occupancy is a separate,
        orthogonal dimension: an occupied link is *in use*, an unusable
        one is *broken*.
        """
        if link.failed:
            return False
        src, dst = link.src, link.dst
        if src.kind == "box_out" and self.stages[src.stage][src.box].failed:
            return False
        if dst.kind == "box_in" and self.stages[dst.stage][dst.box].failed:
            return False
        return True

    def circuit_severed(self, circuit: Circuit) -> bool:
        """Whether an established circuit crosses a failed link or box."""
        return any(not self.link_usable(link) for link in circuit.links)

    def failed_links(self) -> list[int]:
        """Indices of links currently marked failed."""
        return [link.index for link in self.links if link.failed]

    def failed_switchboxes(self) -> list[tuple[int, int]]:
        """``(stage, index)`` of switchboxes currently marked failed."""
        return [(box.stage, box.index) for box in self.boxes() if box.failed]

    def clear_faults(self) -> None:
        """Repair every failed link and switchbox."""
        for link in self.links:
            link.failed = False
        for box in self.boxes():
            box.failed = False

    # ------------------------------------------------------------------
    # Circuit switching
    # ------------------------------------------------------------------
    def _validate_path(self, links: Sequence[Link]) -> tuple[int, int]:
        """Check a link sequence is a contiguous processor→resource path.

        Returns ``(processor, resource)``.  Does not check occupancy.
        """
        if not links:
            raise ValueError("empty path")
        first, last = links[0], links[-1]
        if first.src.kind != "proc":
            raise ValueError(f"path must start at a processor, got {first.src}")
        if last.dst.kind != "res":
            raise ValueError(f"path must end at a resource, got {last.dst}")
        for a, b in zip(links, links[1:]):
            if a.dst.kind != "box_in" or b.src.kind != "box_out":
                raise ValueError(f"links {a.index} and {b.index} do not meet at a box")
            if (a.dst.stage, a.dst.box) != (b.src.stage, b.src.box):
                raise ValueError(
                    f"links {a.index} and {b.index} meet different boxes "
                    f"({a.dst.stage},{a.dst.box}) vs ({b.src.stage},{b.src.box})"
                )
        return first.src.box, last.dst.box

    def establish_circuit(self, links: Sequence[Link]) -> Circuit:
        """Reserve a path: occupy its links and set the traversed switches.

        Raises :class:`ValueError` (leaving the network untouched) if
        any link is occupied or any switch port is already in use —
        the circuit blockages the scheduler must avoid.
        """
        processor, resource = self._validate_path(links)
        for link in links:
            if link.occupied:
                raise ValueError(f"link {link.index} already occupied")
            if link.failed:
                raise ValueError(f"link {link.index} has failed")
        # Check all switch ports before mutating anything.
        hops = list(zip(links, links[1:]))
        for a, b in hops:
            box = self.box(a.dst.stage, a.dst.box)
            if box.failed:
                raise ValueError(f"{box} has failed")
            if not box.input_free(a.dst.port):
                raise ValueError(f"{box} input {a.dst.port} busy")
            if not box.output_free(b.src.port):
                raise ValueError(f"{box} output {b.src.port} busy")
        for a, b in hops:
            self.box(a.dst.stage, a.dst.box).connect(a.dst.port, b.src.port)
        for link in links:
            link.occupied = True
        circuit = Circuit(processor=processor, resource=resource, links=tuple(links))
        self.circuits.append(circuit)
        return circuit

    def establish_circuits(self, paths: Sequence[Sequence[Link]]) -> list[Circuit]:
        """Atomically establish one circuit per path (all-or-nothing).

        Performs every :meth:`establish_circuit` check for *all* paths
        — shape, occupancy, faults, switch-port availability, plus
        link-disjointness *across* the batch — before mutating any
        state, so a :class:`ValueError` on any path leaves the network
        untouched.  This is the scheduling-cycle hot path: one combined
        check-then-mutate pass over a whole mapping instead of a
        validate pass followed by per-circuit re-checks.
        """
        stages = self.stages
        seen: set[int] = set()
        staged: list[tuple[int, int, Sequence[Link], list[tuple]]] = []
        for links in paths:
            processor, resource = self._validate_path(links)
            for link in links:
                if link.occupied:
                    raise ValueError(f"link {link.index} already occupied")
                if link.failed:
                    raise ValueError(f"link {link.index} has failed")
                if link.index in seen:
                    raise ValueError(f"two paths share link {link.index}")
                seen.add(link.index)
            hops: list[tuple] = []
            prev = links[0]
            for nxt in links[1:]:
                end = prev.dst
                box = stages[end.stage][end.box]
                if box.failed:
                    raise ValueError(f"{box} has failed")
                if not box.ports_free(end.port, nxt.src.port):
                    if not box.input_free(end.port):
                        raise ValueError(f"{box} input {end.port} busy")
                    raise ValueError(f"{box} output {nxt.src.port} busy")
                hops.append((box, end.port, nxt.src.port))
                prev = nxt
            staged.append((processor, resource, links, hops))
        circuits: list[Circuit] = []
        for processor, resource, links, hops in staged:
            for box, port_in, port_out in hops:
                box.connect(port_in, port_out)
            for link in links:
                link.occupied = True
            circuit = Circuit(
                processor=processor, resource=resource, links=tuple(links)
            )
            self.circuits.append(circuit)
            circuits.append(circuit)
        return circuits

    def release_circuit(self, circuit: Circuit) -> None:
        """Tear down a previously established circuit."""
        # Identity scan first: circuits handed out by establish_circuit
        # come back as the same objects, and `is` skips the deep
        # dataclass comparison `in`/`remove` would run per entry.
        at = -1
        for i, active in enumerate(self.circuits):
            if active is circuit:
                at = i
                break
        if at < 0:
            try:
                at = self.circuits.index(circuit)
            except ValueError:
                raise ValueError("circuit not active on this network") from None
        for a, b in zip(circuit.links, circuit.links[1:]):
            self.box(a.dst.stage, a.dst.box).disconnect(a.dst.port)
        for link in circuit.links:
            link.occupied = False
        del self.circuits[at]

    def release_all(self) -> None:
        """Release every circuit and clear all switch state."""
        for link in self.links:
            link.occupied = False
        for box in self.boxes():
            box.reset()
        self.circuits.clear()

    # ------------------------------------------------------------------
    # Path search over free capacity
    # ------------------------------------------------------------------
    def _free_successors(self, link: Link) -> Iterator[Link]:
        """Free, unfailed links that may legally follow ``link``."""
        dst = link.dst
        if dst.kind != "box_in":
            return
        box = self.box(dst.stage, dst.box)
        if box.failed or not box.input_free(dst.port):
            return
        for port in range(box.n_out):
            if not box.output_free(port):
                continue
            nxt = self._from_src.get(PortRef.box_out(dst.stage, dst.box, port))
            if nxt is not None and not nxt.occupied and not nxt.failed:
                yield nxt

    def find_free_path(self, p: int, r: int) -> list[Link] | None:
        """A free circuit path from processor ``p`` to resource ``r``.

        Depth-first search over free links and free switch ports,
        skipping failed links and boxes; returns ``None`` when ``r`` is
        unreachable (blocked).  This is the *single-request* primitive;
        the optimal scheduler instead reasons over all requests jointly
        via the flow transformations.
        """
        start = self.processor_link(p)
        if start.occupied or start.failed:
            return None
        target = PortRef.resource(r)
        stack: list[list[Link]] = [[start]]
        seen: set[int] = {start.index}
        while stack:
            path = stack.pop()
            last = path[-1]
            if last.dst == target:
                if not last.occupied:
                    return path
                return None
            for nxt in self._free_successors(last):
                if nxt.index in seen:
                    continue
                seen.add(nxt.index)
                stack.append(path + [nxt])
        return None

    def enumerate_free_paths(self, p: int, r: int) -> Iterator[list[Link]]:
        """Yield *every* currently-free circuit path from ``p`` to ``r``.

        Depth-first enumeration respecting link occupancy and switch
        port state; exponential in the worst case (redundant-path
        networks), intended for the exhaustive-search oracle and for
        small-instance analysis only.
        """
        start = self.processor_link(p)
        if start.occupied or start.failed:
            return
        target = PortRef.resource(r)

        def walk(path: list[Link]):
            last = path[-1]
            if last.dst == target:
                yield list(path)
                return
            for nxt in self._free_successors(last):
                path.append(nxt)
                yield from walk(path)
                path.pop()

        yield from walk([start])

    def count_paths(self, p: int, r: int) -> int:
        """Number of distinct link-paths from ``p`` to ``r`` ignoring state.

        Structural redundancy metric: 1 for unique-path networks
        (Omega, baseline, cube), >1 for Beneš/Clos/extra-stage
        networks.
        """
        target = PortRef.resource(r)

        def walk(link: Link) -> int:
            if link.dst == target:
                return 1
            if link.dst.kind != "box_in":
                return 0
            stage, box_idx = link.dst.stage, link.dst.box
            box = self.box(stage, box_idx)
            total = 0
            for port in range(box.n_out):
                nxt = self._from_src.get(PortRef.box_out(stage, box_idx, port))
                if nxt is not None:
                    total += walk(nxt)
            return total

        return walk(self.processor_link(p))

    # ------------------------------------------------------------------
    def occupancy(self) -> float:
        """Fraction of links currently occupied."""
        if not self.links:
            return 0.0
        return sum(link.occupied for link in self.links) / len(self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultistageNetwork({self.name!r}, {self.n_processors}x{self.n_resources}, "
            f"stages={self.n_stages}, links={len(self.links)})"
        )


def assemble(
    name: str,
    n_processors: int,
    n_resources: int,
    stage_shapes: Sequence[Sequence[tuple[int, int]]],
    boundaries: Sequence[Callable[[int, int], int]],
) -> MultistageNetwork:
    """Build a network from stage shapes and boundary permutations.

    ``boundaries`` has ``len(stage_shapes) + 1`` entries.  Boundary 0
    wires processors to stage-0 inputs; boundary ``k`` wires stage
    ``k-1`` outputs to stage ``k`` inputs; the final boundary wires
    last-stage outputs to resources.  Each boundary function maps a
    global wire index (in box-major port order) to the destination
    global port index; the wire counts on both sides must agree.
    """
    if len(boundaries) != len(stage_shapes) + 1:
        raise ValueError(
            f"need {len(stage_shapes) + 1} boundaries, got {len(boundaries)}"
        )
    net = MultistageNetwork(name, n_processors, n_resources)
    for shapes in stage_shapes:
        net.add_stage(shapes)

    def in_port(stage: int, global_port: int) -> PortRef:
        total = 0
        for idx, box in enumerate(net.stages[stage]):
            if global_port < total + box.n_in:
                return PortRef.box_in(stage, idx, global_port - total)
            total += box.n_in
        raise ValueError(f"input port {global_port} out of range in stage {stage}")

    def out_port(stage: int, global_port: int) -> PortRef:
        total = 0
        for idx, box in enumerate(net.stages[stage]):
            if global_port < total + box.n_out:
                return PortRef.box_out(stage, idx, global_port - total)
            total += box.n_out
        raise ValueError(f"output port {global_port} out of range in stage {stage}")

    n_stages = len(stage_shapes)
    for k, boundary in enumerate(boundaries):
        if k == 0:
            n_src = n_processors
            srcs = [PortRef.processor(i) for i in range(n_src)]
        else:
            n_src = sum(box.n_out for box in net.stages[k - 1])
            srcs = [out_port(k - 1, i) for i in range(n_src)]
        if k == n_stages:
            n_dst = n_resources
            dsts = [PortRef.resource(i) for i in range(n_dst)]
        else:
            n_dst = sum(box.n_in for box in net.stages[k])
            dsts = [in_port(k, i) for i in range(n_dst)]
        if n_src != n_dst:
            raise ValueError(
                f"boundary {k}: {n_src} source wires vs {n_dst} destination ports"
            )
        for i in range(n_src):
            net.add_link(srcs[i], dsts[boundary(i, n_src)])
    return net

"""The baseline network of Wu and Feng.

The baseline is the canonical representative of the topological
equivalence class containing the Omega, flip, cube, and delta networks
(Wu & Feng, cited as [46]).  It recurses: a first stage of 2x2 boxes
followed by an inverse shuffle that splits the wires into two halves,
each wired as a half-size baseline.
"""

from __future__ import annotations

from repro.networks.permutations import blockwise, identity, inverse_shuffle, log2_exact
from repro.networks.topology import MultistageNetwork, assemble

__all__ = ["baseline", "baseline_boundaries"]


def baseline_boundaries(n: int):
    """The ``n + 1`` boundary permutations of an ``2^n``-port baseline.

    Boundary 0 is straight wiring into the first stage; boundary ``k``
    (``1 <= k < n``) applies the inverse shuffle independently within
    blocks of ``2^(n-k+1)`` wires; the final boundary is straight.
    Shared with the Beneš construction, which mirrors them.
    """
    bounds = [identity]
    for k in range(1, n):
        bounds.append(blockwise(inverse_shuffle, 1 << (n - k + 1)))
    bounds.append(identity)
    return bounds


def baseline(n_ports: int) -> MultistageNetwork:
    """An ``n_ports x n_ports`` baseline network of 2x2 boxes."""
    n = log2_exact(n_ports)
    shapes = [[(2, 2)] * (n_ports // 2) for _ in range(n)]
    return assemble(f"baseline-{n_ports}", n_ports, n_ports, shapes, baseline_boundaries(n))

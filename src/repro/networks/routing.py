"""Address-mapped (destination-tag) routing — the conventional baseline.

The paper contrasts the RSIN with *"conventional networks with address
mapping"*, where a request enters the network already tagged with a
resource address and is routed bit by bit.  The heuristic schedulers
in :mod:`repro.core.heuristic` use this router; the blocking-
probability benchmark measures how much worse it is than the optimal
flow-based mapping (~20% vs <5% in the paper).

The router is topology-independent: for each box output port we
precompute (and cache per network) the set of resources reachable
through it, then walk stage by stage choosing a port that leads to the
target.  On unique-path networks this reproduces classic
destination-tag routing exactly; on multi-path networks (Beneš, Clos,
extra-stage) the first free qualifying port is taken.
"""

from __future__ import annotations

from typing import Iterator

from repro.networks.topology import Link, MultistageNetwork, PortRef

__all__ = ["destination_tag_path", "reachable_resources", "clear_reachability_cache"]

def clear_reachability_cache(net: MultistageNetwork) -> None:
    """Drop a network's memoized reachability table (mostly for tests)."""
    net.__dict__.pop("_reach_table", None)


def _reach_table(net: MultistageNetwork) -> dict[int, frozenset[int]]:
    """Link index → set of resources structurally reachable through it.

    Memoized on the network instance: reachability depends only on the
    wiring, never on occupancy, and wiring is fixed after assembly.
    """
    cached = net.__dict__.get("_reach_table")
    if cached is not None:
        return cached
    table: dict[int, frozenset[int]] = {}

    def walk(link: Link) -> frozenset[int]:
        got = table.get(link.index)
        if got is not None:
            return got
        if link.dst.kind == "res":
            result = frozenset({link.dst.box})
        else:
            stage, box_idx = link.dst.stage, link.dst.box
            box = net.box(stage, box_idx)
            acc: set[int] = set()
            for port in range(box.n_out):
                nxt = net.link_from(PortRef.box_out(stage, box_idx, port))
                if nxt is not None:
                    acc |= walk(nxt)
            result = frozenset(acc)
        table[link.index] = result
        return result

    for p in range(net.n_processors):
        walk(net.processor_link(p))
    net.__dict__["_reach_table"] = table
    return table


def reachable_resources(net: MultistageNetwork, p: int) -> frozenset[int]:
    """Resources structurally reachable from processor ``p``.

    Ignores occupancy — this is the full-access check (every builder
    in this package produces networks where it equals all resources).
    """
    return _reach_table(net)[net.processor_link(p).index]


def _free_options(net: MultistageNetwork, link: Link) -> Iterator[Link]:
    """Free onward links after ``link``, respecting switch and fault state."""
    dst = link.dst
    if dst.kind != "box_in":
        return
    box = net.box(dst.stage, dst.box)
    if box.failed or not box.input_free(dst.port):
        return
    for port in range(box.n_out):
        if not box.output_free(port):
            continue
        nxt = net.link_from(PortRef.box_out(dst.stage, dst.box, port))
        if nxt is not None and not nxt.occupied and not nxt.failed:
            yield nxt


def destination_tag_path(net: MultistageNetwork, p: int, r: int) -> list[Link] | None:
    """Route processor ``p`` toward resource ``r`` greedily.

    At each box, follow a free output port whose reachable set
    contains ``r`` (backtracking over the alternatives on multi-path
    networks).  Failed links and switchboxes are treated like occupied
    ones: never taken.  Returns the link path, or ``None`` when the
    request is blocked — no rerouting of *other* circuits is
    attempted, which is precisely the deficiency the optimal scheduler
    fixes.
    """
    table = _reach_table(net)
    start = net.processor_link(p)
    if start.occupied or start.failed or r not in table[start.index]:
        return None
    stack: list[list[Link]] = [[start]]
    target = PortRef.resource(r)
    while stack:
        path = stack.pop()
        last = path[-1]
        if last.dst == target:
            return path
        for nxt in _free_options(net, last):
            if r in table[nxt.index]:
                stack.append(path + [nxt])
    return None

"""Three-stage Clos networks (cited as [9]).

``clos(m, n, r)`` follows Clos's classic parameterisation: ``r`` input
boxes of size ``n x m``, ``m`` middle boxes of size ``r x r``, and
``r`` output boxes of size ``m x n``; each adjacent pair of stages is
fully (bipartitely) connected.  ``m >= n`` gives rearrangeable
nonblocking, ``m >= 2n - 1`` strict-sense nonblocking — useful extreme
points for the blocking-probability experiments.
"""

from __future__ import annotations

from repro.networks.permutations import identity, transpose
from repro.networks.topology import MultistageNetwork, assemble

__all__ = ["clos"]


def clos(m: int, n: int, r: int) -> MultistageNetwork:
    """A 3-stage Clos network with ``r*n`` processors and resources.

    Parameters
    ----------
    m:
        Number of middle-stage boxes (= outputs per input box).
    n:
        Ports per edge box on the outside.
    r:
        Number of input (and output) boxes.
    """
    if min(m, n, r) < 1:
        raise ValueError(f"clos parameters must be positive, got m={m}, n={n}, r={r}")
    ports = n * r
    shapes = [
        [(n, m)] * r,      # input stage
        [(r, r)] * m,      # middle stage
        [(m, n)] * r,      # output stage
    ]
    boundaries = [
        identity,
        transpose(r, m),   # port j of input box i -> port i of middle box j
        transpose(m, r),   # port j of middle box i -> port i of output box j
        identity,
    ]
    return assemble(f"clos-{m}x{n}x{r}", ports, ports, shapes, boundaries)

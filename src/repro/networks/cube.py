"""Multistage cube-type networks: indirect binary n-cube and delta.

The paper quotes a *"2 percent"* blocking probability for an MRSIN
embedded in an 8x8 cube network, making this family the other half of
the SIM-BLOCK experiment.  Stage ``k`` of the indirect binary n-cube
pairs wires whose indices differ in bit ``k`` (LSB first); the delta
network uses the same butterfly wiring MSB-first, matching Patel's
bit-controlled routing order.
"""

from __future__ import annotations

from repro.networks.permutations import log2_exact
from repro.networks.topology import MultistageNetwork, assemble

__all__ = ["cube", "indirect_binary_cube", "delta"]


def _butterfly_boundary(k: int):
    """Boundary permutation pairing wires that differ in bit ``k``.

    Wire ``i`` lands on input port ``2*b + bit_k(i)`` of box ``b``,
    where ``b`` is ``i`` with bit ``k`` deleted — so each box sees a
    pair of wires differing exactly in bit ``k``.
    """
    def wired(i: int, size: int) -> int:
        log2_exact(size)
        low = i & ((1 << k) - 1)
        high = i >> (k + 1)
        bit = (i >> k) & 1
        box = (high << k) | low
        return 2 * box + bit

    return wired


def _unbutterfly_boundary(k: int):
    """Inverse of :func:`_butterfly_boundary`: box-port back to wire."""
    def wired(i: int, size: int) -> int:
        log2_exact(size)
        box, bit = divmod(i, 2)
        low = box & ((1 << k) - 1)
        high = box >> k
        return (high << (k + 1)) | (bit << k) | low

    return wired


def indirect_binary_cube(n_ports: int) -> MultistageNetwork:
    """Pease's indirect binary n-cube: bits resolved LSB first.

    Stage ``k``'s boxes decide bit ``k`` of the output address.  The
    boundary *before* stage ``k`` groups wires differing in bit ``k``;
    the boundary after it restores wire order.
    """
    n = log2_exact(n_ports)
    shapes = [[(2, 2)] * (n_ports // 2) for _ in range(n)]
    boundaries = [_butterfly_boundary(0)]
    for k in range(1, n):
        # Undo stage k-1's grouping, then group for bit k, fused into
        # one permutation.
        prev = _unbutterfly_boundary(k - 1)
        nxt = _butterfly_boundary(k)
        boundaries.append(lambda i, size, p=prev, q=nxt: q(p(i, size), size))
    boundaries.append(_unbutterfly_boundary(n - 1))
    return assemble(f"cube-{n_ports}", n_ports, n_ports, shapes, boundaries)


def cube(n_ports: int) -> MultistageNetwork:
    """Alias for :func:`indirect_binary_cube` (Siegel's multistage cube)."""
    return indirect_binary_cube(n_ports)


def delta(n_ports: int) -> MultistageNetwork:
    """A ``2^n`` delta network: butterfly wiring resolved MSB first."""
    n = log2_exact(n_ports)
    shapes = [[(2, 2)] * (n_ports // 2) for _ in range(n)]
    boundaries = [_butterfly_boundary(n - 1)]
    for k in range(n - 2, -1, -1):
        prev = _unbutterfly_boundary(k + 1)
        nxt = _butterfly_boundary(k)
        boundaries.append(lambda i, size, p=prev, q=nxt: q(p(i, size), size))
    boundaries.append(_unbutterfly_boundary(0))
    return assemble(f"delta-{n_ports}", n_ports, n_ports, shapes, boundaries)

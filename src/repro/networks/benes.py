"""The Beneš rearrangeable network (cited as [5]).

``2 log2 N - 1`` stages: a baseline front half and its mirror image
sharing the middle stage.  Every permutation is realisable, and every
processor–resource pair has ``2^(log2 N - 1)`` distinct paths — the
multi-path regime where the paper notes that even arbitrary mappings
are rarely blocked.
"""

from __future__ import annotations

from repro.networks.permutations import blockwise, identity, log2_exact, perfect_shuffle
from repro.networks.topology import MultistageNetwork, assemble

__all__ = ["benes"]


def benes(n_ports: int) -> MultistageNetwork:
    """An ``n_ports x n_ports`` Beneš network of 2x2 boxes.

    Built recursively through boundary permutations: the front
    boundaries split wires into halves (blockwise inverse shuffle via
    the baseline recursion) and the back boundaries merge them again
    (blockwise perfect shuffle).  ``n_ports == 2`` degenerates to a
    single box.
    """
    n = log2_exact(n_ports)
    if n == 1:
        return assemble("benes-2", 2, 2, [[(2, 2)]], [identity, identity])
    n_stages = 2 * n - 1
    shapes = [[(2, 2)] * (n_ports // 2) for _ in range(n_stages)]
    boundaries = [identity]
    # Front half: baseline-style splits into ever-smaller blocks.
    from repro.networks.permutations import inverse_shuffle

    for k in range(1, n):
        boundaries.append(blockwise(inverse_shuffle, 1 << (n - k + 1)))
    # Back half: mirrored merges in the reverse block order.
    for k in range(n - 1, 0, -1):
        boundaries.append(blockwise(perfect_shuffle, 1 << (n - k + 1)))
    boundaries.append(identity)
    return assemble(f"benes-{n_ports}", n_ports, n_ports, shapes, boundaries)

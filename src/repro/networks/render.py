"""ASCII rendering of multistage networks and their circuit state.

A development and teaching aid: draws the network stage by stage —
processors, switchboxes with their current connection state, resources
— marking occupied links.  Used by the examples to visualise what the
scheduler did; no other module depends on it.

Output for a 4x4 Omega with one circuit::

    p0 ==> [0,0: 0-0   ] ==> [1,0: 0-0   ] ==> r0   *busy*
    p1 --> [     .     ] --> [     .     ] --> r1
    ...

Legend: ``==>`` occupied link, ``-->`` free link; inside a box,
``a-b`` is a connected input→output port pair, ``.`` no connections.
"""

from __future__ import annotations

from repro.networks.switchbox import Switchbox
from repro.networks.topology import Link, MultistageNetwork, PortRef

__all__ = ["render_network", "render_circuits"]


def _link_glyph(link: Link | None) -> str:
    if link is None:
        return "   "
    return "==>" if link.occupied else "-->"


def _box_glyph(box: Switchbox) -> str:
    conns = box.connections
    if not conns:
        body = "."
    else:
        body = " ".join(f"{i}-{o}" for i, o in sorted(conns.items()))
    label = f"{box.stage},{box.index}"
    return f"[{label}: {body:^7s}]"


def render_network(net: MultistageNetwork, busy_resources: set[int] | None = None) -> str:
    """Render the network as one text row per wire of the first rank.

    Each row follows processor ``p`` through the box its link enters;
    boxes are printed once per row they appear on (a 2x2 box spans two
    rows and is shown on both, which keeps rows independent and
    readable).
    """
    busy_resources = busy_resources or set()
    rows: list[str] = []
    for p in range(net.n_processors):
        parts = [f"p{p:<2d}"]
        link: Link | None = net.processor_link(p)
        while link is not None:
            parts.append(_link_glyph(link))
            dst = link.dst
            if dst.kind == "res":
                suffix = "  *busy*" if dst.box in busy_resources else ""
                parts.append(f"r{dst.box}{suffix}")
                link = None
            else:
                box = net.box(dst.stage, dst.box)
                parts.append(_box_glyph(box))
                # Follow the wire out of this box along the port the
                # current input is connected to, or port-aligned
                # straight-through for display when unconnected.
                out_port = box.output_for(dst.port)
                if out_port is None:
                    out_port = min(dst.port, box.n_out - 1)
                link = net.link_from(PortRef.box_out(dst.stage, dst.box, out_port))
        rows.append(" ".join(parts))
    return "\n".join(rows)


def render_circuits(net: MultistageNetwork) -> str:
    """One line per established circuit: ``p -> [link ids] -> r``."""
    if not net.circuits:
        return "(no circuits established)"
    lines = []
    for c in net.circuits:
        hops = " ".join(str(l.index) for l in c.links)
        lines.append(f"p{c.processor} -> links[{hops}] -> r{c.resource}")
    return "\n".join(lines)

"""Omega networks (Lawrie) and extra-stage variants.

The Omega network is the paper's running example: Fig. 2's 8x8 MRSIN
and Fig. 9's distributed architecture are both embedded in it.  An
``N x N`` Omega has ``log2 N`` stages of ``N/2`` two-by-two boxes, each
stage preceded by a perfect shuffle of the wires.
"""

from __future__ import annotations

from repro.networks.permutations import identity, inverse_shuffle, log2_exact, perfect_shuffle
from repro.networks.topology import MultistageNetwork, assemble

__all__ = ["omega", "flip", "extra_stage_omega"]


def omega(n_ports: int) -> MultistageNetwork:
    """An ``n_ports x n_ports`` Omega network of 2x2 switchboxes.

    ``n_ports`` must be a power of two.  Unique path between every
    processor/resource pair; blocking (two circuits may contend for a
    link), which is exactly why the paper's optimal scheduling
    matters.
    """
    return extra_stage_omega(n_ports, extra_stages=0)


def extra_stage_omega(n_ports: int, extra_stages: int) -> MultistageNetwork:
    """Omega with ``extra_stages`` additional shuffle-connected stages.

    Each extra stage multiplies the number of alternative paths per
    processor–resource pair by 2, reproducing the paper's remark that
    *"if extra stages are provided, there will be more paths available
    [and] resources may be fully allocated in most cases even when an
    arbitrary resource-request mapping is used."*
    """
    n = log2_exact(n_ports)
    if extra_stages < 0:
        raise ValueError(f"extra_stages must be >= 0, got {extra_stages}")
    stages = n + extra_stages
    shapes = [[(2, 2)] * (n_ports // 2) for _ in range(stages)]
    boundaries = [perfect_shuffle] * stages + [identity]
    name = f"omega-{n_ports}" if not extra_stages else f"omega-{n_ports}+{extra_stages}"
    return assemble(name, n_ports, n_ports, shapes, boundaries)


def flip(n_ports: int) -> MultistageNetwork:
    """The STARAN Flip network: the Omega wired with inverse shuffles.

    Topologically the Omega's mirror image (Wu–Feng equivalence
    class); included so experiments can check the scheduler is
    genuinely topology-independent.
    """
    n = log2_exact(n_ports)
    shapes = [[(2, 2)] * (n_ports // 2) for _ in range(n)]
    boundaries = [identity] + [inverse_shuffle] * (n - 1) + [inverse_shuffle]
    return assemble(f"flip-{n_ports}", n_ports, n_ports, shapes, boundaries)

"""Interstage wiring permutations for the classic multistage networks.

A multistage network's structure is determined by the permutation each
stage boundary applies to its wires.  All functions here map a wire
index ``i`` in ``[0, size)`` to its destination index; ``size`` must be
a power of two except for :func:`identity` and the Clos transposes.
"""

from __future__ import annotations

__all__ = [
    "identity",
    "perfect_shuffle",
    "inverse_shuffle",
    "butterfly",
    "bit_reversal",
    "blockwise",
    "transpose",
    "log2_exact",
]


def log2_exact(size: int) -> int:
    """``log2(size)`` for exact powers of two; raises otherwise."""
    if size <= 0 or size & (size - 1):
        raise ValueError(f"{size} is not a positive power of two")
    return size.bit_length() - 1


def identity(i: int, size: int) -> int:
    """The identity wiring (straight wires)."""
    if not 0 <= i < size:
        raise ValueError(f"wire {i} outside [0, {size})")
    return i


def perfect_shuffle(i: int, size: int) -> int:
    """Stone's perfect shuffle: rotate the index bits left by one.

    ``sigma(i) = 2i mod (N-1)`` for ``0 < i < N-1`` — interleaves the
    two halves of a card deck.  The Omega network applies this before
    every stage.
    """
    n = log2_exact(size)
    if not 0 <= i < size:
        raise ValueError(f"wire {i} outside [0, {size})")
    return ((i << 1) | (i >> (n - 1))) & (size - 1)


def inverse_shuffle(i: int, size: int) -> int:
    """The inverse (un)shuffle: rotate the index bits right by one."""
    n = log2_exact(size)
    if not 0 <= i < size:
        raise ValueError(f"wire {i} outside [0, {size})")
    return (i >> 1) | ((i & 1) << (n - 1))


def butterfly(i: int, size: int, k: int) -> int:
    """The k-th butterfly: exchange bit ``k`` with bit 0.

    ``butterfly(i, size, k)`` pairs wires whose indices differ in bit
    ``k`` into adjacent box ports — the wiring of the indirect binary
    n-cube / multistage cube networks.
    """
    n = log2_exact(size)
    if not 0 <= k < n:
        raise ValueError(f"bit {k} outside [0, {n})")
    if not 0 <= i < size:
        raise ValueError(f"wire {i} outside [0, {size})")
    if k == 0:
        return i
    b0 = i & 1
    bk = (i >> k) & 1
    out = i & ~((1 << k) | 1)
    return out | (b0 << k) | bk


def bit_reversal(i: int, size: int) -> int:
    """Reverse the index bits (the FFT permutation)."""
    n = log2_exact(size)
    if not 0 <= i < size:
        raise ValueError(f"wire {i} outside [0, {size})")
    out = 0
    for b in range(n):
        out |= ((i >> b) & 1) << (n - 1 - b)
    return out


def blockwise(perm, block: int):
    """Apply ``perm`` independently within consecutive blocks.

    Returns a wiring function ``f(i, size)`` that splits the ``size``
    wires into blocks of ``block`` wires and applies
    ``perm(offset, block)`` inside each — how the baseline and Beneš
    networks recurse into halves.
    """
    def wired(i: int, size: int) -> int:
        if size % block:
            raise ValueError(f"size {size} not a multiple of block {block}")
        base = (i // block) * block
        return base + perm(i - base, block)

    return wired


def transpose(rows: int, cols: int):
    """Matrix-transpose wiring for the Clos network's full bipartite stages.

    Wire ``i = r * cols + c`` (port ``c`` of box ``r``) is sent to
    ``c * rows + r`` (port ``r`` of box ``c``): every box of one stage
    gets exactly one link to every box of the next.
    """
    def wired(i: int, size: int) -> int:
        if size != rows * cols:
            raise ValueError(f"size {size} != {rows}x{cols}")
        r, c = divmod(i, cols)
        return c * rows + r

    return wired

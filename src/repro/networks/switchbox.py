"""Non-broadcast crossbar switchboxes (the paper's Section III-B model).

*"A switchbox in an MRSIN is a crossbar switch without broadcast
connections ... an input link is connected to at most one output link
and vice versa."*  A switch setting is therefore a partial matching
between input and output ports — exactly the property Theorem 1 uses
to identify switch settings with unit-capacity flow assignments.

For the common 2x2 case the two complete settings are named
``straight`` and ``exchange`` as in the paper's Fig. 2 discussion.
"""

from __future__ import annotations

from itertools import permutations as _permutations
from typing import Iterator

__all__ = ["Switchbox"]


class Switchbox:
    """An ``n_in`` × ``n_out`` crossbar without broadcast.

    The connection state maps input ports to output ports injectively.
    Mutation goes through :meth:`connect` / :meth:`disconnect` so the
    non-broadcast invariant can never be violated.
    """

    def __init__(self, stage: int, index: int, n_in: int, n_out: int) -> None:
        if n_in < 1 or n_out < 1:
            raise ValueError(f"switchbox needs at least one port each way, got {n_in}x{n_out}")
        self.stage = stage
        self.index = index
        self.n_in = n_in
        self.n_out = n_out
        # A failed box routes nothing until repaired; its existing
        # connections are kept so severed circuits can still be torn
        # down cleanly (disconnect works on a failed box).
        self.failed = False
        self._in_to_out: dict[int, int] = {}
        self._out_to_in: dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def connections(self) -> dict[int, int]:
        """Current setting as an input→output port map (copy)."""
        return dict(self._in_to_out)

    @property
    def n_connected(self) -> int:
        """Number of established input→output connections."""
        return len(self._in_to_out)

    def input_free(self, port: int) -> bool:
        """Whether input ``port`` is unconnected."""
        self._check_port(port, self.n_in, "input")
        return port not in self._in_to_out

    def output_free(self, port: int) -> bool:
        """Whether output ``port`` is unconnected."""
        self._check_port(port, self.n_out, "output")
        return port not in self._out_to_in

    def ports_free(self, in_port: int, out_port: int) -> bool:
        """Whether both ``in_port`` and ``out_port`` are unconnected.

        One bounds-checked call instead of an :meth:`input_free` /
        :meth:`output_free` pair — the circuit-establishment hot path
        asks this for every hop of every path in a batch.
        """
        self._check_port(in_port, self.n_in, "input")
        self._check_port(out_port, self.n_out, "output")
        return in_port not in self._in_to_out and out_port not in self._out_to_in

    def output_for(self, in_port: int) -> int | None:
        """Output port connected to ``in_port`` (None if free)."""
        self._check_port(in_port, self.n_in, "input")
        return self._in_to_out.get(in_port)

    def input_for(self, out_port: int) -> int | None:
        """Input port connected to ``out_port`` (None if free)."""
        self._check_port(out_port, self.n_out, "output")
        return self._out_to_in.get(out_port)

    # ------------------------------------------------------------------
    def connect(self, in_port: int, out_port: int) -> None:
        """Establish ``in_port -> out_port``; both must be free."""
        self._check_port(in_port, self.n_in, "input")
        self._check_port(out_port, self.n_out, "output")
        if in_port in self._in_to_out:
            raise ValueError(f"{self}: input {in_port} already connected (non-broadcast)")
        if out_port in self._out_to_in:
            raise ValueError(f"{self}: output {out_port} already connected (non-broadcast)")
        self._in_to_out[in_port] = out_port
        self._out_to_in[out_port] = in_port

    def disconnect(self, in_port: int) -> None:
        """Tear down the connection starting at ``in_port``."""
        self._check_port(in_port, self.n_in, "input")
        out_port = self._in_to_out.pop(in_port, None)
        if out_port is None:
            raise ValueError(f"{self}: input {in_port} is not connected")
        del self._out_to_in[out_port]

    def reset(self) -> None:
        """Clear every connection."""
        self._in_to_out.clear()
        self._out_to_in.clear()

    # ------------------------------------------------------------------
    @property
    def is_straight(self) -> bool:
        """2x2 helper: both wires pass straight through."""
        return (self.n_in, self.n_out) == (2, 2) and self._in_to_out == {0: 0, 1: 1}

    @property
    def is_exchange(self) -> bool:
        """2x2 helper: the wires cross."""
        return (self.n_in, self.n_out) == (2, 2) and self._in_to_out == {0: 1, 1: 0}

    def legal_settings(self) -> Iterator[dict[int, int]]:
        """Enumerate every *complete* non-broadcast setting.

        A complete setting matches ``min(n_in, n_out)`` ports; partial
        settings are prefixes of complete ones, so enumerating complete
        matchings suffices for the Theorem 1 equivalence tests.
        """
        ins = range(self.n_in)
        outs = range(self.n_out)
        if self.n_in <= self.n_out:
            for perm in _permutations(outs, self.n_in):
                yield dict(zip(ins, perm))
        else:
            for perm in _permutations(ins, self.n_out):
                yield {i: o for o, i in zip(outs, perm)}

    # ------------------------------------------------------------------
    @staticmethod
    def _check_port(port: int, limit: int, kind: str) -> None:
        if not 0 <= port < limit:
            raise ValueError(f"{kind} port {port} outside [0, {limit})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switchbox(stage={self.stage}, index={self.index}, {self.n_in}x{self.n_out})"

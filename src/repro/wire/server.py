"""The TCP front-end: :class:`WireServer` serves an allocation service.

One asyncio server, one task per connection, one task per in-flight
ACQUIRE — the batching/ticking stays entirely inside
:class:`~repro.service.server.AllocationService`; this layer only
translates frames to service calls and leases back to frames.

Lease custody is **connection-scoped**: every lease granted over a
connection is tracked against it, and a disconnect (clean or not)
auto-releases whatever the client still holds — a crashed client can
never leak resources.  A fault that revokes a held lease is *pushed*
to the holder as a ``REVOKED`` frame (request id
:data:`~repro.wire.protocol.PUSH_ID`), mirroring
``lease.revocation`` for in-process holders.

Shutdown is graceful: :meth:`WireServer.drain` rejects new ACQUIREs
(``REJECTED`` with reason ``"draining"``) while in-flight ones keep
ticking to completion; :meth:`WireServer.close` then tears down
connections, releasing any leases still held.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.core.requests import Request
from repro.service.server import (
    AllocationError,
    AllocationRejected,
    AllocationService,
    AllocationTimeout,
    Lease,
    LeaseRevoked,
    ServiceClosed,
)
from repro.wire.protocol import (
    PUSH_ID,
    REQUEST_KINDS,
    Frame,
    ProtocolError,
    decode,
    encode,
    make_error,
    make_lease,
    make_ok,
    make_pong,
    make_rejected,
    make_revoked,
    make_timeout,
)

__all__ = ["WireServer"]


@dataclass
class _Connection:
    """Per-connection state: stream ends, lease custody, task registry."""

    conn_id: int
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    leases: dict[int, Lease] = field(default_factory=dict)
    watchers: dict[int, asyncio.Task[None]] = field(default_factory=dict)
    tasks: set[asyncio.Task[None]] = field(default_factory=set)
    revoked_ids: set[int] = field(default_factory=set)
    closed: bool = False


class WireServer:
    """Serve an :class:`AllocationService` over newline-framed TCP.

    Parameters
    ----------
    service:
        The service to front.  The caller owns its lifecycle (start it
        before :meth:`start`, close it after :meth:`close`); the wire
        layer never ticks it.
    host, port:
        Bind address; ``port=0`` picks a free port (see
        :attr:`address` after :meth:`start`).
    max_connections:
        Guard on concurrent connections; excess connections get one
        ``ERROR`` frame and are closed before reading anything.
    """

    def __init__(
        self,
        service: AllocationService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 64,
    ) -> None:
        if max_connections < 1:
            raise ValueError(f"max_connections must be >= 1, got {max_connections}")
        self.service = service
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self._server: asyncio.AbstractServer | None = None
        self._connections: dict[int, _Connection] = {}
        self._conn_ids = 0
        self._draining = False
        self._closed = False
        # Observability counters (the soak test's invariants).
        self.protocol_errors = 0
        self.connections_accepted = 0
        self.connections_refused = 0
        self.frames_received = 0
        self.leases_granted = 0
        self.leases_auto_released = 0
        self.revocations_pushed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self._closed:
            raise RuntimeError("WireServer is closed")
        if self._server is not None:
            raise RuntimeError("WireServer already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._server is None:
            raise RuntimeError("WireServer not started")
        sockets = self._server.sockets
        if not sockets:
            raise RuntimeError("WireServer has no listening socket")
        name = sockets[0].getsockname()
        return (str(name[0]), int(name[1]))

    @property
    def open_connections(self) -> int:
        """Connections currently being served."""
        return len(self._connections)

    @property
    def draining(self) -> bool:
        """Whether new ACQUIREs are being rejected."""
        return self._draining

    def pending_acquires(self) -> int:
        """ACQUIRE handler tasks not yet finished (drain's wait set)."""
        return sum(
            sum(1 for t in conn.tasks if not t.done())
            for conn in self._connections.values()
        )

    async def drain(self) -> None:
        """Stop admitting new ACQUIREs; wait out the in-flight ones.

        Connections stay open and RELEASE/END_TX/PING/STATS keep
        working — clients get to finish and tear down their own leases.
        The service must keep ticking while this awaits, or in-flight
        acquires can only end by deadline.
        """
        self._draining = True
        pending = [
            task
            for conn in self._connections.values()
            for task in list(conn.tasks)
        ]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def close(self) -> None:
        """Drain, then drop every connection (releasing held leases)."""
        if self._closed:
            return
        await self.drain()
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            await self._teardown(conn)

    async def __aenter__(self) -> "WireServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._closed or len(self._connections) >= self.max_connections:
            self.connections_refused += 1
            try:
                writer.write(encode(make_error(
                    PUSH_ID,
                    f"server refusing connections "
                    f"({'closed' if self._closed else 'at max_connections'})",
                )))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        self._conn_ids += 1
        conn = _Connection(conn_id=self._conn_ids, reader=reader, writer=writer)
        self._connections[conn.conn_id] = conn
        self.connections_accepted += 1
        try:
            await self._serve_connection(conn)
        finally:
            await self._teardown(conn)

    async def _serve_connection(self, conn: _Connection) -> None:
        while not conn.closed:
            try:
                line = await conn.reader.readline()
            except (ConnectionError, OSError):
                return
            if not line:
                return  # client closed its end
            if not line.strip():
                continue
            self.frames_received += 1
            try:
                frame = decode(line)
            except ProtocolError as exc:
                self.protocol_errors += 1
                await self._send(conn, make_error(PUSH_ID, f"bad frame: {exc}"))
                continue
            if frame.kind not in REQUEST_KINDS:
                self.protocol_errors += 1
                await self._send(conn, make_error(
                    frame.request_id,
                    f"expected a request frame, got {frame.kind}",
                ))
                continue
            await self._dispatch(conn, frame)

    async def _dispatch(self, conn: _Connection, frame: Frame) -> None:
        if frame.kind == "ACQUIRE":
            task = asyncio.get_running_loop().create_task(
                self._handle_acquire(conn, frame)
            )
            conn.tasks.add(task)
            task.add_done_callback(conn.tasks.discard)
        elif frame.kind == "RELEASE":
            await self._handle_release(conn, frame, end_tx=False)
        elif frame.kind == "END_TX":
            await self._handle_release(conn, frame, end_tx=True)
        elif frame.kind == "PING":
            await self._send(conn, make_pong(frame.request_id))
        elif frame.kind == "STATS":
            snapshot = self.service.snapshot()
            snapshot["wire"] = self.snapshot()
            await self._send(conn, make_ok(frame.request_id, stats=snapshot))
        else:  # pragma: no cover - REQUEST_KINDS is closed
            await self._send(conn, make_error(
                frame.request_id, f"unhandled request kind {frame.kind}"
            ))

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    async def _handle_acquire(self, conn: _Connection, frame: Frame) -> None:
        if self._draining:
            await self._send(conn, make_rejected(frame.request_id, "draining"))
            return
        processor = frame.get("processor")
        priority = frame.get("priority", 1)
        resource_type = frame.get("resource_type", "default")
        timeout = frame.get("timeout")
        if isinstance(processor, bool) or not isinstance(processor, int):
            await self._send(conn, make_error(
                frame.request_id, f"ACQUIRE needs an int processor, got {processor!r}"
            ))
            return
        if isinstance(priority, bool) or not isinstance(priority, int):
            await self._send(conn, make_error(
                frame.request_id, f"priority must be an int, got {priority!r}"
            ))
            return
        if timeout is not None and (
            isinstance(timeout, bool) or not isinstance(timeout, (int, float))
        ):
            await self._send(conn, make_error(
                frame.request_id, f"timeout must be a number, got {timeout!r}"
            ))
            return
        if isinstance(resource_type, bool) or not isinstance(resource_type, (str, int)):
            await self._send(conn, make_error(
                frame.request_id,
                f"resource_type must be a string or int, got {resource_type!r}",
            ))
            return
        try:
            request = Request(processor, resource_type=resource_type, priority=priority)
        except ValueError as exc:
            await self._send(conn, make_error(frame.request_id, str(exc)))
            return
        try:
            lease = await self.service.acquire(
                request, timeout=None if timeout is None else float(timeout)
            )
        except AllocationRejected as exc:
            await self._send(conn, make_rejected(frame.request_id, str(exc)))
        except AllocationTimeout as exc:
            await self._send(conn, make_timeout(frame.request_id, str(exc)))
        except (ServiceClosed, ValueError) as exc:
            # ServiceFaulted subclasses ServiceClosed; both mean "this
            # server cannot grant anything anymore".
            await self._send(conn, make_error(frame.request_id, str(exc)))
        else:
            if conn.closed:
                # The client vanished while queued; the lease has no
                # owner, so give it straight back.  No reply is owed:
                # the transport is gone, so there is no one to
                # correlate a frame to (regression-tested by
                # test_grant_after_disconnect_is_auto_released).
                self._release_quietly(lease)
                self.leases_auto_released += 1
                return  # repro: noqa R008 -- connection closed: nobody left to reply to; the lease is auto-released instead
            conn.leases[lease.lease_id] = lease
            self.leases_granted += 1
            watcher = asyncio.get_running_loop().create_task(
                self._watch_revocation(conn, lease)
            )
            conn.watchers[lease.lease_id] = watcher
            await self._send(conn, make_lease(
                frame.request_id, lease.lease_id, lease.resource, lease.waited
            ))

    async def _handle_release(
        self, conn: _Connection, frame: Frame, *, end_tx: bool
    ) -> None:
        lease_id = frame.get("lease_id")
        if isinstance(lease_id, bool) or not isinstance(lease_id, int):
            await self._send(conn, make_error(
                frame.request_id, f"need an int lease_id, got {lease_id!r}"
            ))
            return
        if lease_id in conn.revoked_ids:
            conn.revoked_ids.discard(lease_id)
            await self._send(conn, make_revoked(
                frame.request_id, lease_id, "lease was revoked by a fault"
            ))
            return
        lease = conn.leases.get(lease_id)
        if lease is None:
            await self._send(conn, make_error(
                frame.request_id,
                f"unknown lease {lease_id} (not granted on this connection)",
            ))
            return
        try:
            if end_tx:
                self.service.end_transmission(lease)
            else:
                self.service.release(lease)
        except LeaseRevoked:
            self._forget_lease(conn, lease_id)
            await self._send(conn, make_revoked(
                frame.request_id, lease_id, "lease was revoked by a fault"
            ))
        except (AllocationError, ServiceClosed) as exc:
            await self._send(conn, make_error(frame.request_id, str(exc)))
        else:
            if not end_tx:
                self._forget_lease(conn, lease_id)
            await self._send(conn, make_ok(frame.request_id, lease_id=lease_id))

    async def _watch_revocation(self, conn: _Connection, lease: Lease) -> None:
        """Push a REVOKED frame when a fault severs ``lease``."""
        await lease.revocation.wait()
        if conn.closed or lease.lease_id not in conn.leases:
            return
        del conn.leases[lease.lease_id]
        conn.watchers.pop(lease.lease_id, None)
        conn.revoked_ids.add(lease.lease_id)
        self.revocations_pushed += 1
        await self._send(conn, make_revoked(
            PUSH_ID, lease.lease_id, "a fault severed this allocation"
        ))

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _forget_lease(self, conn: _Connection, lease_id: int) -> None:
        conn.leases.pop(lease_id, None)
        watcher = conn.watchers.pop(lease_id, None)
        if watcher is not None and not watcher.done():
            watcher.cancel()

    def _release_quietly(self, lease: Lease) -> None:
        """Release a lease nobody owns anymore; swallow dead-service errors."""
        try:
            if lease.active and not lease.revoked:
                self.service.release(lease)
        except (AllocationError, ServiceClosed):
            pass

    async def _send(self, conn: _Connection, frame: Frame) -> None:
        if conn.closed:
            return
        try:
            # One write() per frame: StreamWriter.write is synchronous,
            # so concurrently-sending tasks never interleave lines.
            conn.writer.write(encode(frame))
            await conn.writer.drain()
        except (ConnectionError, OSError):
            conn.closed = True

    async def _teardown(self, conn: _Connection) -> None:
        """Disconnect cleanup: cancel tasks, auto-release held leases."""
        if conn.conn_id not in self._connections:
            return
        del self._connections[conn.conn_id]
        conn.closed = True
        doomed = [t for t in [*conn.tasks, *conn.watchers.values()] if not t.done()]
        for task in doomed:
            task.cancel()
        if doomed:
            await asyncio.gather(*doomed, return_exceptions=True)
        conn.tasks.clear()
        conn.watchers.clear()
        for lease in conn.leases.values():
            self._release_quietly(lease)
            self.leases_auto_released += 1
        conn.leases.clear()
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def snapshot(self) -> dict[str, Any]:
        """Wire-layer gauges and counters (JSON-safe)."""
        return {
            "open_connections": self.open_connections,
            "connections_accepted": self.connections_accepted,
            "connections_refused": self.connections_refused,
            "frames_received": self.frames_received,
            "protocol_errors": self.protocol_errors,
            "leases_granted": self.leases_granted,
            "leases_auto_released": self.leases_auto_released,
            "revocations_pushed": self.revocations_pushed,
            "draining": self._draining,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("draining" if self._draining else "open")
        return f"WireServer({state}, connections={self.open_connections})"

"""The TCP client: pipelined requests, timeouts, seeded reconnect backoff.

:class:`WireClient` speaks the :mod:`repro.wire.protocol` frames over
one connection.  Requests **pipeline**: any number of coroutines may
await :meth:`acquire`/:meth:`release`/... concurrently; a single
background reader task correlates replies to waiters by request id, so
one connection carries a whole load generator's traffic.

Failure surface:

- ``REJECTED`` / ``TIMEOUT`` / ``REVOKED`` / ``ERROR`` replies raise
  :class:`WireRejected` / :class:`WireTimeout` /
  :class:`WireLeaseRevoked` / :class:`WireRemoteError`;
- a reply not arriving within ``request_timeout`` raises
  :class:`WireTimeout`; if the server grants the lease *after* the
  client gave up, the reader answers the stale LEASE with an immediate
  RELEASE so the resource is not stranded until disconnect
  (``stale_replies`` counts every such late reply);
- a dropped connection fails every pending waiter with
  :class:`WireConnectionError` and marks held leases revoked locally
  (the server has already auto-released them).

:meth:`connect` retries with exponential backoff and **deterministic
jitter** (:mod:`repro.util.rng` discipline): the same seed reproduces
the same retry schedule.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.util.rng import make_rng
from repro.wire.protocol import (
    PUSH_ID,
    Frame,
    ProtocolError,
    decode,
    encode,
    make_acquire,
    make_end_tx,
    make_ping,
    make_release,
    make_stats,
)

__all__ = [
    "RemoteLease",
    "WireClient",
    "WireConnectionError",
    "WireError",
    "WireLeaseRevoked",
    "WireRejected",
    "WireRemoteError",
    "WireTimeout",
]


class WireError(Exception):
    """Base class for client-visible wire failures."""


class WireConnectionError(WireError):
    """The connection could not be established or was lost mid-request."""


class WireRejected(WireError):
    """The server rejected the ACQUIRE (queue full, or draining)."""


class WireTimeout(WireError):
    """The request deadline expired (server-side or awaiting the reply)."""


class WireLeaseRevoked(WireError):
    """The lease was revoked by a fault before/while it was touched."""


class WireRemoteError(WireError):
    """The server answered with an ERROR frame."""


@dataclass
class RemoteLease:
    """Client-side view of one granted lease.

    ``revocation`` fires when the server pushes a REVOKED frame for
    this lease (or the connection is lost, which the server treats the
    same way: the lease is gone).
    """

    lease_id: int
    resource: int
    waited: float
    released: bool = False
    revoked: bool = False
    revocation: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def active(self) -> bool:
        """Granted and neither released nor revoked."""
        return not self.released and not self.revoked


class WireClient:
    """One pipelined protocol connection to a :class:`WireServer`.

    Parameters
    ----------
    host, port:
        The server address.
    request_timeout:
        Seconds to await each reply (``None`` = wait forever).  For
        ACQUIRE this also rides the frame as the server-side deadline
        unless the call overrides it.
    reconnect_attempts:
        Extra :meth:`connect` attempts after the first failure.
    backoff_base, backoff_max:
        Exponential backoff window between attempts; the delay is
        ``min(backoff_max, backoff_base * 2**k)`` scaled by a jitter
        factor in ``[0.5, 1.0)`` drawn from ``rng``.
    rng:
        Seed or generator for the jitter (deterministic retries).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        request_timeout: float | None = 30.0,
        reconnect_attempts: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError(f"request_timeout must be positive, got {request_timeout}")
        if reconnect_attempts < 0:
            raise ValueError(f"reconnect_attempts must be >= 0, got {reconnect_attempts}")
        if backoff_base <= 0:
            raise ValueError(f"backoff_base must be positive, got {backoff_base}")
        if backoff_max < backoff_base:
            raise ValueError(f"backoff_max {backoff_max} < backoff_base {backoff_base}")
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self._rng = make_rng(rng)
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task[None] | None = None
        self._pending: dict[int, asyncio.Future[Frame]] = {}
        self._leases: dict[int, RemoteLease] = {}
        self._ids = itertools.count(1)
        self.protocol_errors = 0
        #: Replies that arrived after their waiter gave up (timed out).
        self.stale_replies = 0
        #: Request ids of auto-RELEASEs sent for stale LEASE grants;
        #: their OK replies are expected and not themselves stale.
        self._auto_release_ids: set[int] = set()

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        """Whether a live connection is up."""
        return self._writer is not None

    async def connect(self) -> None:
        """Open the connection, retrying with seeded backoff."""
        if self.connected:
            return
        last_error: Exception | None = None
        for attempt in range(self.reconnect_attempts + 1):
            if attempt:
                delay = min(self.backoff_max, self.backoff_base * 2.0 ** (attempt - 1))
                delay *= 0.5 + 0.5 * float(self._rng.random())
                await asyncio.sleep(delay)
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
            except (ConnectionError, OSError) as exc:
                last_error = exc
                continue
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop()
            )
            return
        raise WireConnectionError(
            f"cannot connect to {self.host}:{self.port} after "
            f"{self.reconnect_attempts + 1} attempt(s): {last_error}"
        ) from last_error

    async def close(self) -> None:
        """Drop the connection; pending requests fail as connection-lost."""
        reader_task = self._reader_task
        self._reader_task = None
        if reader_task is not None and not reader_task.done():
            reader_task.cancel()
            try:
                await reader_task
            except asyncio.CancelledError:
                pass
        writer = self._writer
        self._writer = None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_pending("connection closed")

    async def __aenter__(self) -> "WireClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def acquire(
        self,
        processor: int,
        *,
        resource_type: str | int = "default",
        priority: int = 1,
        timeout: float | None = None,
    ) -> RemoteLease:
        """Request one resource; returns the granted :class:`RemoteLease`.

        ``timeout`` overrides the client's ``request_timeout`` for this
        call, both as the server-side deadline on the frame and as the
        local reply wait.
        """
        deadline = timeout if timeout is not None else self.request_timeout
        request_id = next(self._ids)
        reply = await self._request(
            make_acquire(
                request_id, processor,
                resource_type=resource_type, priority=priority, timeout=deadline,
            ),
            wait=deadline,
        )
        if reply.kind == "LEASE":
            lease = RemoteLease(
                lease_id=int(reply.get("lease_id", -1)),
                resource=int(reply.get("resource", -1)),
                waited=float(reply.get("waited", 0.0)),
            )
            self._leases[lease.lease_id] = lease
            return lease
        if reply.kind == "REJECTED":
            raise WireRejected(str(reply.get("reason", "rejected")))
        if reply.kind == "TIMEOUT":
            raise WireTimeout(str(reply.get("reason", "deadline expired")))
        raise self._unexpected(reply)

    async def release(self, lease: RemoteLease) -> None:
        """Free the lease's resource; raises on revoked/unknown leases."""
        await self._finish_lease(lease, end_tx=False)

    async def end_transmission(self, lease: RemoteLease) -> None:
        """Release only the circuit; the resource keeps serving."""
        await self._finish_lease(lease, end_tx=True)

    async def _finish_lease(self, lease: RemoteLease, *, end_tx: bool) -> None:
        if lease.revoked:
            raise WireLeaseRevoked(f"lease {lease.lease_id} was revoked")
        request_id = next(self._ids)
        frame = (
            make_end_tx(request_id, lease.lease_id)
            if end_tx
            else make_release(request_id, lease.lease_id)
        )
        reply = await self._request(frame, wait=self.request_timeout)
        if reply.kind == "OK":
            if not end_tx:
                lease.released = True
                self._leases.pop(lease.lease_id, None)
            return
        if reply.kind == "REVOKED":
            self._mark_revoked(lease.lease_id)
            raise WireLeaseRevoked(
                str(reply.get("reason", f"lease {lease.lease_id} was revoked"))
            )
        raise self._unexpected(reply)

    async def ping(self) -> None:
        """Round-trip a PING; raises if the server is unreachable."""
        reply = await self._request(
            make_ping(next(self._ids)), wait=self.request_timeout
        )
        if reply.kind != "PONG":
            raise self._unexpected(reply)

    async def stats(self) -> dict[str, Any]:
        """The server's metrics snapshot (service + wire layers)."""
        reply = await self._request(
            make_stats(next(self._ids)), wait=self.request_timeout
        )
        if reply.kind != "OK":
            raise self._unexpected(reply)
        stats = reply.get("stats")
        return dict(stats) if isinstance(stats, dict) else {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    async def _request(self, frame: Frame, *, wait: float | None) -> Frame:
        writer = self._writer
        if writer is None:
            raise WireConnectionError("not connected; call connect() first")
        future: asyncio.Future[Frame] = asyncio.get_running_loop().create_future()
        self._pending[frame.request_id] = future
        try:
            writer.write(encode(frame))
            await writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(frame.request_id, None)
            raise WireConnectionError(f"connection lost while sending: {exc}") from exc
        try:
            if wait is None:
                return await future
            return await asyncio.wait_for(future, wait)
        except asyncio.TimeoutError as exc:
            raise WireTimeout(
                f"no reply to {frame.kind} #{frame.request_id} within {wait:g}s"
            ) from exc
        finally:
            self._pending.pop(frame.request_id, None)

    async def _read_loop(self) -> None:
        reader = self._reader
        if reader is None:  # pragma: no cover - connect() always sets it
            return
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, OSError):
                break
            if not line:
                break
            try:
                frame = decode(line)
            except ProtocolError:
                self.protocol_errors += 1
                continue
            if frame.request_id != PUSH_ID:
                waiter = self._pending.get(frame.request_id)
                if waiter is not None and not waiter.done():
                    waiter.set_result(frame)
                elif frame.request_id in self._auto_release_ids:
                    # The OK (or REVOKED) answering one of our own
                    # auto-RELEASEs below; nobody is waiting for it.
                    self._auto_release_ids.discard(frame.request_id)
                else:
                    await self._handle_stale(frame)
                continue
            if frame.kind == "REVOKED":
                lease_id = frame.get("lease_id")
                if isinstance(lease_id, int) and not isinstance(lease_id, bool):
                    self._mark_revoked(lease_id)
                continue
            # Unknown push frames are ignored (forward compatibility).
        self._writer = None
        self._reader = None
        self._fail_pending("connection lost")

    async def _handle_stale(self, frame: Frame) -> None:
        """A reply whose waiter already gave up (local timeout).

        Dropping it on the floor was the PR-7 bug: a LEASE granted just
        after the client's ``wait_for`` expired left the resource busy
        on the server with no one ever releasing it.  Answer the grant
        with an immediate RELEASE under a fresh request id (tracked so
        its OK is not counted stale in turn); every other late reply is
        only counted.
        """
        self.stale_replies += 1
        if frame.kind != "LEASE":
            return
        lease_id = frame.get("lease_id")
        if not isinstance(lease_id, int) or isinstance(lease_id, bool):
            return
        writer = self._writer
        if writer is None:
            return
        release_id = next(self._ids)
        self._auto_release_ids.add(release_id)
        try:
            writer.write(encode(make_release(release_id, lease_id)))
            await writer.drain()
        except (ConnectionError, OSError):
            # Connection went down with the grant in hand; the server's
            # disconnect auto-release covers it from here.
            self._auto_release_ids.discard(release_id)

    def _mark_revoked(self, lease_id: int) -> None:
        lease = self._leases.pop(lease_id, None)
        if lease is not None and not lease.released:
            lease.revoked = True
            lease.revocation.set()

    def _fail_pending(self, reason: str) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(WireConnectionError(reason))
        self._pending.clear()
        # Leases cannot outlive the connection: the server auto-released
        # them at disconnect, so reflect that locally.
        for lease_id in list(self._leases):
            self._mark_revoked(lease_id)

    def _unexpected(self, reply: Frame) -> WireError:
        if reply.kind == "ERROR":
            return WireRemoteError(str(reply.get("message", "remote error")))
        return WireRemoteError(f"unexpected {reply.kind} reply")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.connected else "disconnected"
        return f"WireClient({self.host}:{self.port}, {state}, pending={len(self._pending)})"

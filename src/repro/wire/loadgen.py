"""Open-loop load generation against a :class:`~repro.wire.server.WireServer`.

The closed-loop drivers elsewhere in the repo (``repro serve``'s
client tasks, the chaos harness) wait for one request to finish before
issuing the next, so the offered load adapts to the server — exactly
the feedback that hides tail latency.  This generator is **open
loop**: the arrival schedule is drawn up front from a seeded RNG
(Poisson, bursty on/off, or diurnal sinusoid), and requests fire at
their scheduled instants whether or not earlier ones completed.
Under overload the queue grows, deadlines fire, and the waiting-time
tail becomes observable — the heavy-traffic regime the resource-
sharing literature reasons about.

Latencies (acquire → LEASE/terminal reply) are recorded in integer
**microseconds** into a :class:`~repro.util.histogram.LatencyHistogram`
— exact counts, log-bucketed, mergeable across runs.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.service.clock import Clock, MonotonicClock
from repro.util.histogram import LatencyHistogram
from repro.util.rng import make_rng
from repro.util.tables import Table
from repro.wire.client import (
    RemoteLease,
    WireClient,
    WireError,
    WireLeaseRevoked,
    WireRejected,
    WireTimeout,
)

__all__ = ["ARRIVAL_PROCESSES", "Arrival", "LoadGenConfig", "LoadGenReport", "arrival_schedule", "run_loadgen"]

#: Microseconds per second — the histogram's unit.
US = 1_000_000

ARRIVAL_PROCESSES: tuple[str, ...] = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: when, from whom, held for how long."""

    time: float
    processor: int
    hold: float


@dataclass(frozen=True)
class LoadGenConfig:
    """Everything that determines a load-generation run.

    Attributes
    ----------
    rate:
        Aggregate offered load, requests per second (mean; the bursty
        and diurnal processes modulate around it).
    duration:
        Seconds of arrivals to schedule.
    processors:
        Request processor indices are drawn uniformly from
        ``[0, processors)`` — match the served network's port count.
    arrival:
        ``"poisson"`` (memoryless), ``"bursty"`` (on/off modulated
        Poisson: rate × ``burst_factor`` while on, idle while off), or
        ``"diurnal"`` (sinusoidal rate over ``diurnal_period``,
        thinned).
    connections:
        Concurrency knob: client connections to open; requests round-
        robin across them and pipeline within each.
    seed:
        RNG seed (:mod:`repro.util.rng` discipline) — the schedule is
        a pure function of the config.
    request_timeout:
        Per-request deadline in seconds (rides the ACQUIRE frame and
        bounds the reply wait).
    mean_hold:
        Mean lease hold time (exponential): acquire → hold → release.
    transmission:
        Circuit-hold before END_TX (0 skips the END_TX phase).
    burst_factor, burst_on_fraction, burst_period:
        Bursty process shape: one on/off cycle lasts ``burst_period``
        seconds of which ``burst_on_fraction`` is on at
        ``rate * burst_factor`` (off is silent); the mean stays near
        ``rate`` when ``burst_on_fraction * burst_factor == 1``.
    diurnal_period, diurnal_amplitude:
        Diurnal shape: ``rate(t) = rate * (1 + A sin(2πt/period))``.
    """

    rate: float
    duration: float
    processors: int
    arrival: str = "poisson"
    connections: int = 4
    seed: int | None = None
    request_timeout: float | None = 5.0
    mean_hold: float = 0.05
    transmission: float = 0.0
    burst_factor: float = 4.0
    burst_on_fraction: float = 0.25
    burst_period: float = 1.0
    diurnal_period: float = 10.0
    diurnal_amplitude: float = 0.8

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.processors < 1:
            raise ValueError(f"processors must be >= 1, got {self.processors}")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"pick one of {ARRIVAL_PROCESSES}"
            )
        if self.connections < 1:
            raise ValueError(f"connections must be >= 1, got {self.connections}")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if self.mean_hold < 0 or self.transmission < 0:
            raise ValueError("hold/transmission times must be >= 0")
        if self.burst_factor < 1:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor}")
        if not 0.0 < self.burst_on_fraction <= 1.0:
            raise ValueError("burst_on_fraction must be in (0, 1]")
        if self.burst_period <= 0 or self.diurnal_period <= 0:
            raise ValueError("burst/diurnal periods must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")


def arrival_schedule(config: LoadGenConfig) -> list[Arrival]:
    """The run's full arrival schedule — a pure function of the config.

    All randomness (arrival instants, processors, hold times) is drawn
    here, in schedule order from one seeded stream, so two runs with
    the same config offer byte-identical traffic.
    """
    rng = make_rng(config.seed)
    times = _arrival_times(config, rng)
    return [
        Arrival(
            time=t,
            processor=int(rng.integers(0, config.processors)),
            hold=float(rng.exponential(config.mean_hold)) if config.mean_hold else 0.0,
        )
        for t in times
    ]


def _arrival_times(config: LoadGenConfig, rng: np.random.Generator) -> list[float]:
    if config.arrival == "poisson":
        return _poisson_times(config.rate, config.duration, rng)
    if config.arrival == "bursty":
        return _bursty_times(config, rng)
    return _diurnal_times(config, rng)


def _poisson_times(rate: float, duration: float, rng: np.random.Generator) -> list[float]:
    times: list[float] = []
    t = float(rng.exponential(1.0 / rate))
    while t < duration:
        times.append(t)
        t += float(rng.exponential(1.0 / rate))
    return times


def _bursty_times(config: LoadGenConfig, rng: np.random.Generator) -> list[float]:
    """On/off modulated Poisson: bursts at ``rate * burst_factor``."""
    on_rate = config.rate * config.burst_factor
    on_span = config.burst_period * config.burst_on_fraction
    times: list[float] = []
    cycle_start = 0.0
    while cycle_start < config.duration:
        t = cycle_start + float(rng.exponential(1.0 / on_rate))
        while t < min(cycle_start + on_span, config.duration):
            times.append(t)
            t += float(rng.exponential(1.0 / on_rate))
        cycle_start += config.burst_period
    return times


def _diurnal_times(config: LoadGenConfig, rng: np.random.Generator) -> list[float]:
    """Sinusoidal-rate Poisson via thinning against the peak rate."""
    peak = config.rate * (1.0 + config.diurnal_amplitude)
    times: list[float] = []
    t = float(rng.exponential(1.0 / peak))
    while t < config.duration:
        instantaneous = config.rate * (
            1.0 + config.diurnal_amplitude
            * math.sin(2.0 * math.pi * t / config.diurnal_period)
        )
        if float(rng.random()) * peak < instantaneous:
            times.append(t)
        t += float(rng.exponential(1.0 / peak))
    return times


@dataclass
class LoadGenReport:
    """Outcome of one load-generation run.

    ``histogram`` holds acquire latencies in integer microseconds;
    the counters partition the offered requests: ``offered ==
    completed + rejected + timed_out + errors`` (revocations happen
    *after* a completed acquire and are counted separately).
    """

    config: LoadGenConfig
    offered: int = 0
    completed: int = 0
    rejected: int = 0
    timed_out: int = 0
    errors: int = 0
    revoked: int = 0
    elapsed: float = 0.0
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def throughput(self) -> float:
        """Completed acquires per second of run wall-clock."""
        return self.completed / self.elapsed if self.elapsed > 0 else 0.0

    def latency_ms(self) -> dict[str, float]:
        """p50/p90/p99/p999 acquire latency, in milliseconds."""
        return {
            label: value / 1000.0
            for label, value in self.histogram.percentiles().items()
        }

    def to_json(self) -> dict[str, Any]:
        """JSON-safe summary (what ``BENCH_wire.json`` records)."""
        return {
            "arrival": self.config.arrival,
            "offered_rate": self.config.rate,
            "duration": self.config.duration,
            "seed": self.config.seed,
            "connections": self.config.connections,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
            "errors": self.errors,
            "revoked": self.revoked,
            "elapsed_sec": self.elapsed,
            "throughput_per_sec": self.throughput,
            "latency_ms": self.latency_ms(),
            "mean_latency_ms": self.histogram.mean / 1000.0,
        }

    def render(self, title: str | None = None) -> str:
        """ASCII table of the run (CLI output)."""
        table = Table(
            ["metric", "value"],
            title=title or (
                f"loadgen: {self.config.arrival}, "
                f"{self.config.rate:g} req/s offered, "
                f"{self.config.duration:g}s, seed={self.config.seed}"
            ),
        )
        table.add_row("offered", self.offered)
        table.add_row("completed", self.completed)
        table.add_row("rejected", self.rejected)
        table.add_row("timed_out", self.timed_out)
        table.add_row("errors", self.errors)
        table.add_row("revoked", self.revoked)
        table.add_row("elapsed_sec", f"{self.elapsed:.3f}")
        table.add_row("throughput/sec", f"{self.throughput:.1f}")
        for label, value in self.latency_ms().items():
            table.add_row(f"latency {label} (ms)", f"{value:.3f}")
        table.add_row("latency mean (ms)", f"{self.histogram.mean / 1000.0:.3f}")
        return table.render()


async def run_loadgen(
    host: str,
    port: int,
    config: LoadGenConfig,
    *,
    clock: Clock | None = None,
) -> LoadGenReport:
    """Drive the schedule against ``host:port``; returns the report.

    Arrivals are dispatched open-loop: a scheduler task sleeps to each
    arrival instant and fires an independent request task; slow or
    failed requests never delay later arrivals.  ``clock`` defaults to
    the event-loop monotonic clock (latency measurement needs real
    time; the *schedule* stays seeded and deterministic).
    """
    schedule = arrival_schedule(config)
    report = LoadGenReport(config=config, offered=len(schedule))
    timer = clock if clock is not None else MonotonicClock()
    clients = [
        WireClient(
            host, port,
            request_timeout=config.request_timeout,
            reconnect_attempts=3,
            rng=make_rng(None if config.seed is None else config.seed + i),
        )
        for i in range(config.connections)
    ]
    try:
        for client in clients:
            await client.connect()
        start = timer.now()
        tasks: set[asyncio.Task[None]] = set()
        for i, arrival in enumerate(schedule):
            delay = (start + arrival.time) - timer.now()
            if delay > 0:
                await timer.sleep(delay)
            task = asyncio.get_running_loop().create_task(
                _one_request(clients[i % len(clients)], arrival, config, timer, report)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        report.elapsed = timer.now() - start
    finally:
        for client in clients:
            await client.close()
    return report


async def _one_request(
    client: WireClient,
    arrival: Arrival,
    config: LoadGenConfig,
    timer: Clock,
    report: LoadGenReport,
) -> None:
    """One request's lifecycle; records its latency and outcome."""
    t0 = timer.now()
    try:
        lease = await client.acquire(
            arrival.processor, timeout=config.request_timeout
        )
    except WireRejected:
        report.rejected += 1
        return
    except WireTimeout:
        report.timed_out += 1
        return
    except WireError:
        report.errors += 1
        return
    latency = timer.now() - t0
    report.histogram.record(max(int(latency * US), 0))
    report.completed += 1
    try:
        if config.transmission > 0:
            await timer.sleep(config.transmission)
            await client.end_transmission(lease)
        if arrival.hold > 0:
            await timer.sleep(arrival.hold)
        await client.release(lease)
    except WireLeaseRevoked:
        report.revoked += 1
    except WireError:
        report.errors += 1
    finally:
        await _abandon(client, lease)


async def _abandon(client: WireClient, lease: RemoteLease) -> None:
    """Best-effort release for lifecycles unwound early.

    Runs in the ``finally`` of every request lifecycle: if the load
    generator is cancelled (deadline or shutdown) while the lease is
    still held, give it back instead of stranding server-side custody
    — the escape R007 guards against.  A lease already released or
    revoked is left alone.
    """
    if not lease.active:
        return
    try:
        await client.release(lease)
    except WireError:
        pass  # connection already gone; the server reclaims on close

"""The wire protocol: versioned newline-delimited JSON frames.

One frame per line.  Every frame is a JSON object carrying the
protocol version (``"v"``), a frame kind (``"kind"``), a request id
(``"id"``) for correlation, and kind-specific payload keys::

    {"id":7,"kind":"ACQUIRE","processor":3,"v":1}\\n
    {"id":7,"kind":"LEASE","lease_id":12,"resource":5,"v":1,"waited":0.0}\\n

Requests (client → server): ``ACQUIRE``, ``RELEASE``, ``END_TX``,
``PING``, ``STATS``.  Replies (server → client): ``LEASE``,
``REJECTED``, ``TIMEOUT``, ``REVOKED``, ``ERROR``, ``OK``, ``PONG``.
``REVOKED`` doubles as the server's *push* frame — a fault severing a
held lease reaches the connected holder unprompted, with
``request_id == PUSH_ID``.

Encode/decode are **pure functions** — no sockets, no state — so the
property suite round-trips every frame kind without a server.
Malformed input never raises past :class:`ProtocolError`; servers
answer it with an explicit ``ERROR`` frame instead of dropping the
connection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "Frame",
    "ProtocolError",
    "PUSH_ID",
    "PUSH_KINDS",
    "REPLY_KINDS",
    "REPLY_SCHEMA",
    "REQUEST_KINDS",
    "WIRE_VERSION",
    "decode",
    "encode",
    "make_acquire",
    "make_end_tx",
    "make_error",
    "make_lease",
    "make_ok",
    "make_ping",
    "make_pong",
    "make_rejected",
    "make_release",
    "make_revoked",
    "make_stats",
    "make_timeout",
]

#: Protocol version stamped on (and demanded of) every frame.
WIRE_VERSION = 1

#: Request id reserved for server-initiated push frames (REVOKED).
#: Clients allocate ids from 1 upward.
PUSH_ID = 0

REQUEST_KINDS: tuple[str, ...] = ("ACQUIRE", "RELEASE", "END_TX", "PING", "STATS")
REPLY_KINDS: tuple[str, ...] = (
    "LEASE", "REJECTED", "TIMEOUT", "REVOKED", "ERROR", "OK", "PONG",
)
KINDS: frozenset[str] = frozenset(REQUEST_KINDS) | frozenset(REPLY_KINDS)

#: The request→reply state machine: which correlated reply kinds each
#: request kind admits.  ``wire/server.py`` is checked against this
#: table by lint rule R008; keep it a literal so the rule can read it
#: from the AST without importing the module.
REPLY_SCHEMA: Mapping[str, tuple[str, ...]] = {
    "ACQUIRE": ("LEASE", "REJECTED", "TIMEOUT", "ERROR"),
    "RELEASE": ("OK", "REVOKED", "ERROR"),
    "END_TX": ("OK", "REVOKED", "ERROR"),
    "PING": ("PONG",),
    "STATS": ("OK", "ERROR"),
}

#: Kinds the server may send unprompted under ``PUSH_ID``: lease
#: revocations, and transport-level errors for undecodable frames
#: that carry no usable request id.
PUSH_KINDS: tuple[str, ...] = ("REVOKED", "ERROR")

for _kind, _replies in REPLY_SCHEMA.items():
    if _kind not in REQUEST_KINDS or not set(_replies) <= set(REPLY_KINDS):
        raise RuntimeError(f"REPLY_SCHEMA inconsistent for {_kind!r}")
del _kind, _replies

#: Keys owned by the envelope; payloads may not shadow them.
_RESERVED_KEYS = frozenset({"v", "kind", "id"})


class ProtocolError(Exception):
    """A frame could not be encoded or decoded."""


@dataclass(frozen=True)
class Frame:
    """One protocol frame: a kind, a correlation id, and a payload.

    ``payload`` holds the kind-specific keys (``processor``,
    ``lease_id``, ``reason``, ...).  Frames are value objects —
    ``decode(encode(f)) == f`` for every well-formed frame.
    """

    kind: str
    request_id: int
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ProtocolError(f"unknown frame kind {self.kind!r}")
        if isinstance(self.request_id, bool) or not isinstance(self.request_id, int):
            raise ProtocolError(f"request id must be an int, got {self.request_id!r}")
        if self.request_id < 0:
            raise ProtocolError(f"request id must be >= 0, got {self.request_id}")
        shadowed = _RESERVED_KEYS & set(self.payload)
        if shadowed:
            raise ProtocolError(
                f"payload keys {sorted(shadowed)} shadow the frame envelope"
            )

    def get(self, key: str, default: Any = None) -> Any:
        """Payload lookup with a default (sugar for handlers)."""
        return self.payload.get(key, default)


def encode(frame: Frame) -> bytes:
    """``frame`` as one newline-terminated JSON line (UTF-8 bytes)."""
    document = {"v": WIRE_VERSION, "kind": frame.kind, "id": frame.request_id}
    document.update(frame.payload)
    try:
        text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unencodable payload: {exc}") from exc
    if "\n" in text:  # json.dumps never emits raw newlines, but be loud
        raise ProtocolError("encoded frame contains a newline")
    return text.encode("utf-8") + b"\n"


def decode(line: bytes | str) -> Frame:
    """Parse one frame line; raises :class:`ProtocolError` on any defect.

    Defects are reported with distinct messages (bad UTF-8, bad JSON,
    non-object, wrong/missing version, unknown kind, bad id) so the
    server's ``ERROR`` replies tell the client what to fix.
    """
    if isinstance(line, bytes):
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    else:
        text = line
    text = text.strip()
    if not text:
        raise ProtocolError("empty frame")
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc.msg}") from exc
    if not isinstance(document, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(document).__name__}"
        )
    version = document.get("v")
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this end speaks "
            f"v{WIRE_VERSION})"
        )
    kind = document.get("kind")
    if not isinstance(kind, str) or kind not in KINDS:
        raise ProtocolError(f"unknown frame kind {kind!r}")
    request_id = document.get("id")
    if isinstance(request_id, bool) or not isinstance(request_id, int) or request_id < 0:
        raise ProtocolError(f"bad request id {request_id!r}")
    payload = {k: v for k, v in document.items() if k not in _RESERVED_KEYS}
    return Frame(kind=kind, request_id=request_id, payload=payload)


# ----------------------------------------------------------------------
# Frame constructors (the documented payload shapes)
# ----------------------------------------------------------------------
def make_acquire(
    request_id: int,
    processor: int,
    *,
    resource_type: str | int = "default",
    priority: int = 1,
    timeout: float | None = None,
) -> Frame:
    """ACQUIRE: request one resource for ``processor``.

    ``timeout`` is the request's deadline in seconds (server-side,
    checked at tick boundaries); ``None`` defers to the service
    default.
    """
    payload: dict[str, Any] = {
        "processor": processor,
        "resource_type": resource_type,
        "priority": priority,
    }
    if timeout is not None:
        payload["timeout"] = timeout
    return Frame("ACQUIRE", request_id, payload)


def make_release(request_id: int, lease_id: int) -> Frame:
    """RELEASE: free the lease's resource (and circuit if held)."""
    return Frame("RELEASE", request_id, {"lease_id": lease_id})


def make_end_tx(request_id: int, lease_id: int) -> Frame:
    """END_TX: release only the circuit; the resource keeps serving."""
    return Frame("END_TX", request_id, {"lease_id": lease_id})


def make_ping(request_id: int) -> Frame:
    """PING: liveness probe; the server echoes with PONG."""
    return Frame("PING", request_id)


def make_stats(request_id: int) -> Frame:
    """STATS: ask for the service metrics snapshot (OK reply)."""
    return Frame("STATS", request_id)


def make_lease(
    request_id: int, lease_id: int, resource: int, waited: float
) -> Frame:
    """LEASE: the ACQUIRE was granted."""
    return Frame(
        "LEASE", request_id,
        {"lease_id": lease_id, "resource": resource, "waited": waited},
    )


def make_rejected(request_id: int, reason: str) -> Frame:
    """REJECTED: admission control (or drain) bounced the ACQUIRE."""
    return Frame("REJECTED", request_id, {"reason": reason})


def make_timeout(request_id: int, reason: str) -> Frame:
    """TIMEOUT: the request's deadline expired while queued."""
    return Frame("TIMEOUT", request_id, {"reason": reason})


def make_revoked(request_id: int, lease_id: int, reason: str) -> Frame:
    """REVOKED: a fault severed the lease (push uses ``PUSH_ID``)."""
    return Frame("REVOKED", request_id, {"lease_id": lease_id, "reason": reason})


def make_error(request_id: int, message: str) -> Frame:
    """ERROR: the request (or its framing) could not be served."""
    return Frame("ERROR", request_id, {"message": message})


def make_ok(request_id: int, **payload: Any) -> Frame:
    """OK: generic success reply (RELEASE/END_TX/STATS)."""
    return Frame("OK", request_id, dict(payload))


def make_pong(request_id: int) -> Frame:
    """PONG: reply to PING."""
    return Frame("PONG", request_id)

"""The network front-end: real traffic over a real wire.

The paper's Section IV monitor is an allocation *server*; until this
layer the reproduction only drove it with in-process seeded workloads.
:mod:`repro.wire` puts the :class:`~repro.service.server.AllocationService`
behind actual TCP so admission control, deadlines, revocation, and the
fault budget become observable SLOs:

- :mod:`repro.wire.protocol` — versioned newline-delimited JSON frames
  (ACQUIRE/RELEASE/END_TX/PING/STATS requests; LEASE/REJECTED/TIMEOUT/
  REVOKED/ERROR/OK/PONG replies) with pure encode/decode;
- :mod:`repro.wire.server` — asyncio TCP :class:`WireServer` wrapping a
  service: per-connection tasks, connection-scoped lease tracking
  (disconnect auto-releases), graceful drain, max-connections guard;
- :mod:`repro.wire.client` — pipelined :class:`WireClient` with
  configurable timeouts and seeded reconnect backoff;
- :mod:`repro.wire.loadgen` — open-loop load generator (seeded Poisson
  / bursty / diurnal arrivals) recording tail latencies into a
  :class:`~repro.util.histogram.LatencyHistogram`.

``python -m repro wire-serve`` / ``python -m repro loadgen`` are the
CLI wrappers; ``benchmarks/bench_wire.py`` sweeps the throughput vs.
tail-latency frontier into ``BENCH_wire.json``.
"""

from repro.wire.client import (
    RemoteLease,
    WireClient,
    WireConnectionError,
    WireError,
    WireLeaseRevoked,
    WireRejected,
    WireRemoteError,
    WireTimeout,
)
from repro.wire.loadgen import LoadGenConfig, LoadGenReport, run_loadgen
from repro.wire.protocol import Frame, ProtocolError, decode, encode
from repro.wire.server import WireServer

__all__ = [
    "Frame",
    "LoadGenConfig",
    "LoadGenReport",
    "ProtocolError",
    "RemoteLease",
    "WireClient",
    "WireConnectionError",
    "WireError",
    "WireLeaseRevoked",
    "WireRejected",
    "WireRemoteError",
    "WireServer",
    "WireTimeout",
    "decode",
    "encode",
    "run_loadgen",
]

"""The three element types of the distributed MRSIN (Fig. 9).

*"A processor is connected to the network through a request server
(RQ), a resource is monitored by a resource server (RS), and each
switchbox is controlled by an independent process (NS)."*

These classes hold the per-element state the token-propagation
protocol needs: port markings (the implicit layered-network
representation), tentative *registered* pairings (partial switch
settings built up across iterations of a scheduling cycle), and the
RQ/RS bonding bits.  The propagation rules themselves live in
:mod:`repro.distributed.simulator`.

Ports are keyed ``("in", p)`` / ``("out", p)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.requests import Request
from repro.networks.topology import Link

__all__ = ["PortKey", "RequestServer", "ResourceServer", "NodeServer"]

PortKey = tuple[str, int]


@dataclass
class RequestServer:
    """RQ: fronts one processor.

    ``bonded`` is set when a resource token reaches it; its binding
    status bit in the paper.  ``request`` is the request it is trying
    to place this scheduling cycle (None = idle).
    """

    processor: int
    link: Link
    request: Request | None = None
    bonded: bool = False

    @property
    def wants_token(self) -> bool:
        """Should this RQ emit a request token this iteration?"""
        return self.request is not None and not self.bonded and not self.link.occupied


@dataclass
class ResourceServer:
    """RS: monitors one resource.

    ``ready`` mirrors resource availability; ``got_token`` records
    whether a request token arrived this iteration (the E6 trigger);
    ``bonded`` is permanent for the scheduling cycle once a resource
    token from here reaches an RQ.
    """

    resource: int
    link: Link
    ready: bool = False
    got_token: bool = False
    bonded: bool = False

    @property
    def can_accept(self) -> bool:
        """Whether an arriving request token should be accepted."""
        return self.ready and not self.bonded


@dataclass
class NodeServer:
    """NS: the autonomous process in one switchbox.

    Persistent state (lives for the scheduling cycle):

    - ``pairs``: registered in-port → out-port connections, the
      tentative switch setting the registered paths imply;

    Per-iteration state (reset by :meth:`reset_iteration`):

    - ``fired``: whether the first batch of request tokens arrived;
    - ``received``: ports where request tokens arrived, in order (the
      *entry* ports a returning resource token may leave through);
    - ``sent``: ports request tokens were sent from (the only ports a
      resource token may arrive at);
    - ``consumed``: entry ports already claimed by a resource token.
    """

    stage: int
    index: int
    in_links: list[Link | None]
    out_links: list[Link | None]
    pairs: dict[int, int] = field(default_factory=dict)
    fired: bool = False
    received: list[PortKey] = field(default_factory=list)
    sent: set[PortKey] = field(default_factory=set)
    consumed: set[PortKey] = field(default_factory=set)

    def reset_iteration(self) -> None:
        """Erase the iteration-local markings (keep registered pairs)."""
        self.fired = False
        self.received.clear()
        self.sent.clear()
        self.consumed.clear()

    # ------------------------------------------------------------------
    def link_at(self, port: PortKey) -> Link:
        """The physical link wired to ``port``."""
        side, p = port
        link = self.in_links[p] if side == "in" else self.out_links[p]
        if link is None:
            raise ValueError(f"NS({self.stage},{self.index}) port {port} unwired")
        return link

    def available_entry(self) -> PortKey | None:
        """First marked entry port not yet claimed by a resource token."""
        for port in self.received:
            if port not in self.consumed:
                return port
        return None

    def clear_entry(self, port: PortKey) -> None:
        """Erase a fruitless entry marking (the backtracking rule)."""
        if port in self.received:
            self.received.remove(port)
        self.consumed.discard(port)

    # ------------------------------------------------------------------
    # Registered-pairing updates (applied at path registration)
    # ------------------------------------------------------------------
    def pair_in_of(self, out_port: int) -> int:
        """The in-port currently registered to feed ``out_port``."""
        for i, o in self.pairs.items():
            if o == out_port:
                return i
        raise KeyError(f"no registered pairing into out-port {out_port}")

    def apply_pass(self, entry: PortKey, sent: PortKey) -> None:
        """Update pairings for one augmenting path crossing this NS.

        ``entry`` is the port the request token arrived at (the
        upstream side of the new path segment); ``sent`` the port it
        was duplicated to (downstream side).  New-flow ports attach
        directly; cancellation ports splice the old registered path:

        - entry at a *free in* link: upstream attach = that in-port;
        - entry at a *registered out* link (cancellation): upstream
          attach = the in-port the old pairing fed it from;
        - sent via a *free out* link: downstream attach = that out-port;
        - sent via a *registered in* link (cancellation): downstream
          attach = the out-port the old pairing sent it to.
        """
        e_side, e_port = entry
        s_side, s_port = sent
        if e_side == "out" and s_side == "in" and self.pairs.get(s_port) == e_port:
            # Both cancellations hit the SAME old pairing: the
            # augmenting path expels the old registered path from this
            # box entirely (its in- and out-links are both cancelled),
            # so the pairing simply disappears.
            del self.pairs[s_port]
            return
        if e_side == "in":
            upstream = e_port
        else:
            upstream = self.pair_in_of(e_port)
            del self.pairs[upstream]
        if s_side == "out":
            downstream = s_port
        else:
            downstream = self.pairs.pop(s_port)
        self.pairs[upstream] = downstream

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeServer({self.stage},{self.index}, pairs={self.pairs})"

"""The Fig. 10 global state-transition diagram.

The MRSIN as a whole moves through idle, scheduling, and allocation
states; transitions are driven by the status-bus event vector.  The
simulator logs its state trace through :func:`next_state`, and the
tests assert the trace follows this diagram.
"""

from __future__ import annotations

import enum

from repro.distributed.events import Event, StatusBus

__all__ = ["GlobalState", "next_state"]


class GlobalState(enum.Enum):
    """Macro states of the distributed MRSIN (Fig. 10)."""

    IDLE = "idle"                                  # no request or no resource
    WAITING = "waiting"                            # requests pending, gathering
    REQUEST_PROPAGATION = "request-token-propagation"
    TOKEN_STOP = "tokens-stopping"                 # E6 raised, one settle period
    RESOURCE_PROPAGATION = "resource-token-propagation"
    PATH_REGISTRATION = "path-registration"
    ALLOCATION = "allocation"                      # registered paths become bonded


def next_state(state: GlobalState, bus: StatusBus) -> GlobalState:
    """One transition of the Fig. 10 diagram given the bus vector.

    The mapping follows the paper's walkthrough: ``111000x`` is
    request-token propagation; an RS setting E6 yields ``111001x`` for
    one clock; ``110100x`` is resource-token propagation; ``110110x``
    is path registration; falling E4/E5 starts the next iteration or,
    when no augmenting path was found, the allocation state.
    """
    pending = bus.read(Event.REQUEST_PENDING)
    ready = bus.read(Event.RESOURCE_READY)
    if state in (GlobalState.IDLE, GlobalState.WAITING, GlobalState.ALLOCATION):
        if pending and ready:
            return GlobalState.REQUEST_PROPAGATION
        if pending or ready:
            return GlobalState.WAITING
        return GlobalState.IDLE
    if state is GlobalState.REQUEST_PROPAGATION:
        if bus.read(Event.RESOURCE_GOT_TOKEN):
            return GlobalState.TOKEN_STOP
        if not bus.read(Event.REQUEST_TOKENS):
            # Tokens died out without reaching any RS: no augmenting
            # path exists; conclude the scheduling cycle.
            return GlobalState.ALLOCATION
        return GlobalState.REQUEST_PROPAGATION
    if state is GlobalState.TOKEN_STOP:
        return GlobalState.RESOURCE_PROPAGATION
    if state is GlobalState.RESOURCE_PROPAGATION:
        if bus.read(Event.PATH_REGISTRATION) or not bus.read(Event.RESOURCE_TOKENS):
            return GlobalState.PATH_REGISTRATION
        return GlobalState.RESOURCE_PROPAGATION
    if state is GlobalState.PATH_REGISTRATION:
        if pending and ready:
            return GlobalState.REQUEST_PROPAGATION
        return GlobalState.ALLOCATION
    raise ValueError(f"unknown state {state!r}")  # pragma: no cover

"""Boolean-logic realisation of the NS token-propagation rules.

The paper: *"Since a token is simply a signal, token propagation rules
can be expressed in terms of Boolean functions.  A distributed process
at an NS, RQ, or RS does nothing but distribute the token according to
the global status and local conditions.  It can be realized easily by
a finite-state machine ... The design has a very low gate count and a
very short token propagation delay."*

This module makes that claim checkable.  A tiny combinational-logic
representation (:class:`Expr` trees over named inputs) encodes the
per-port decision functions of a 2x2 NS during the request-token
phase:

- inputs per port: token arrival, port marked, link registered, link
  occupied; plus the global bus bits E3/E4;
- outputs per port: "emit token" and "set mark".

:func:`ns_request_logic` builds the equations;
:func:`gate_count` / :func:`depth` report the hardware cost (the
paper's "low gate count / short delay"); and the test suite evaluates
the logic against the behavioural simulator's rules on every local
input combination — a gate-level/behavioural equivalence check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "Expr", "Var", "Const", "Not", "And", "Or",
    "ns_request_logic", "gate_count", "shared_gate_count", "depth",
]


class Expr:
    """Base class of the combinational expression tree."""

    def evaluate(self, inputs: Mapping[str, bool]) -> bool:  # pragma: no cover
        raise NotImplementedError

    def __and__(self, other: "Expr") -> "Expr":
        return And(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or(self, other)

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Var(Expr):
    """A named input signal."""

    name: str

    def evaluate(self, inputs: Mapping[str, bool]) -> bool:
        return bool(inputs[self.name])

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """A constant signal (tie to VCC/GND)."""

    value: bool

    def evaluate(self, inputs: Mapping[str, bool]) -> bool:
        return self.value

    def __repr__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Not(Expr):
    """An inverter."""

    a: Expr

    def evaluate(self, inputs: Mapping[str, bool]) -> bool:
        return not self.a.evaluate(inputs)

    def __repr__(self) -> str:
        return f"~{self.a!r}"


@dataclass(frozen=True)
class And(Expr):
    """A 2-input AND gate."""

    a: Expr
    b: Expr

    def evaluate(self, inputs: Mapping[str, bool]) -> bool:
        return self.a.evaluate(inputs) and self.b.evaluate(inputs)

    def __repr__(self) -> str:
        return f"({self.a!r} & {self.b!r})"


@dataclass(frozen=True)
class Or(Expr):
    """A 2-input OR gate."""

    a: Expr
    b: Expr

    def evaluate(self, inputs: Mapping[str, bool]) -> bool:
        return self.a.evaluate(inputs) or self.b.evaluate(inputs)

    def __repr__(self) -> str:
        return f"({self.a!r} | {self.b!r})"


def gate_count(expr: Expr) -> int:
    """Number of gates (NOT/AND/OR nodes) in the expression."""
    if isinstance(expr, (Var, Const)):
        return 0
    if isinstance(expr, Not):
        return 1 + gate_count(expr.a)
    if isinstance(expr, (And, Or)):
        return 1 + gate_count(expr.a) + gate_count(expr.b)
    raise TypeError(f"unknown node {expr!r}")  # pragma: no cover


def shared_gate_count(exprs) -> int:
    """Gates needed for a set of outputs with common-subexpression reuse.

    Structurally identical subtrees (the frozen dataclasses compare by
    value) are counted once — e.g. the ``recv`` product term feeds
    every output of :func:`ns_request_logic` but costs its gates only
    once, as it would in silicon.
    """
    seen: set[Expr] = set()

    def visit(expr: Expr) -> int:
        if isinstance(expr, (Var, Const)) or expr in seen:
            return 0
        seen.add(expr)
        if isinstance(expr, Not):
            return 1 + visit(expr.a)
        if isinstance(expr, (And, Or)):
            return 1 + visit(expr.a) + visit(expr.b)
        raise TypeError(f"unknown node {expr!r}")  # pragma: no cover

    return sum(visit(e) for e in exprs)


def depth(expr: Expr) -> int:
    """Gate-delay depth (critical path) of the expression."""
    if isinstance(expr, (Var, Const)):
        return 0
    if isinstance(expr, Not):
        return 1 + depth(expr.a)
    if isinstance(expr, (And, Or)):
        return 1 + max(depth(expr.a), depth(expr.b))
    raise TypeError(f"unknown node {expr!r}")  # pragma: no cover


def ns_request_logic(n_in: int = 2, n_out: int = 2) -> dict[str, Expr]:
    """Combinational equations of an NS in the request-token phase.

    Input signal names (per input port ``i`` / output port ``o``):

    - ``tok_in_i``  — request token arriving forward at input ``i``;
    - ``tok_out_o`` — request token arriving backward at output ``o``;
    - ``mark_in_i`` / ``mark_out_o`` — port markings;
    - ``reg_in_i`` / ``reg_out_o``   — link registered;
    - ``occ_out_o``                  — link occupied;
    - ``fired``                      — the NS already took its first batch;
    - ``e3``                         — bus bit E3 (request-token phase).

    Output signal names:

    - ``recv``        — this clock carries the NS's first batch;
    - ``send_out_o``  — emit a token forward on output ``o``;
    - ``send_in_i``   — emit a token backward on input ``i``;
    - ``set_mark_*``  — latch the port marking.

    The equations transcribe the simulator's rules exactly: fire on
    the first batch only (``~fired``), duplicate to free unmarked
    output links and registered unmarked input links, and mark every
    receiving and sending port.
    """
    e3 = Var("e3")
    fired = Var("fired")
    any_arrival: Expr = Const(False)
    for i in range(n_in):
        any_arrival = any_arrival | Var(f"tok_in_{i}")
    for o in range(n_out):
        any_arrival = any_arrival | Var(f"tok_out_{o}")
    recv = e3 & ~fired & any_arrival

    logic: dict[str, Expr] = {"recv": recv}
    for o in range(n_out):
        free_link = ~Var(f"occ_out_{o}") & ~Var(f"reg_out_{o}")
        eligible = free_link & ~Var(f"mark_out_{o}") & ~Var(f"tok_out_{o}")
        logic[f"send_out_{o}"] = recv & eligible
        logic[f"set_mark_out_{o}"] = recv & (Var(f"tok_out_{o}") | eligible)
    for i in range(n_in):
        eligible = Var(f"reg_in_{i}") & ~Var(f"mark_in_{i}") & ~Var(f"tok_in_{i}")
        logic[f"send_in_{i}"] = recv & eligible
        logic[f"set_mark_in_{i}"] = recv & (Var(f"tok_in_{i}") | eligible)
    return logic

"""Clock-driven simulation of the distributed token-propagation MRSIN.

This module realises Section IV-B: Dinic's maximum-flow algorithm
executed *by the network itself*.  Each scheduling cycle iterates three
phases, synchronised over the status bus:

1. **Request-token propagation** (builds the layered network,
   Theorem 4): every unbonded requesting RQ emits a token; each NS,
   on its *first batch* of arrivals, duplicates the token to all free
   unmarked output ports (forward) and registered unmarked input ports
   (backward = flow cancellation), marking all receiving and sending
   ports.  Tokens traverse one link per clock.  The phase ends the
   clock an RS receives a token (E6) or when no tokens remain
   propagating (no augmenting path — cycle over).

2. **Resource-token propagation** (finds a maximal flow of the layered
   network): each token-holding free RS sends a single resource token
   back; an NS routes it out of an unconsumed *entry* port (a port a
   request token arrived at), backtracking — and erasing markings —
   when none is available.  A token reaching an RQ bonds the pair;
   a token backtracking into its RS is discarded.

3. **Path registration**: links along each successful token's path
   flip state (free → registered; registered → free for cancelled
   flow), and each traversed NS splices its registered pairings.

When an iteration finds no augmenting path, surviving registered links
become the allocated circuits: the scheduler reads the mapping off the
registered paths and returns it (leaving the physical network
untouched, like the software schedulers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.mapping import Assignment, Mapping
from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.distributed.elements import NodeServer, PortKey, RequestServer, ResourceServer
from repro.distributed.events import Event, StatusBus
from repro.distributed.machine import GlobalState, next_state
from repro.networks.topology import Link, MultistageNetwork, PortRef

__all__ = ["DistributedOutcome", "DistributedScheduler", "TokenTrace"]


@dataclass
class TokenTrace:
    """Per-phase token activity, for the examples and figures."""

    iteration: int
    phase: str
    clock: int
    detail: str


@dataclass
class DistributedOutcome:
    """Result of one distributed scheduling cycle.

    Attributes
    ----------
    mapping:
        The optimal request→resource mapping found.
    iterations:
        Dinic phases executed (layered networks built).
    clocks:
        Total clock periods consumed — the distributed architecture's
        cost unit (gate delays, not instructions).
    state_trace:
        The Fig. 10 global states traversed, in order.
    bus_trace:
        Status-bus vectors sampled at each state transition.
    token_trace:
        Optional per-clock token log (``record=True``).
    """

    mapping: Mapping
    iterations: int
    clocks: int
    state_trace: list[GlobalState] = field(default_factory=list)
    bus_trace: list[str] = field(default_factory=list)
    token_trace: list[TokenTrace] = field(default_factory=list)


class _ResourceToken:
    """A propagating resource token (one per candidate RS)."""

    __slots__ = ("rs", "location", "arrived_at", "trail", "done", "failed")

    def __init__(self, rs: ResourceServer) -> None:
        self.rs = rs
        # location: ("rs", rs) | ("ns", NodeServer) | ("rq", RequestServer)
        self.location: tuple = ("rs", rs)
        self.arrived_at: PortKey | None = None  # port of current NS we sit at
        # trail: moves so far: ("rs-link", link) | (ns, entry, sent, link)
        self.trail: list = []
        self.done = False
        self.failed = False


class DistributedScheduler:
    """Token-propagation realisation of the optimal homogeneous scheduler.

    Functionally equivalent to
    ``OptimalScheduler(maxflow="dinic")`` on homogeneous MRSINs
    without priorities (the paper: distributed implementations only
    pay off for this discipline); additionally reports hardware-level
    cost in clock periods.
    """

    def __init__(self, *, record: bool = False) -> None:
        self.record = record

    # ------------------------------------------------------------------
    def schedule(
        self, mrsin: MRSIN, requests: Sequence[Request] | None = None
    ) -> DistributedOutcome:
        """Run one scheduling cycle and return the outcome."""
        if mrsin.is_heterogeneous:
            raise ValueError(
                "the distributed architecture handles homogeneous MRSINs; "
                "use OptimalScheduler for heterogeneous pools"
            )
        net = mrsin.network
        reqs = mrsin.schedulable_requests() if requests is None else list(requests)
        bus = StatusBus()
        outcome = DistributedOutcome(mapping=Mapping(), iterations=0, clocks=0)

        # --- Build the element processes -----------------------------
        rqs: dict[int, RequestServer] = {}
        for p in range(net.n_processors):
            rqs[p] = RequestServer(processor=p, link=net.processor_link(p))
        for req in reqs:
            rqs[req.processor].request = req
            bus.set(("rq", req.processor), Event.REQUEST_PENDING)
        rss: dict[int, ResourceServer] = {}
        for r in range(net.n_resources):
            rs = ResourceServer(resource=r, link=net.resource_link(r))
            rs.ready = mrsin.resources[r].available and not rs.link.occupied
            if rs.ready:
                bus.set(("rs", r), Event.RESOURCE_READY)
            rss[r] = rs
        nss: dict[tuple[int, int], NodeServer] = {}
        for stage_idx, stage in enumerate(net.stages):
            for box in stage:
                in_links = [
                    net.link_to(PortRef.box_in(stage_idx, box.index, p))
                    for p in range(box.n_in)
                ]
                out_links = [
                    net.link_from(PortRef.box_out(stage_idx, box.index, p))
                    for p in range(box.n_out)
                ]
                nss[(stage_idx, box.index)] = NodeServer(
                    stage=stage_idx, index=box.index,
                    in_links=in_links, out_links=out_links,
                )

        registered: set[int] = set()  # link indices carrying tentative flow

        # --- Fig. 10 driver -------------------------------------------
        # The bus choreography follows the paper's walkthrough:
        # 111000x during request propagation; an RS raises E6
        # (111001x) and tokens stop; E3/E6 drop and E4 rises
        # (110100x); registration raises E5 (110110x); then E4/E5
        # drop for the next iteration.
        state = GlobalState.IDLE
        self._trace_state(outcome, state, bus)
        state = next_state(state, bus)
        while state is GlobalState.REQUEST_PROPAGATION:
            outcome.iterations += 1
            bus.set("phase", Event.REQUEST_TOKENS)
            self._trace_state(outcome, state, bus)           # 111000x
            found = self._request_phase(outcome, bus, net, rqs, rss, nss, registered)
            if not found:
                bus.clear("phase", Event.REQUEST_TOKENS)
                state = next_state(state, bus)               # -> ALLOCATION
                break
            state = next_state(state, bus)                   # -> TOKEN_STOP
            self._trace_state(outcome, state, bus)           # 111001x
            outcome.clocks += 1                               # settle period
            bus.clear("phase", Event.REQUEST_TOKENS)
            for rs in rss.values():
                bus.clear(("rs", rs.resource), Event.RESOURCE_GOT_TOKEN)
            bus.set("phase", Event.RESOURCE_TOKENS)
            state = next_state(state, bus)                   # -> RESOURCE_PROPAGATION
            self._trace_state(outcome, state, bus)           # 110100x
            paths = self._resource_phase(outcome, bus, rqs, rss, nss, registered)
            bus.set("phase", Event.PATH_REGISTRATION)
            state = next_state(state, bus)                   # -> PATH_REGISTRATION
            self._trace_state(outcome, state, bus)           # 110110x
            self._registration_phase(outcome, bus, paths, nss, registered)
            bus.clear("phase", Event.RESOURCE_TOKENS)
            bus.clear("phase", Event.PATH_REGISTRATION)
            for rs in rss.values():
                rs.got_token = False
            for ns in nss.values():
                ns.reset_iteration()
            state = next_state(state, bus)                   # next iteration / ALLOCATION
        self._trace_state(outcome, state, bus)

        # --- Allocation: read the mapping off registered paths --------
        outcome.clocks += 1
        outcome.mapping = self._extract_mapping(mrsin, rqs, nss, registered)
        return outcome

    # ------------------------------------------------------------------
    def _trace_state(self, outcome: DistributedOutcome, state: GlobalState, bus: StatusBus) -> None:
        outcome.state_trace.append(state)
        outcome.bus_trace.append(bus.as_string())

    def _log(self, outcome: DistributedOutcome, iteration: int, phase: str, clock: int, detail: str) -> None:
        if self.record:
            outcome.token_trace.append(TokenTrace(iteration, phase, clock, detail))

    # ------------------------------------------------------------------
    def _request_phase(
        self,
        outcome: DistributedOutcome,
        bus: StatusBus,
        net: MultistageNetwork,
        rqs: dict[int, RequestServer],
        rss: dict[int, ResourceServer],
        nss: dict[tuple[int, int], NodeServer],
        registered: set[int],
    ) -> bool:
        """Phase 1: build the layered network by request tokens.

        Returns True if at least one RS received a token.
        """
        iteration = outcome.iterations
        # arrivals: list of (link, forward) traversals landing this clock.
        arrivals: list[tuple[Link, bool]] = []
        for rq in rqs.values():
            if rq.wants_token and rq.link.index not in registered:
                arrivals.append((rq.link, True))
        hit = False
        while arrivals and not hit:
            outcome.clocks += 1
            next_arrivals: list[tuple[Link, bool]] = []
            # Group arrivals by destination NS so a box sees its whole
            # first batch at once.
            fresh: dict[tuple[int, int], list[PortKey]] = {}
            for link, forward in arrivals:
                end = link.dst if forward else link.src
                if end.kind == "res":
                    rs = rss[end.box]
                    if rs.can_accept:
                        rs.got_token = True
                        bus.set(("rs", rs.resource), Event.RESOURCE_GOT_TOKEN)
                        hit = True
                        self._log(outcome, iteration, "request", outcome.clocks,
                                  f"RS r{rs.resource} received request token")
                    continue
                if end.kind == "proc":
                    # Backward token to a bonded RQ: absorbed.
                    self._log(outcome, iteration, "request", outcome.clocks,
                              f"token absorbed at RQ p{end.box}")
                    continue
                port: PortKey = ("in", end.port) if end.kind == "box_in" else ("out", end.port)
                fresh.setdefault((end.stage, end.box), []).append(port)
            for key, ports in fresh.items():
                ns = nss[key]
                if ns.fired:
                    continue  # later batches are discarded
                ns.fired = True
                for port in ports:
                    if port not in ns.received:
                        ns.received.append(port)
                # Duplicate: forward on free unmarked out links,
                # backward on registered unmarked in links.
                for p, link in enumerate(ns.out_links):
                    port = ("out", p)
                    if link is None or port in ns.received or port in ns.sent:
                        continue
                    if link.occupied or link.index in registered:
                        continue
                    ns.sent.add(port)
                    next_arrivals.append((link, True))
                for p, link in enumerate(ns.in_links):
                    port = ("in", p)
                    if link is None or port in ns.received or port in ns.sent:
                        continue
                    if link.index not in registered:
                        continue
                    ns.sent.add(port)
                    next_arrivals.append((link, False))
                self._log(outcome, iteration, "request", outcome.clocks,
                          f"NS({ns.stage},{ns.index}) fired: recv={ns.received} sent={sorted(ns.sent)}")
            arrivals = next_arrivals
        return hit

    # ------------------------------------------------------------------
    def _resource_phase(
        self,
        outcome: DistributedOutcome,
        bus: StatusBus,
        rqs: dict[int, RequestServer],
        rss: dict[int, ResourceServer],
        nss: dict[tuple[int, int], NodeServer],
        registered: set[int],
    ) -> list[_ResourceToken]:
        """Phase 2: resource tokens search for matching RQs (DFS).

        Returns the tokens that reached an RQ (their trails are the
        augmenting paths).
        """
        iteration = outcome.iterations
        tokens = [_ResourceToken(rs) for rs in rss.values() if rs.got_token and not rs.bonded]
        active = [t for t in tokens]
        while active:
            outcome.clocks += 1
            still: list[_ResourceToken] = []
            for token in active:
                self._step_resource_token(outcome, iteration, token, rqs, nss, registered)
                if not (token.done or token.failed):
                    still.append(token)
            active = still
        return [t for t in tokens if t.done]

    def _step_resource_token(
        self,
        outcome: DistributedOutcome,
        iteration: int,
        token: _ResourceToken,
        rqs: dict[int, RequestServer],
        nss: dict[tuple[int, int], NodeServer],
        registered: set[int],
    ) -> None:
        """Advance one resource token by one clock period."""
        kind = token.location[0]
        if kind == "rs":
            # Leave the RS backward along its (free) link to the last
            # stage NS; arrive at that box's out-port.
            link = token.rs.link
            src = link.src
            ns = nss[(src.stage, src.box)]
            token.location = ("ns", ns)
            token.arrived_at = ("out", src.port)
            token.trail.append(("rs-link", link))
            self._log(outcome, iteration, "resource", outcome.clocks,
                      f"token(r{token.rs.resource}) -> NS({ns.stage},{ns.index}) at out:{src.port}")
            return
        if kind != "ns":
            raise RuntimeError(
                f"token architecture invariant broken: resource token at "
                f"unexpected location kind {kind!r}; expected a node server"
            )
        ns: NodeServer = token.location[1]
        entry = ns.available_entry()
        if entry is None:
            self._backtrack(outcome, iteration, token, nss)
            return
        ns.consumed.add(entry)
        link = ns.link_at(entry)
        token.trail.append((ns, entry, token.arrived_at, link))
        side, _ = entry
        if side == "in":
            # Reverse a forward request move: travel upstream.
            upstream = link.src
            if upstream.kind == "proc":
                rq = rqs[upstream.box]
                rq.bonded = True
                token.done = True
                token.location = ("rq", rq)
                self._log(outcome, iteration, "resource", outcome.clocks,
                          f"token(r{token.rs.resource}) bonded RQ p{rq.processor}")
            else:
                nxt = nss[(upstream.stage, upstream.box)]
                token.location = ("ns", nxt)
                token.arrived_at = ("out", upstream.port)
                self._log(outcome, iteration, "resource", outcome.clocks,
                          f"token(r{token.rs.resource}) -> NS({nxt.stage},{nxt.index}) at out:{upstream.port}")
        else:
            # Reverse a backward (cancellation) request move: travel
            # downstream along the registered link.
            if link.index not in registered:
                raise RuntimeError(
                    "token architecture invariant broken: a cancellation "
                    f"move traversed unregistered link {link.index}"
                )
            downstream = link.dst
            nxt = nss[(downstream.stage, downstream.box)]
            token.location = ("ns", nxt)
            token.arrived_at = ("in", downstream.port)
            self._log(outcome, iteration, "resource", outcome.clocks,
                      f"token(r{token.rs.resource}) cancels -> NS({nxt.stage},{nxt.index}) at in:{downstream.port}")

    def _backtrack(
        self,
        outcome: DistributedOutcome,
        iteration: int,
        token: _ResourceToken,
        nss: dict[tuple[int, int], NodeServer],
    ) -> None:
        """Retreat one hop, erasing the fruitless entry marking."""
        last = token.trail.pop()
        if last[0] == "rs-link":
            token.failed = True
            self._log(outcome, iteration, "resource", outcome.clocks,
                      f"token(r{token.rs.resource}) returned to RS: unmatched")
            return
        prev_ns, entry, arrived_at, _link = last
        prev_ns.clear_entry(entry)  # the backtracking erasure rule
        token.location = ("ns", prev_ns)
        token.arrived_at = arrived_at
        self._log(outcome, iteration, "resource", outcome.clocks,
                  f"token(r{token.rs.resource}) backtracks to NS({prev_ns.stage},{prev_ns.index})")

    # ------------------------------------------------------------------
    def _registration_phase(
        self,
        outcome: DistributedOutcome,
        bus: StatusBus,
        paths: list[_ResourceToken],
        nss: dict[tuple[int, int], NodeServer],
        registered: set[int],
    ) -> None:
        """Phase 3: flip link states and splice NS pairings."""
        outcome.clocks += 1
        for token in paths:
            token.rs.bonded = True
            for move in token.trail:
                if move[0] == "rs-link":
                    link = move[1]
                    registered.add(link.index)
                    continue
                ns, entry, arrived_at, link = move
                # Flow XOR on the traversed link.
                if link.index in registered:
                    registered.remove(link.index)
                else:
                    registered.add(link.index)
                # Splice pairings.  ``arrived_at`` is the port the
                # request token was sent from (downstream attach side),
                # ``entry`` the port it arrived at (upstream side).
                ns.apply_pass(entry, arrived_at)

    # ------------------------------------------------------------------
    def _extract_mapping(
        self,
        mrsin: MRSIN,
        rqs: dict[int, RequestServer],
        nss: dict[tuple[int, int], NodeServer],
        registered: set[int],
    ) -> Mapping:
        """Trace registered paths from bonded RQs into the mapping."""
        mapping = Mapping()
        for rq in rqs.values():
            if not rq.bonded:
                continue
            links = [rq.link]
            if rq.link.index not in registered:
                raise RuntimeError(
                    "token architecture invariant broken: bonded RQ "
                    f"p{rq.processor} sits on unregistered link {rq.link.index}"
                )
            while links[-1].dst.kind != "res":
                dst = links[-1].dst
                ns = nss[(dst.stage, dst.box)]
                out_port = ns.pairs[dst.port]
                nxt = ns.out_links[out_port]
                if nxt is None or nxt.index not in registered:
                    raise RuntimeError(
                        "token architecture invariant broken: a registered "
                        "path dead-ends before reaching a resource server"
                    )
                links.append(nxt)
            resource = links[-1].dst.box
            mapping.add(
                Assignment(
                    request=rq.request,
                    resource=mrsin.resources[resource],
                    path=tuple(links),
                )
            )
        return mapping

"""The monitor architecture (Fig. 6): centralized software scheduling.

*"A dedicated monitor is responsible for resource scheduling ... In a
scheduling cycle, a flow network is generated according to the status
of the network.  The optimal request-resource mapping is derived by
the monitor using a flow algorithm implemented in software ... The
implementation is sequential, and the overhead is measured by the
number of instructions executed in the algorithm."*

:class:`MonitorScheduler` wraps the software pipeline
(Transformation 1 → Dinic → mapping extraction) with an
:class:`~repro.util.counters.OpCounter` and converts abstract
operations to an instruction estimate via :data:`INSTRUCTION_WEIGHTS`.
The DIST benchmark compares this against the distributed
architecture's clock count (Section IV's two speedup factors: parallel
path search, and gate delays instead of instruction cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.mapping import Mapping
from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.core.scheduler import OptimalScheduler
from repro.util.counters import OpCounter

__all__ = ["INSTRUCTION_WEIGHTS", "MonitorOutcome", "MonitorScheduler"]

# Instructions charged per abstract flow-algorithm operation.  The
# values are deliberately conservative (small) estimates for a simple
# in-order machine: scanning an arc is a few loads and a compare;
# visiting a node touches queue bookkeeping; augmenting updates flow
# fields along a path.
INSTRUCTION_WEIGHTS: dict[str, float] = {
    "arc_scan": 6.0,
    "node_visit": 8.0,
    "arc_update": 4.0,
    "augmentation": 12.0,
    "backtrack": 4.0,
    "transform_arc": 5.0,   # building the flow network from status
    "extract": 6.0,         # reading the mapping back out
}


@dataclass
class MonitorOutcome:
    """Result of one monitor scheduling cycle.

    Attributes
    ----------
    mapping:
        The optimal mapping (identical in size to the distributed
        architecture's — both are exact).
    operations:
        Raw operation counts by category.
    instructions:
        Weighted instruction estimate (the paper's cost unit for the
        monitor architecture).
    """

    mapping: Mapping
    operations: OpCounter
    instructions: float


class MonitorScheduler:
    """Centralized monitor running the flow algorithm in software."""

    def __init__(self, *, maxflow: str = "dinic", mincost: str = "out_of_kilter") -> None:
        self.maxflow = maxflow
        self.mincost = mincost

    def schedule(
        self, mrsin: MRSIN, requests: Sequence[Request] | None = None
    ) -> MonitorOutcome:
        """Run one scheduling cycle, charging an instruction budget.

        The transformation and extraction steps are charged too: the
        monitor must serially read network status and write switch
        settings, work the distributed architecture gets for free.
        """
        counter = OpCounter()
        inner = OptimalScheduler(
            maxflow=self.maxflow, mincost=self.mincost, counter=counter
        )
        mapping = inner.schedule(mrsin, requests)
        # Charge the serial transformation (one op per link scanned)
        # and extraction (one op per path link written back).
        counter.charge("transform_arc", len(mrsin.network.links))
        counter.charge("extract", sum(len(a.path) for a in mapping.assignments))
        return MonitorOutcome(
            mapping=mapping,
            operations=counter,
            instructions=counter.total(INSTRUCTION_WEIGHTS),
        )

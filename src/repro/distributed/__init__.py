"""Section IV: architectures that carry out the optimal scheduling.

Two realisations of the scheduling algorithms are provided, mirroring
the paper's comparison:

- :mod:`repro.distributed.monitor` — the **monitor architecture**
  (Fig. 6): a dedicated processor runs the flow algorithm in software;
  cost is measured in executed instructions.
- :mod:`repro.distributed.simulator` — the **distributed
  token-propagation architecture** (Figs. 9–10): every switchbox hosts
  an autonomous finite-state process; Dinic's algorithm emerges from
  request/resource token propagation synchronised by a 7-bit wired-OR
  status bus; cost is measured in clock periods of gate delay.

Supporting modules: :mod:`repro.distributed.events` (Table I events and
the status bus), :mod:`repro.distributed.elements` (RQ/RS/NS state),
and :mod:`repro.distributed.machine` (the Fig. 10 global state
diagram).
"""

from repro.distributed.events import Event, StatusBus
from repro.distributed.machine import GlobalState, next_state
from repro.distributed.elements import NodeServer, RequestServer, ResourceServer
from repro.distributed.simulator import DistributedOutcome, DistributedScheduler
from repro.distributed.monitor import MonitorOutcome, MonitorScheduler, INSTRUCTION_WEIGHTS
from repro.distributed.logic import ns_request_logic, gate_count, shared_gate_count, depth

__all__ = [
    "Event",
    "StatusBus",
    "GlobalState",
    "next_state",
    "NodeServer",
    "RequestServer",
    "ResourceServer",
    "DistributedOutcome",
    "DistributedScheduler",
    "MonitorOutcome",
    "MonitorScheduler",
    "INSTRUCTION_WEIGHTS",
    "ns_request_logic",
    "gate_count",
    "shared_gate_count",
    "depth",
]

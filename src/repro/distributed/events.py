"""Table I: the seven status-bus events and the wired-OR status bus.

The paper's status bus is *"a specialized global 'memory' device"*:
each process drives a single-bit register per event, the bus bit is the
wired-OR of all drivers, and every process can observe the full event
vector instantly.  This module models exactly that: per-element
contributions OR-ed into a 7-bit vector.

==  =============================  ==================  ===
E   Definition                     Associated          Bit
==  =============================  ==================  ===
E1  Request pending                RQs                 6 (MSB)
E2  Resource ready                 RSs                 5
E3  Request token propagation      RQs, NSs            4
E4  Resource token propagation     RSs, NSs            3
E5  Path registration              NSs                 2
E6  An RS received a token         RSs                 1
E7  An RQ is bonded to an RS       RQs                 0 (LSB)
==  =============================  ==================  ===
"""

from __future__ import annotations

import enum
from typing import Hashable

__all__ = ["Event", "StatusBus"]


class Event(enum.IntEnum):
    """Status-bus events; the value is the bit position (MSB = E1)."""

    REQUEST_PENDING = 6        # E1
    RESOURCE_READY = 5         # E2
    REQUEST_TOKENS = 4         # E3
    RESOURCE_TOKENS = 3        # E4
    PATH_REGISTRATION = 2      # E5
    RESOURCE_GOT_TOKEN = 1     # E6
    RQ_BONDED = 0              # E7


class StatusBus:
    """A 7-bit wired-OR status bus.

    Every element contributes its own register via
    :meth:`set` / :meth:`clear`; the observable bus value is the OR
    over all contributions.  There is deliberately no way to force a
    bus bit low while any element still drives it — that is the
    wired-OR semantics the hardware gives.
    """

    N_BITS = 7

    def __init__(self) -> None:
        self._drivers: dict[Event, set[Hashable]] = {event: set() for event in Event}

    def set(self, element: Hashable, event: Event) -> None:
        """Element drives ``event`` high."""
        self._drivers[event].add(element)

    def clear(self, element: Hashable, event: Event) -> None:
        """Element stops driving ``event`` (idempotent)."""
        self._drivers[event].discard(element)

    def clear_all(self, element: Hashable) -> None:
        """Element releases every bit it drives."""
        for drivers in self._drivers.values():
            drivers.discard(element)

    def read(self, event: Event) -> bool:
        """Observed value of one bus bit."""
        return bool(self._drivers[event])

    def drivers(self, event: Event) -> frozenset[Hashable]:
        """Elements currently driving an event (diagnostic view)."""
        return frozenset(self._drivers[event])

    def vector(self) -> tuple[int, ...]:
        """The bus as an E1..E7 bit tuple (paper's state-vector order)."""
        return tuple(int(self.read(e)) for e in sorted(Event, reverse=True))

    def as_string(self) -> str:
        """Bus vector as a bit string, e.g. ``"1110000"``."""
        return "".join(map(str, self.vector()))

    def reset(self) -> None:
        """Release every driver (power-on state)."""
        for drivers in self._drivers.values():
            drivers.clear()

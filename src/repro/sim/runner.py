"""Parameter sweeps rendered as paper-style result tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.sim.blocking import BlockingEstimate, estimate_blocking
from repro.sim.workload import WorkloadSpec
from repro.util.labels import label_hash
from repro.util.tables import Table

__all__ = ["SweepResult", "sweep"]


@dataclass
class SweepResult:
    """All estimates from one sweep, plus a rendered table.

    ``rows`` maps ``(point_label, policy)`` to the estimate.
    """

    title: str
    policies: Sequence[str]
    points: Sequence[str]
    rows: dict[tuple[str, str], BlockingEstimate] = field(default_factory=dict)

    def estimate(self, point: str, policy: str) -> BlockingEstimate:
        """The estimate at one sweep point for one policy."""
        return self.rows[(point, policy)]

    def render(self) -> str:
        """ASCII table: one row per sweep point, one column per policy."""
        table = Table(
            headers=["point"] + [f"{p} P(block)" for p in self.policies],
            title=self.title,
        )
        for point in self.points:
            cells: list[Any] = [point]
            for policy in self.policies:
                est = self.rows[(point, policy)]
                lo, hi = est.ci95
                cells.append(f"{est.probability:.3f} [{lo:.3f},{hi:.3f}]")
            table.add_row(*cells)
        return table.render()


def _label_offset(label: str) -> int:
    """A stable 32-bit seed offset derived from the point label.

    Hashing the label (rather than the enumeration index) means
    inserting, removing, or reordering sweep points leaves every other
    point's instance stream untouched.  Delegates to
    :func:`repro.util.labels.label_hash` (SHA-256-backed) for
    stability across processes and Python versions — builtin ``hash``
    is salted and must never feed a seed.
    """
    return label_hash(label, bits=32)


def sweep(
    title: str,
    points: Iterable[tuple[str, WorkloadSpec]],
    policies: Sequence[str],
    *,
    trials: int = 100,
    seed: int = 0,
) -> SweepResult:
    """Estimate blocking for every (sweep point, policy) pair.

    All policies see the same instance stream at each point: the
    per-point seed is ``seed`` plus a stable hash of the point label,
    so columns are directly comparable and adding or reordering points
    never perturbs the streams of existing points.
    """
    points = list(points)
    result = SweepResult(title=title, policies=list(policies), points=[p for p, _ in points])
    for label, spec in points:
        for policy in policies:
            result.rows[(label, policy)] = estimate_blocking(
                spec, policy, trials=trials, seed=seed + _label_offset(label)
            )
    return result

"""Monte Carlo evaluation substrate for the paper's simulation claims.

The paper quotes simulation results ([22], [44], [45]) — blocking
probability *"as low as 2 percent"* for optimal scheduling on an 8x8
cube MRSIN, *"less than 5 percent"* on the Omega, *"around 20
percent"* for heuristic routing.  The authors' exact workloads are not
published in this paper, so this subpackage rebuilds the experiment:

- :mod:`repro.sim.workload` — random request/free-resource patterns,
  pre-occupied circuits, priority and type samplers;
- :mod:`repro.sim.blocking` — blocking-probability estimation for any
  scheduler policy, with sweep drivers;
- :mod:`repro.sim.queueing` — a discrete-event model of the Section II
  task lifecycle (queue → transmit → serve) for utilization and
  response-time experiments;
- :mod:`repro.sim.metrics` — summary statistics and binomial
  confidence intervals;
- :mod:`repro.sim.runner` — parameter sweeps rendered as paper-style
  tables.
"""

from repro.sim.workload import (
    WorkloadSpec,
    sample_instance,
    occupy_random_circuits,
    occupy_random_links,
)
from repro.sim.blocking import BlockingEstimate, estimate_blocking, POLICIES
from repro.sim.metrics import mean_and_ci, wilson_interval
from repro.sim.queueing import QueueingResult, simulate_queueing
from repro.sim.runner import sweep, SweepResult

__all__ = [
    "WorkloadSpec",
    "sample_instance",
    "occupy_random_circuits",
    "occupy_random_links",
    "BlockingEstimate",
    "estimate_blocking",
    "POLICIES",
    "mean_and_ci",
    "wilson_interval",
    "QueueingResult",
    "simulate_queueing",
    "sweep",
    "SweepResult",
]

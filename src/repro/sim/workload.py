"""Workload generation: random scheduling instances for the experiments.

A scheduling instance is one snapshot handed to a scheduler: which
processors request, which resources are free, what is already occupied
in the network.  :class:`WorkloadSpec` captures the paper's knobs —
request/free densities, prior occupancy, priorities, resource type
mixes — and :func:`sample_instance` draws a concrete
:class:`~repro.core.model.MRSIN` state from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.core.model import MRSIN
from repro.core.requests import DEFAULT_TYPE, Request
from repro.networks.topology import MultistageNetwork
from repro.util.rng import make_rng

__all__ = [
    "WorkloadSpec",
    "sample_instance",
    "occupy_random_circuits",
    "occupy_random_links",
]


def occupy_random_circuits(
    net: MultistageNetwork,
    mrsin: MRSIN,
    n_circuits: int,
    rng: np.random.Generator,
    max_attempts: int = 200,
) -> int:
    """Establish up to ``n_circuits`` random processor→resource circuits.

    Models the *"network is not completely free"* regime: other
    allocations already hold paths.  The target resources are marked
    busy.  Returns the number actually established (dense networks may
    not admit all).
    """
    established = 0
    attempts = 0
    while established < n_circuits and attempts < max_attempts:
        attempts += 1
        p = int(rng.integers(0, net.n_processors))
        r = int(rng.integers(0, net.n_resources))
        if net.processor_link(p).occupied or mrsin.resources[r].busy:
            continue
        path = net.find_free_path(p, r)
        if path is None:
            continue
        net.establish_circuit(path)
        mrsin.resources[r].busy = True
        established += 1
    return established


def occupy_random_links(
    net: MultistageNetwork, fraction: float, rng: np.random.Generator
) -> int:
    """Occupy each link independently with probability ``fraction``.

    Harsher than circuit occupancy (links may be held by traffic the
    scheduler does not control); used in robustness tests.
    """
    count = 0
    for link in net.links:
        if rng.random() < fraction:
            link.occupied = True
            count += 1
    return count


@dataclass
class WorkloadSpec:
    """Parameters of a random scheduling instance.

    Attributes
    ----------
    builder:
        Topology constructor, e.g. ``repro.networks.omega``.
    n_ports:
        Network size (processors = resources = ``n_ports`` for the
        square builders).
    request_density:
        Probability each processor has a pending request.
    free_density:
        Probability each resource is free.
    occupied_circuits:
        Circuits established before the cycle (their resources count
        as busy on top of ``free_density``).
    priority_levels:
        If > 1, request priorities are drawn uniformly from
        ``1..priority_levels`` and resource preferences likewise.
    resource_types:
        Types assigned cyclically to resources; requests draw a type
        uniformly from this list.  ``None`` = homogeneous.
    """

    builder: Callable[[int], MultistageNetwork]
    n_ports: int = 8
    request_density: float = 1.0
    free_density: float = 1.0
    occupied_circuits: int = 0
    priority_levels: int = 1
    resource_types: Sequence[Hashable] | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.request_density <= 1.0:
            raise ValueError(f"request_density {self.request_density} outside [0, 1]")
        if not 0.0 <= self.free_density <= 1.0:
            raise ValueError(f"free_density {self.free_density} outside [0, 1]")
        if self.priority_levels < 1:
            raise ValueError("priority_levels must be >= 1")


def sample_instance(
    spec: WorkloadSpec, rng: int | np.random.Generator | None = None
) -> MRSIN:
    """Draw one random MRSIN state from ``spec``.

    The returned model has requests queued and occupancy applied;
    hand it straight to any scheduler policy.
    """
    gen = make_rng(rng)
    net = spec.builder(spec.n_ports)
    if spec.resource_types is not None:
        types = [
            spec.resource_types[i % len(spec.resource_types)]
            for i in range(net.n_resources)
        ]
    else:
        types = None
    if spec.priority_levels > 1:
        prefs = [int(gen.integers(1, spec.priority_levels + 1)) for _ in range(net.n_resources)]
    else:
        prefs = None
    mrsin = MRSIN(
        net,
        resource_types=types,
        preferences=prefs,
        max_priority=max(spec.priority_levels, 1),
        max_preference=max(spec.priority_levels, 1),
    )
    occupy_random_circuits(net, mrsin, spec.occupied_circuits, gen)
    for res in mrsin.resources:
        if not res.busy and gen.random() >= spec.free_density:
            res.busy = True
    for p in range(net.n_processors):
        if net.processor_link(p).occupied:
            continue
        if gen.random() < spec.request_density:
            rtype = (
                DEFAULT_TYPE
                if spec.resource_types is None
                else spec.resource_types[int(gen.integers(0, len(spec.resource_types)))]
            )
            priority = (
                1 if spec.priority_levels == 1
                else int(gen.integers(1, spec.priority_levels + 1))
            )
            mrsin.submit(Request(p, resource_type=rtype, priority=priority))
    return mrsin

"""Discrete-event simulation of the Section II task lifecycle.

Model items 4–5 of the paper: tasks arrive at processors (Poisson),
each needs exactly one resource; a processor transmits one task at a
time; the circuit is held only for the transmission, after which the
processor may issue further requests while the resource stays busy for
the service time.  Scheduling cycles run whenever requests are pending
and resources are ready.

The simulator measures resource utilization and task response time as
functions of offered load — the system-level payoff of low blocking
(the paper: *"The extra delay ... may decrease the utilization of
resources, and hence increase the response time of the system"*).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.heuristic import greedy_schedule, random_binding_schedule
from repro.core.mapping import Mapping
from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.core.scheduler import OptimalScheduler
from repro.util.rng import make_rng

__all__ = ["QueueingResult", "simulate_queueing"]


@dataclass
class QueueingResult:
    """Steady-state estimates from one queueing run.

    Attributes
    ----------
    utilization:
        Time-averaged fraction of busy resources.
    mean_response:
        Mean task time-in-system (arrival → service completion).
    completed:
        Tasks finished within the horizon.
    offered_load:
        ``arrival_rate * mean_service / n_resources`` — the normalized
        load the run was driven at.
    mean_queue:
        Time-averaged number of queued (unscheduled) tasks.
    """

    utilization: float
    mean_response: float
    completed: int
    offered_load: float
    mean_queue: float


def _make_policy(policy: str, rng: np.random.Generator) -> Callable[[MRSIN], Mapping]:
    if policy == "optimal":
        sched = OptimalScheduler()
        return lambda m: sched.schedule(m)
    if policy == "greedy":
        return lambda m: greedy_schedule(m, order="random", rng=rng)
    if policy == "random_binding":
        return lambda m: random_binding_schedule(m, rng=rng)
    raise ValueError(f"unknown policy {policy!r}")


def simulate_queueing(
    mrsin: MRSIN,
    *,
    policy: str = "optimal",
    arrival_rate: float = 1.0,
    mean_service: float = 1.0,
    transmission_time: float = 0.1,
    horizon: float = 200.0,
    warmup: float = 20.0,
    min_batch: int = 1,
    type_weights: dict | None = None,
    seed: int | np.random.Generator | None = None,
) -> QueueingResult:
    """Run the task-lifecycle simulation on ``mrsin``.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate *per processor*.
    mean_service:
        Mean of the exponential resource service time.
    transmission_time:
        Fixed circuit-holding time per task (model item 5).
    horizon, warmup:
        Simulated time; statistics ignore the first ``warmup``.
    min_batch:
        Scheduling-cycle trigger: wait until at least this many
        requests are pending before scheduling — the paper's Fig. 10
        option to *"wait for more requests to arrive and more
        resources to become available before entering a scheduling
        cycle"*.  1 = schedule eagerly.
    type_weights:
        For heterogeneous systems: ``{resource_type: weight}``; each
        arriving task draws its required type with these odds.  Must
        cover only types present in the pool.  ``None`` = homogeneous
        (every request uses the default type).
    """
    if min_batch < 1:
        raise ValueError(f"min_batch must be >= 1, got {min_batch}")
    type_names: list = []
    type_probs: list[float] = []
    if type_weights:
        unknown = set(type_weights) - mrsin.resource_types
        if unknown:
            raise ValueError(f"no resources of type(s) {unknown}")
        total_w = float(sum(type_weights.values()))
        type_names = list(type_weights)
        type_probs = [w / total_w for w in type_weights.values()]
    rng = make_rng(seed)
    dispatch = _make_policy(policy, rng)
    mrsin.reset()
    n_proc = mrsin.n_processors
    tie = itertools.count()
    events: list[tuple[float, int, str, object]] = []

    def push(t: float, kind: str, payload: object = None) -> None:
        heapq.heappush(events, (t, next(tie), kind, payload))

    for p in range(n_proc):
        push(float(rng.exponential(1.0 / arrival_rate)), "arrival", p)

    arrival_time: dict[object, float] = {}
    # Integrators for time-averaged statistics.
    last_t = 0.0
    busy_integral = 0.0
    queue_integral = 0.0
    responses: list[float] = []
    completed = 0
    needs_schedule = False

    def integrate(now: float) -> None:
        nonlocal last_t, busy_integral, queue_integral
        span = now - last_t
        if span > 0 and now > warmup:
            span = min(span, now - max(last_t, warmup))
            busy_integral += span * sum(r.busy for r in mrsin.resources)
            queue_integral += span * len(mrsin.pending)
        last_t = now

    while events:
        now, _, kind, payload = heapq.heappop(events)
        if now > horizon:
            integrate(horizon)
            break
        integrate(now)
        if kind == "arrival":
            p = payload
            tag = (p, now)
            arrival_time[tag] = now
            if type_names:
                idx = int(rng.choice(len(type_names), p=type_probs))
                mrsin.submit(Request(p, resource_type=type_names[idx], tag=tag))
            else:
                mrsin.submit(Request(p, tag=tag))
            push(now + float(rng.exponential(1.0 / arrival_rate)), "arrival", p)
            needs_schedule = True
        elif kind == "transmission_done":
            mrsin.complete_transmission(payload)
            needs_schedule = True
        elif kind == "service_done":
            r, tag = payload
            mrsin.complete_service(r)
            completed += 1
            if now > warmup:
                responses.append(now - arrival_time[tag])
            del arrival_time[tag]
            needs_schedule = True
        if (
            needs_schedule
            and len(mrsin.pending) >= min_batch
            and mrsin.free_resources()
        ):
            needs_schedule = False
            mapping = dispatch(mrsin)
            if mapping.assignments:
                mrsin.apply_mapping(mapping)
                for a in mapping.assignments:
                    r = a.resource.index
                    push(now + transmission_time, "transmission_done", r)
                    service = transmission_time + float(rng.exponential(mean_service))
                    push(now + service, "service_done", (r, a.request.tag))
    window = max(horizon - warmup, 1e-9)
    return QueueingResult(
        utilization=busy_integral / (window * mrsin.n_resources),
        mean_response=(sum(responses) / len(responses)) if responses else 0.0,
        completed=completed,
        offered_load=arrival_rate * n_proc * mean_service / mrsin.n_resources,
        mean_queue=queue_integral / window,
    )

"""Blocking-probability estimation — the SIM-BLOCK experiment engine.

Blocking probability follows the paper's notion: of the
``min(#requests, #free resources)`` allocations an ideal nonblocking
network could make, the fraction a policy fails to make because of
circuit blockages.  Policies:

- ``"optimal"`` — the flow-based :class:`~repro.core.scheduler.OptimalScheduler`;
- ``"distributed"`` — the token-propagation architecture (identical
  optimum; included to cross-check the hardware path end to end);
- ``"greedy"`` — address-mapped first-fit with retry over free
  resources;
- ``"random_binding"`` — pure address mapping: random binding, no
  retry (the paper's ~20% heuristic);
- ``"arbitrary"`` — i-th request to i-th free resource (the paper's
  "arbitrary mapping", used in the extra-stage experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.heuristic import arbitrary_schedule, greedy_schedule, random_binding_schedule
from repro.core.model import MRSIN
from repro.core.scheduler import OptimalScheduler
from repro.distributed.simulator import DistributedScheduler
from repro.sim.metrics import wilson_interval
from repro.sim.workload import WorkloadSpec, sample_instance
from repro.util.rng import spawn_rngs

__all__ = ["POLICIES", "BlockingEstimate", "estimate_blocking"]


def _run_optimal(mrsin: MRSIN, rng: np.random.Generator) -> int:
    return len(OptimalScheduler().schedule(mrsin))


def _run_distributed(mrsin: MRSIN, rng: np.random.Generator) -> int:
    return len(DistributedScheduler().schedule(mrsin).mapping)


def _run_greedy(mrsin: MRSIN, rng: np.random.Generator) -> int:
    return len(greedy_schedule(mrsin, order="random", rng=rng))


def _run_random_binding(mrsin: MRSIN, rng: np.random.Generator) -> int:
    return len(random_binding_schedule(mrsin, rng=rng))


def _run_arbitrary(mrsin: MRSIN, rng: np.random.Generator) -> int:
    return len(arbitrary_schedule(mrsin))


POLICIES: dict[str, Callable[[MRSIN, np.random.Generator], int]] = {
    "optimal": _run_optimal,
    "distributed": _run_distributed,
    "greedy": _run_greedy,
    "random_binding": _run_random_binding,
    "arbitrary": _run_arbitrary,
}


def _ideal_allocations(mrsin: MRSIN) -> int:
    """Allocations an ideal nonblocking network could make:
    ``sum over types of min(#requests, #free resources)``."""
    reqs_by_type: dict = {}
    for req in mrsin.schedulable_requests():
        reqs_by_type[req.resource_type] = reqs_by_type.get(req.resource_type, 0) + 1
    total = 0
    for rtype, n_req in reqs_by_type.items():
        total += min(n_req, len(mrsin.free_resources(rtype)))
    return total


@dataclass
class BlockingEstimate:
    """Monte Carlo estimate of a policy's blocking probability.

    Attributes
    ----------
    policy:
        Policy name (a :data:`POLICIES` key).
    blocked, possible:
        Total blocked allocations over total possible allocations.
    trials:
        Number of instances sampled.
    """

    policy: str
    blocked: int
    possible: int
    trials: int

    @property
    def probability(self) -> float:
        """Point estimate of the blocking probability."""
        return self.blocked / self.possible if self.possible else 0.0

    @property
    def ci95(self) -> tuple[float, float]:
        """Wilson 95% interval for the blocking probability."""
        if self.possible == 0:
            return (0.0, 0.0)
        return wilson_interval(self.blocked, self.possible)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.ci95
        return (
            f"BlockingEstimate({self.policy}: {self.probability:.3f} "
            f"[{lo:.3f}, {hi:.3f}], n={self.trials})"
        )


def estimate_blocking(
    spec: WorkloadSpec,
    policy: str,
    *,
    trials: int = 100,
    seed: int | np.random.Generator | None = None,
) -> BlockingEstimate:
    """Estimate a policy's blocking probability under ``spec``.

    Each trial samples a fresh instance (instance randomness and
    policy randomness drawn from independent child streams so policies
    can be compared on identical instance sequences by fixing
    ``seed``).
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {sorted(POLICIES)}")
    run = POLICIES[policy]
    instance_rngs = spawn_rngs(seed, trials)
    blocked = 0
    possible = 0
    for i in range(trials):
        instance_seed, policy_rng = spawn_rngs(instance_rngs[i], 2)
        mrsin = sample_instance(spec, instance_seed)
        ideal = _ideal_allocations(mrsin)
        if ideal == 0:
            continue
        served = run(mrsin, policy_rng)
        blocked += ideal - served
        possible += ideal
    return BlockingEstimate(policy=policy, blocked=blocked, possible=possible, trials=trials)

"""Summary statistics for the Monte Carlo experiments."""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["mean_and_ci", "wilson_interval"]

# 97.5% normal quantile for 95% two-sided intervals.
Z95 = 1.959963984540054


def mean_and_ci(values: Sequence[float], z: float = Z95) -> tuple[float, float]:
    """Sample mean and half-width of its normal 95% confidence interval."""
    n = len(values)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(values) / n
    if n == 1:
        return mean, math.inf
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, z * math.sqrt(var / n)


def wilson_interval(successes: int, trials: int, z: float = Z95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Better behaved than the normal approximation near 0 — exactly
    where the optimal scheduler's blocking probability lives (~2%).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} outside [0, {trials}]")
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    # Pin the exact boundary cases against float fuzz: the interval
    # must always bracket the point estimate.
    lo = 0.0 if successes == 0 else max(0.0, centre - half)
    hi = 1.0 if successes == trials else min(1.0, centre + half)
    return min(lo, p), max(hi, p)

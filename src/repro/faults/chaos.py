"""Chaos harness: fault/repair churn against a live allocation service.

:func:`run_chaos` drives an :class:`~repro.service.server.AllocationService`
for thousands of manually stepped ticks under a
:class:`~repro.service.clock.VirtualClock`, with a seeded
:class:`~repro.faults.injector.FaultInjector` failing and repairing
links, switchboxes, and resources mid-flight, Poisson request arrivals
queueing on ``acquire``, and leases walking the full
transmit → serve → release lifecycle.  Every tick it enforces three
hard invariants (real exceptions, so they survive ``python -O``):

1. **No circuit over a failed component** — after
   :meth:`~repro.service.server.AllocationService.reconcile_faults`,
   no severed allocation remains and no failed link is occupied;
2. **No lease leaks** — busy resources and active leases stay in
   one-to-one correspondence across every revocation;
3. **Warm == cold** — the warm-start engine allocates exactly as many
   requests per tick as a cold from-scratch optimal solve on the same
   degraded network (Theorem 2 on the surviving subgraph).

A violation raises :class:`ChaosInvariantError`; a clean run returns a
:class:`ChaosReport`.  ``python -m repro chaos`` wraps this, and CI
runs a 2000-tick omega-32 schedule on every push.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.model import MRSIN
from repro.core.requests import Request
from repro.core.scheduler import OptimalScheduler
from repro.faults.injector import FaultInjector
from repro.networks import benes, clos, omega
from repro.service.clock import VirtualClock
from repro.service.server import AllocationService, Lease, ServiceConfig
from repro.util.rng import spawn_rngs
from repro.util.tables import Table

__all__ = ["BUILDERS", "ChaosInvariantError", "ChaosReport", "run_chaos"]

#: Chaos topologies (a subset of the CLI registry; kept local so the
#: CLI can import this module without a cycle).
BUILDERS: dict[str, Callable[[int], Any]] = {
    "omega": omega,
    "benes": benes,
    "clos": lambda n: clos(max(n // 2, 1), 2, max(n // 2, 1)),
}


class ChaosInvariantError(Exception):
    """A hard invariant of the fault model was violated mid-churn."""


@dataclass
class ChaosReport:
    """Outcome of one clean chaos run (invariants all held)."""

    topology: str
    ports: int
    ticks: int
    seed: int
    allocated: int
    released: int
    revoked: int
    rejected: int
    faults_injected: int
    repairs_applied: int
    differential_checks: int
    max_concurrent_failures: int

    def render(self) -> str:
        """ASCII summary table."""
        table = Table(
            ["metric", "value"],
            title=f"chaos: {self.topology}-{self.ports}, "
                  f"{self.ticks} ticks, seed={self.seed}",
        )
        for key in (
            "allocated", "released", "revoked", "rejected",
            "faults_injected", "repairs_applied", "differential_checks",
            "max_concurrent_failures",
        ):
            table.add_row(key, getattr(self, key))
        table.add_row("invariants", "all held")
        return table.render()


def run_chaos(
    *,
    topology: str = "omega",
    ports: int = 32,
    ticks: int = 2000,
    seed: int = 0,
    rate: float = 0.4,
    fault_rate: float = 0.08,
    transient_fraction: float = 0.85,
    mean_repair: float = 6.0,
    check_every: int = 1,
) -> ChaosReport:
    """Run the chaos schedule; returns a report or raises on violation.

    Parameters
    ----------
    topology, ports:
        System under churn (see :data:`BUILDERS`).
    ticks:
        Scheduling cycles to drive (the virtual clock advances one
        time unit per tick).
    seed:
        Master seed; arrivals, holds, and the fault schedule are all
        derived streams, so a run is a pure function of its arguments.
    rate:
        Poisson request arrivals per processor per tick.
    fault_rate, transient_fraction, mean_repair:
        Forwarded to :class:`~repro.faults.injector.FaultInjector`.
    check_every:
        Run the cold-vs-warm differential every this many ticks
        (1 = every tick; raise it to trade confidence for speed).
    """
    if topology not in BUILDERS:
        raise ValueError(f"unknown chaos topology {topology!r}; pick from {sorted(BUILDERS)}")
    if ticks < 1:
        raise ValueError(f"ticks must be >= 1, got {ticks}")
    if check_every < 1:
        raise ValueError(f"check_every must be >= 1, got {check_every}")
    return asyncio.run(
        _churn(
            topology=topology, ports=ports, ticks=ticks, seed=seed, rate=rate,
            fault_rate=fault_rate, transient_fraction=transient_fraction,
            mean_repair=mean_repair, check_every=check_every,
        )
    )


async def _churn(
    *,
    topology: str,
    ports: int,
    ticks: int,
    seed: int,
    rate: float,
    fault_rate: float,
    transient_fraction: float,
    mean_repair: float,
    check_every: int,
) -> ChaosReport:
    clock = VirtualClock()
    arrival_rng, fault_rng, hold_rng = spawn_rngs(seed, 3)
    mrsin = MRSIN(BUILDERS[topology](ports))
    n_procs = mrsin.n_processors
    # No deadlines: deadline expiry inside run_one_cycle would shrink
    # the queue between peek_batch() and the tick, skewing the
    # differential.  Backpressure still applies via the bounded queue.
    config = ServiceConfig(
        queue_limit=max(4 * n_procs, 8),
        default_timeout=None,
        warm_start=True,
    )
    service = AllocationService(mrsin, config=config, clock=clock)
    injector = FaultInjector(
        mrsin, rng=fault_rng, fault_rate=fault_rate,
        transient_fraction=transient_fraction, mean_repair=mean_repair,
    )
    cold = OptimalScheduler()
    pending: list[asyncio.Task] = []
    held: list[tuple[int, int, Lease]] = []  # (end_tx_tick, release_tick, lease)
    allocated = released = rejected = differential_checks = 0
    max_failures = 0
    try:
        for tick in range(ticks):
            now = float(tick)
            # 1. Arrivals: fire-and-forget acquire tasks.
            for _ in range(int(arrival_rng.poisson(rate * n_procs))):
                proc = int(arrival_rng.integers(0, n_procs))
                pending.append(asyncio.ensure_future(service.acquire(Request(proc))))
            await asyncio.sleep(0)  # let each task run to its await (enqueue)
            # 2. Lease lifecycle: end transmissions and releases due now.
            surviving: list[tuple[int, int, Lease]] = []
            for end_tx, rel, lease in held:
                if lease.revoked:
                    continue  # the service reclaimed it at a tick boundary
                if tick >= rel:
                    service.release(lease)
                    released += 1
                    continue
                if tick >= end_tx and lease.transmitting:
                    service.end_transmission(lease)
                surviving.append((end_tx, rel, lease))
            held = surviving
            # 3. Fault/repair events due this tick.
            injector.inject(service, now)
            # 4. Reconcile, then enforce the invariants.
            service.reconcile_faults()
            _check_invariants(service, mrsin, tick)
            failed = mrsin.failed_components()
            max_failures = max(
                max_failures,
                len(failed["links"]) + len(failed["switchboxes"]) + len(failed["resources"]),
            )
            # 5. The tick itself, with the cold-vs-warm differential.
            if tick % check_every == 0:
                batch = service.peek_batch()
                cold_count = len(cold.schedule(mrsin, batch)) if batch else 0
                differential_checks += 1
            else:
                batch, cold_count = None, -1
            leases = service.run_one_cycle()
            if batch is not None and len(leases) != cold_count:
                raise ChaosInvariantError(
                    f"tick {tick}: warm-start allocated {len(leases)} of "
                    f"{len(batch)} requests but a cold optimal solve on the "
                    f"same degraded network allocates {cold_count}"
                )
            for lease in leases:
                hold = int(hold_rng.integers(1, 6))
                held.append((tick + 1, tick + 1 + hold, lease))
                allocated += 1
            await asyncio.sleep(0)  # deliver lease futures to their tasks
            still: list[asyncio.Task] = []
            for task in pending:
                if task.done():
                    if task.exception() is not None:
                        rejected += 1  # AllocationRejected off the full queue
                else:
                    still.append(task)
            pending = still
            await clock.run_until(now + 1.0)
    finally:
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)
        await service.close()
    snap = service.metrics.snapshot()
    return ChaosReport(
        topology=topology,
        ports=ports,
        ticks=ticks,
        seed=seed,
        allocated=allocated,
        released=released,
        revoked=snap["revoked"],
        rejected=rejected,
        faults_injected=snap["faults_injected"],
        repairs_applied=snap["repairs_applied"],
        differential_checks=differential_checks,
        max_concurrent_failures=max_failures,
    )


def _check_invariants(service: AllocationService, mrsin: MRSIN, tick: int) -> None:
    """Invariants 1 and 2, as real raises (``python -O`` safe)."""
    severed = mrsin.severed_resources()
    if severed:
        raise ChaosInvariantError(
            f"tick {tick}: severed allocations {severed} survived reconcile_faults"
        )
    for link in mrsin.network.links:
        if link.failed and link.occupied:
            raise ChaosInvariantError(
                f"tick {tick}: failed link {link.index} still carries a circuit"
            )
    busy = sum(1 for res in mrsin.resources if res.busy)
    if busy != service.active_leases:
        raise ChaosInvariantError(
            f"tick {tick}: {busy} busy resources vs {service.active_leases} "
            f"active leases — a lease leaked across a revocation"
        )

"""Fault injection and chaos testing for the MRSIN stack.

The paper's monitor assumes a healthy network; this subpackage asks
what happens when it isn't.  Components (links, switchboxes,
resources) fail and get repaired; the flow transformations exclude
failed components at capacity 0, so every solve is optimal for the
*surviving* subnetwork, and the allocation service revokes leases
whose circuits a fault severed (see :mod:`repro.service.server`).

- :mod:`repro.faults.injector` — :class:`FaultInjector`: a seeded,
  deterministic Poisson source of permanent and transient
  fault/repair events, driven by the service clock;
- :mod:`repro.faults.chaos` — :func:`run_chaos`: thousands of ticks
  of random fault/repair churn against a live allocation service,
  with hard invariants (no circuit over a failed link, no lease
  leaks, warm-start == cold allocation counts) enforced every tick.
  ``python -m repro chaos`` is the CLI wrapper.
"""

from repro.faults.chaos import ChaosInvariantError, ChaosReport, run_chaos
from repro.faults.injector import FaultEvent, FaultInjector, apply_event

__all__ = [
    "ChaosInvariantError",
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "apply_event",
    "run_chaos",
]

"""Seeded deterministic fault/repair event source.

A :class:`FaultInjector` turns a numpy generator into a Poisson stream
of :class:`FaultEvent`\\ s against one MRSIN: each fault picks a
component class (link, switchbox, resource) and a concrete target
uniformly; *transient* faults carry an exponentially distributed
repair that is scheduled onto the same timeline, *permanent* ones
never heal.  Events are produced strictly in time order (ties broken
by generation order), so the same seed yields the identical fault
history — the property the chaos harness's differential checks and
the CI job rely on.

The injector never touches the MRSIN itself; :func:`apply_event` (or
:meth:`~repro.service.server.AllocationService.apply_fault_event`,
which also counts metrics) performs the mutation.  This keeps the
schedule replayable: generate once, apply anywhere.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.model import MRSIN
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.server import AllocationService

__all__ = ["FaultEvent", "FaultInjector", "apply_event"]

KINDS = ("link", "switchbox", "resource")


@dataclass(frozen=True)
class FaultEvent:
    """One state change: a component fails, or a failed one is repaired.

    ``target`` is a link index, a ``(stage, box)`` pair, or a resource
    index depending on ``kind``.  ``transient`` records whether the
    fault came with a scheduled repair (repairs themselves have it
    ``False``).
    """

    time: float
    kind: str
    target: int | tuple[int, int]
    repair: bool = False
    transient: bool = False


def apply_event(mrsin: MRSIN, event: FaultEvent) -> bool:
    """Apply ``event`` to ``mrsin``; returns whether anything changed.

    Re-failing a failed component or repairing a healthy one is a
    no-op returning ``False`` (two transient faults on the same target
    can overlap; the second repair finds nothing to fix).
    """
    if event.kind == "link":
        method = mrsin.repair_link if event.repair else mrsin.fail_link
        return method(event.target)
    if event.kind == "switchbox":
        stage, box = event.target
        if event.repair:
            return mrsin.repair_switchbox(stage, box)
        return mrsin.fail_switchbox(stage, box)
    if event.kind == "resource":
        method = mrsin.repair_resource if event.repair else mrsin.fail_resource
        return method(event.target)
    raise ValueError(f"unknown fault kind {event.kind!r}")


class FaultInjector:
    """Deterministic Poisson fault schedule over one MRSIN's components.

    Parameters
    ----------
    mrsin:
        Supplies the target space (links, switchboxes, resources).
    rng:
        Seed or prepared generator (:func:`repro.util.rng.make_rng`
        discipline); the whole schedule is a pure function of it.
    fault_rate:
        Expected faults per time unit (Poisson arrivals).
    transient_fraction:
        Probability a fault is transient, i.e. schedules its own
        repair ``Exp(mean_repair)`` later.  The remainder are
        permanent.
    mean_repair:
        Mean time-to-repair for transient faults.
    kinds:
        Component classes to draw from (default: all three).
    """

    def __init__(
        self,
        mrsin: MRSIN,
        *,
        rng: int | np.random.Generator | None = None,
        fault_rate: float = 0.05,
        transient_fraction: float = 0.8,
        mean_repair: float = 5.0,
        kinds: tuple[str, ...] = KINDS,
    ) -> None:
        if fault_rate <= 0:
            raise ValueError(f"fault_rate must be positive, got {fault_rate}")
        if not 0.0 <= transient_fraction <= 1.0:
            raise ValueError(f"transient_fraction must be in [0, 1], got {transient_fraction}")
        if mean_repair <= 0:
            raise ValueError(f"mean_repair must be positive, got {mean_repair}")
        unknown = set(kinds) - set(KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self.mrsin = mrsin
        self.rng = make_rng(rng)
        self.fault_rate = fault_rate
        self.transient_fraction = transient_fraction
        self.mean_repair = mean_repair
        self.kinds = tuple(kinds)
        self._boxes = [
            (s, b)
            for s, stage in enumerate(mrsin.network.stages)
            for b in range(len(stage))
        ]
        self._pending: list[tuple[float, int, FaultEvent]] = []
        self._tie = 0
        self._next_fault = float(self.rng.exponential(1.0 / fault_rate))
        self.generated = 0

    # ------------------------------------------------------------------
    def _push(self, event: FaultEvent) -> None:
        heapq.heappush(self._pending, (event.time, self._tie, event))
        self._tie += 1

    def _draw_target(self, kind: str) -> int | tuple[int, int]:
        if kind == "link":
            return int(self.rng.integers(0, len(self.mrsin.network.links)))
        if kind == "switchbox":
            return self._boxes[int(self.rng.integers(0, len(self._boxes)))]
        return int(self.rng.integers(0, len(self.mrsin.resources)))

    def _draw_fault(self, time: float) -> None:
        kind = self.kinds[int(self.rng.integers(0, len(self.kinds)))]
        target = self._draw_target(kind)
        transient = bool(self.rng.random() < self.transient_fraction)
        self._push(FaultEvent(time=time, kind=kind, target=target, transient=transient))
        self.generated += 1
        if transient:
            repair_at = time + float(self.rng.exponential(self.mean_repair))
            self._push(FaultEvent(time=repair_at, kind=kind, target=target, repair=True))

    # ------------------------------------------------------------------
    def events_until(self, now: float) -> list[FaultEvent]:
        """All events due at or before ``now``, in time order.

        Advances the internal Poisson process, so calls must be made
        with non-decreasing ``now`` (the service clock guarantees it).
        """
        while self._next_fault <= now:
            self._draw_fault(self._next_fault)
            self._next_fault += float(self.rng.exponential(1.0 / self.fault_rate))
        due: list[FaultEvent] = []
        while self._pending and self._pending[0][0] <= now:
            due.append(heapq.heappop(self._pending)[2])
        return due

    def inject(self, service: AllocationService, now: float) -> list[FaultEvent]:
        """Apply every due event through ``service`` (counting metrics).

        Convenience for driving a live
        :class:`~repro.service.server.AllocationService`; returns the
        events applied (including no-op ones).
        """
        events = self.events_until(now)
        for event in events:
            service.apply_fault_event(event)
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(rate={self.fault_rate:g}, generated={self.generated}, "
            f"pending={len(self._pending)})"
        )

"""Tests for the LP model and the bounded-variable simplex solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.flows.lp import LinearProgram, LPStatus, Sense
from repro.flows.simplex import simplex_solve


class TestModel:
    def test_duplicate_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ValueError, match="duplicate"):
            lp.add_variable("x")

    def test_empty_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ValueError, match="empty bound"):
            lp.add_variable("x", low=2, high=1)

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(KeyError):
            lp.add_constraint({"y": 1.0}, Sense.LE, 1.0)

    def test_standard_form_shapes(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=2.0)
        lp.add_constraint({"x": 1.0}, Sense.LE, 4.0)
        lp.add_constraint({"y": 1.0}, Sense.GE, 1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, Sense.EQ, 3.0)
        A, b, c, low, high = lp.to_standard_form()
        assert A.shape == (3, 4)  # 2 structural + 2 slacks
        assert list(b) == [4.0, 1.0, 3.0]
        assert A[1, 3] == -1.0  # GE slack is negated


class TestSimplexBasics:
    def test_docstring_example(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", high=4.0, objective=1.0)
        lp.add_variable("y", high=3.0, objective=2.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, Sense.LE, 5.0)
        res = simplex_solve(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(8.0)
        assert res["x"] == pytest.approx(2.0)
        assert res["y"] == pytest.approx(3.0)

    def test_minimization(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=3.0)
        lp.add_variable("y", objective=1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, Sense.GE, 2.0)
        res = simplex_solve(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0)
        assert res["y"] == pytest.approx(2.0)

    def test_infeasible(self):
        lp = LinearProgram()
        lp.add_variable("x", high=1.0)
        lp.add_constraint({"x": 1.0}, Sense.GE, 5.0)
        assert simplex_solve(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": -1.0}, Sense.LE, 0.0)
        assert simplex_solve(lp).status is LPStatus.UNBOUNDED

    def test_fixed_variable(self):
        lp = LinearProgram()
        lp.add_variable("x", low=2.0, high=2.0, objective=1.0)
        lp.add_variable("y", objective=1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, Sense.EQ, 5.0)
        res = simplex_solve(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res["x"] == pytest.approx(2.0)
        assert res["y"] == pytest.approx(3.0)

    def test_no_constraints(self):
        lp = LinearProgram()
        lp.add_variable("x", low=1.0, high=4.0, objective=2.0)
        res = simplex_solve(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0)

    def test_degenerate_does_not_cycle(self):
        # Classic Beale cycling example (cycles under Dantzig's rule).
        lp = LinearProgram()
        lp.add_variable("x1", objective=-0.75)
        lp.add_variable("x2", objective=150.0)
        lp.add_variable("x3", objective=-0.02)
        lp.add_variable("x4", objective=6.0)
        lp.add_constraint({"x1": 0.25, "x2": -60.0, "x3": -0.04, "x4": 9.0}, Sense.LE, 0.0)
        lp.add_constraint({"x1": 0.5, "x2": -90.0, "x3": -0.02, "x4": 3.0}, Sense.LE, 0.0)
        lp.add_constraint({"x3": 1.0}, Sense.LE, 1.0)
        res = simplex_solve(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-0.05)


def _random_lp(rng: np.random.Generator, n: int, m: int) -> LinearProgram:
    """Random bounded LP (always feasible is not guaranteed)."""
    lp = LinearProgram()
    for j in range(n):
        lp.add_variable(j, low=0.0, high=float(rng.integers(1, 10)),
                        objective=float(rng.integers(-5, 6)))
    for _ in range(m):
        coeffs = {j: float(rng.integers(-3, 4)) for j in range(n)}
        sense = [Sense.LE, Sense.GE, Sense.EQ][int(rng.integers(0, 3))]
        rhs = float(rng.integers(-5, 15))
        lp.add_constraint(coeffs, sense, rhs)
    return lp


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_lps_match_linprog(self, seed):
        rng = np.random.default_rng(700 + seed)
        lp = _random_lp(rng, n=int(rng.integers(2, 6)), m=int(rng.integers(1, 5)))
        A, b, c, low, high = lp.to_standard_form()
        bounds = [(lo, None if math.isinf(hi) else hi) for lo, hi in zip(low, high)]
        ref = linprog(c, A_eq=A, b_eq=b, bounds=bounds, method="highs")
        res = simplex_solve(lp)
        if ref.status == 2:  # infeasible
            assert res.status is LPStatus.INFEASIBLE
        elif ref.status == 0:
            assert res.status is LPStatus.OPTIMAL
            assert res.objective == pytest.approx(ref.fun, abs=1e-6)


@given(seed=st.integers(0, 100_000))
@settings(max_examples=40, deadline=None)
def test_property_simplex_matches_scipy(seed):
    """Property: on random bounded LPs, status and optimum match HiGHS."""
    rng = np.random.default_rng(seed)
    lp = _random_lp(rng, n=4, m=3)
    A, b, c, low, high = lp.to_standard_form()
    bounds = [(lo, None if math.isinf(hi) else hi) for lo, hi in zip(low, high)]
    ref = linprog(c, A_eq=A, b_eq=b, bounds=bounds, method="highs")
    res = simplex_solve(lp)
    if ref.status == 2:
        assert res.status is LPStatus.INFEASIBLE
    elif ref.status == 0:
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(ref.fun, abs=1e-6)

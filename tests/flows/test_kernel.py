"""The flat-array CSR kernel: edge cases, solver hooks, and the
differential contract against the object Dinic oracle.

The kernel is the hot path; the object solver is the teaching
implementation and the source of truth.  Every test here either pins a
kernel edge case (zero-capacity arcs, unreachable sinks, lower-bound
circulations) or fuzzes the two implementations against each other —
on random graphs, on Transformation-1 networks over every stocked
topology (healthy and fault-degraded), and through the warm engine's
full allocate/teardown/release lifecycle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MRSIN, KernelFlowEngine, OptimalScheduler, Request
from repro.core.transform import transformation1
from repro.flows import FlowKernel, FlowNetwork, dinic, kernel_solve
from repro.flows.validate import check_flow, is_integral
from repro.networks import benes, clos, crossbar, omega

BUILDERS = {
    "omega8": lambda: omega(8),
    "benes8": lambda: benes(8),
    "clos-2x2x4": lambda: clos(2, 2, 4),
    "crossbar4": lambda: crossbar(4),
}


def diamond() -> FlowKernel:
    """s=0 -> {1, 2} -> t=3, unit arcs: max flow 2."""
    k = FlowKernel(4)
    k.add_arc(0, 1, 1)
    k.add_arc(0, 2, 1)
    k.add_arc(1, 3, 1)
    k.add_arc(2, 3, 1)
    return k


# ----------------------------------------------------------------------
# Kernel edge cases
# ----------------------------------------------------------------------
class TestKernelEdges:
    def test_zero_capacity_arc_carries_nothing(self):
        k = FlowKernel(2)
        a = k.add_arc(0, 1, 0)
        assert k.max_flow(0, 1) == 0
        assert k.flow_of(a) == 0

    def test_unreachable_sink(self):
        k = FlowKernel(3)
        k.add_arc(0, 1, 5)
        assert k.max_flow(0, 2) == 0

    def test_source_equals_sink_rejected(self):
        with pytest.raises(ValueError, match="must differ"):
            FlowKernel(2).max_flow(1, 1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="negative capacity"):
            FlowKernel(2).add_arc(0, 1, -1)

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            FlowKernel(2).add_arc(0, 2, 1)

    def test_pair_symmetry_after_solve(self):
        k = diamond()
        assert k.max_flow(0, 3) == 2
        for a in range(0, k.n_arcs, 2):
            # Residual bookkeeping: cap[a] + cap[a^1] conserves base.
            assert k.cap[a] + k.cap[a ^ 1] == k.base[a]
            assert k.flow_of(a) == k.cap[a ^ 1]

    def test_warm_augment_on_top(self):
        # Solve, widen a bottleneck, solve again: only the delta flows.
        k = diamond()
        assert k.max_flow(0, 3) == 2
        for a in (0, 4):  # widen s->1 and 1->t: cap and base together
            k.cap[a] += 1
            k.base[a] += 1
        assert k.max_flow(0, 3) == 1
        assert k.flow_of(4) == 2

    def test_reset_restores_base(self):
        k = diamond()
        k.max_flow(0, 3)
        k.reset()
        assert k.cap == k.base
        assert k.max_flow(0, 3) == 2


# ----------------------------------------------------------------------
# max_flow hooks: levels hint, value bound, touched, recorded paths
# ----------------------------------------------------------------------
class TestMaxFlowHooks:
    def test_exact_level_hint_matches_plain_solve(self):
        plain, hinted = diamond(), diamond()
        levels = [0, 1, 1, 2]  # the true BFS levels of the diamond
        assert hinted.max_flow(0, 3, levels=levels) == plain.max_flow(0, 3)
        assert hinted.cap == plain.cap
        assert levels == [0, 1, 1, 2]  # caller's list never mutated

    def test_degenerate_level_hint_still_exact(self):
        # A hint that makes the sink unreachable wastes phase 1 but
        # cannot cost optimality: later phases BFS normally.
        k = diamond()
        assert k.max_flow(0, 3, levels=[0, -1, -1, -1]) == 2

    def test_value_bound_certificate(self):
        k = diamond()
        assert k.max_flow(0, 3, value_bound=2) == 2
        # Bounded at the true max: the terminating BFS was skipped, so
        # the residual state still admits no more flow.
        assert k.max_flow(0, 3) == 0

    def test_value_bound_zero_short_circuits(self):
        k = diamond()
        assert k.max_flow(0, 3, value_bound=0) == 0
        assert k.cap == k.base  # nothing was pushed

    def test_touched_covers_every_flow_carrying_arc(self):
        k = diamond()
        touched: list[int] = []
        k.max_flow(0, 3, touched=touched)
        touched_pairs = {a & -2 for a in touched}
        carrying = {a for a in range(0, k.n_arcs, 2) if k.flow_of(a) > 0}
        assert carrying <= touched_pairs

    def test_recorded_paths_are_the_unit_decomposition(self):
        k = diamond()
        paths: list[list[int]] = []
        touched: list[int] = []
        added = k.max_flow(0, 3, touched=touched, paths_out=paths)
        assert len(paths) == added == 2
        assert not any(a & 1 for a in touched)  # no unit rerouted
        for path in paths:
            # Each path is a contiguous source-to-sink arc walk.
            assert k.to[path[0] ^ 1] == 0
            assert k.to[path[-1]] == 3
            for prev, nxt in zip(path, path[1:]):
                assert k.to[prev] == k.to[nxt ^ 1]


# ----------------------------------------------------------------------
# CompiledNetwork: lowering, lower bounds, readback
# ----------------------------------------------------------------------
class TestCompiledNetwork:
    def test_readback_matches_object_dinic(self):
        mrsin = MRSIN(omega(8))
        problem = transformation1(mrsin, [Request(p) for p in range(8)])
        obj, ker = problem.net.copy(), problem.net.copy()
        d = dinic(obj, problem.source, problem.sink)
        r = kernel_solve(ker, problem.source, problem.sink)
        assert r.value == d.value == 8
        assert check_flow(ker, problem.source, problem.sink) == 8
        assert is_integral(ker)

    def test_second_solve_adds_nothing(self):
        mrsin = MRSIN(omega(8))
        problem = transformation1(mrsin, [Request(p) for p in range(8)])
        compiled = problem.net.compile()
        first = compiled.solve(problem.source, problem.sink)
        again = compiled.solve(problem.source, problem.sink)
        assert first.value == again.value  # augment-on-top found zero
        assert again.phases <= 1

    def test_lower_bound_circulation(self):
        # s -> a (lower 1) -> t plus a wider parallel route; the
        # feasibility phase must route the mandated unit through a.
        net = FlowNetwork()
        net.add_arc("s", "a", 2, lower=1)
        net.add_arc("a", "t", 2)
        net.add_arc("s", "t", 1)
        result = kernel_solve(net, "s", "t")
        assert result.value == 3
        for arc in net.arcs:
            assert arc.lower <= arc.flow <= arc.capacity
        assert check_flow(net, "s", "t") == 3
        # The object Dinic, warm-started from this feasible flow,
        # certifies maximality by finding nothing to add.
        assert dinic(net, "s", "t").value == 3

    def test_infeasible_lower_bounds_raise(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 2, lower=2)
        net.add_arc("a", "t", 1)  # a cannot forward the mandated 2
        with pytest.raises(ValueError, match="infeasible"):
            kernel_solve(net, "s", "t")

    def test_partial_assignment_under_lower_bounds_rejected(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 2, lower=1)
        net.add_arc("a", "t", 2)
        net.arcs[1].flow = 1  # partial: arc 0 still below its lower
        with pytest.raises(ValueError, match="cannot warm-start"):
            net.compile().solve("s", "t")

    def test_seed_from_illegal_flow_raises(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        compiled = net.compile()
        net.arcs[0].flow = 5
        with pytest.raises(ValueError, match="illegal flow"):
            compiled.seed_from_flow()

    def test_missing_terminal_is_zero(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        assert net.compile().solve("s", "ghost").value == 0

    def test_record_layers_unsupported(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        with pytest.raises(ValueError, match="layered networks"):
            kernel_solve(net, "s", "t", record_layers=True)


# ----------------------------------------------------------------------
# Differential fuzz: kernel vs object Dinic
# ----------------------------------------------------------------------
arc_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 3)),
    min_size=1,
    max_size=18,
)


def build_pair(arcs, with_lower=False):
    """Identical object networks from a raw arc spec (loops dropped)."""
    obj, ker = FlowNetwork(), FlowNetwork()
    for net in (obj, ker):
        net.add_node(0)
        net.add_node(5)
        for tail, head, cap in arcs:
            if tail != head:
                lower = cap // 3 if with_lower else 0
                net.add_arc(tail, head, cap, lower=lower)
    return obj, ker


class TestFuzzRandomGraphs:
    @given(arcs=arc_lists)
    @settings(max_examples=80, deadline=None)
    def test_kernel_matches_dinic(self, arcs):
        obj, ker = build_pair(arcs)
        d = dinic(obj, 0, 5)
        r = kernel_solve(ker, 0, 5)
        assert r.value == d.value
        assert check_flow(ker, 0, 5) == r.value
        assert is_integral(ker)

    @given(arcs=arc_lists)
    @settings(max_examples=60, deadline=None)
    def test_lower_bounded_solves_are_feasible_and_maximal(self, arcs):
        _, ker = build_pair(arcs, with_lower=True)
        try:
            result = kernel_solve(ker, 0, 5)
        except ValueError:
            return  # infeasible lower bounds are a legitimate outcome
        for arc in ker.arcs:
            assert arc.lower <= arc.flow <= arc.capacity
        assert check_flow(ker, 0, 5) == result.value
        # Maximality: the object Dinic, warm-started from the kernel's
        # feasible flow, must find nothing left to augment.
        assert dinic(ker, 0, 5).value == result.value


class TestFuzzTopologies:
    @given(
        name=st.sampled_from(sorted(BUILDERS)),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_kernel_matches_dinic_on_transform1(self, name, seed):
        """Random request batches on every stocked topology, healthy
        and fault-degraded alike: identical max-flow values, and the
        kernel's assignment is a legal integral flow."""
        mrsin = MRSIN(BUILDERS[name]())
        rng = np.random.default_rng(seed)
        for i in range(mrsin.n_resources):
            if rng.random() < 0.15:
                mrsin.fail_resource(i)
        for i in range(len(mrsin.network.links)):
            if rng.random() < 0.1:
                mrsin.fail_link(i)
        for stage, boxes in enumerate(mrsin.network.stages):
            for box in range(len(boxes)):
                if rng.random() < 0.05:
                    mrsin.fail_switchbox(stage, box)
        requesting = [p for p in range(mrsin.n_processors) if rng.random() < 0.6]
        problem = transformation1(mrsin, [Request(p) for p in requesting])
        obj, ker = problem.net.copy(), problem.net.copy()
        d = dinic(obj, problem.source, problem.sink)
        r = kernel_solve(ker, problem.source, problem.sink)
        assert r.value == d.value
        assert check_flow(ker, problem.source, problem.sink) == r.value
        assert is_integral(ker)


class TestFuzzEngineLifecycle:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_warm_kernel_matches_cold_object_every_tick(self, seed):
        """The warm kernel engine against the cold object-solver oracle
        through random allocate/teardown/release traffic — the
        engine-level differential the service tick path relies on."""
        mrsin = MRSIN(omega(8))
        engine = KernelFlowEngine(mrsin)
        rng = np.random.default_rng(seed)
        holding: dict[int, int] = {}
        busy: set[int] = set()
        for tick in range(25):
            transmitting = set(holding.values())
            idle = [p for p in range(mrsin.n_processors) if p not in transmitting]
            n = int(rng.integers(0, len(idle) + 1))
            reqs = [Request(int(p)) for p in rng.choice(idle, size=n, replace=False)]
            expected = len(OptimalScheduler().schedule(mrsin, reqs))
            mapping = engine.schedule(reqs)
            assert len(mapping) == expected
            mrsin.apply_mapping(mapping)
            engine.commit(mapping)
            for a in mapping.assignments:
                holding[a.resource.index] = a.request.processor
            for res in [r for r in list(holding) if rng.random() < 0.3]:
                mrsin.complete_transmission(res)
                engine.note_transmission_end(res)
                del holding[res]
                busy.add(res)
            for res in [r for r in list(busy) if rng.random() < 0.4]:
                mrsin.complete_service(res)
                engine.note_release(res)
                busy.discard(res)
            for res in [r for r in list(holding) if rng.random() < 0.15]:
                mrsin.complete_service(res)
                engine.note_release(res)
                del holding[res]
        assert engine.builds == 1  # warm path never fell back

"""Tests for multicommodity max-flow / min-cost flow (Section III-D)."""

import numpy as np
import pytest

from repro.flows.graph import FlowNetwork
from repro.flows.lp import LPStatus
from repro.flows.maxflow import edmonds_karp
from repro.flows.multicommodity import (
    Commodity,
    MultiCommodityProblem,
    solve_integral_multicommodity,
    solve_max_multicommodity,
    solve_min_cost_multicommodity,
)


def shared_link_instance() -> MultiCommodityProblem:
    """Two commodities forced through one shared middle arc."""
    net = FlowNetwork()
    net.add_arc("s1", "m", 2)
    net.add_arc("s2", "m", 2)
    net.add_arc("m", "n", 3)  # the bundle bottleneck
    net.add_arc("n", "t1", 2)
    net.add_arc("n", "t2", 2)
    coms = [Commodity("A", "s1", "t1"), Commodity("B", "s2", "t2")]
    return MultiCommodityProblem(net, coms)


def disjoint_instance() -> MultiCommodityProblem:
    """Two commodities on arc-disjoint routes (trivially integral)."""
    net = FlowNetwork()
    net.add_arc("s1", "t1", 2)
    net.add_arc("s2", "t2", 3)
    coms = [Commodity("A", "s1", "t1"), Commodity("B", "s2", "t2")]
    return MultiCommodityProblem(net, coms)


class TestMaxMulticommodity:
    def test_disjoint_routes(self):
        res = solve_max_multicommodity(disjoint_instance())
        assert res.status is LPStatus.OPTIMAL
        assert res.total_flow == pytest.approx(5.0)
        assert res.flow_values == pytest.approx([2.0, 3.0])
        assert res.integral

    def test_bundle_constraint_binds(self):
        res = solve_max_multicommodity(shared_link_instance())
        assert res.status is LPStatus.OPTIMAL
        assert res.total_flow == pytest.approx(3.0)  # bottleneck arc m->n

    def test_single_commodity_reduces_to_max_flow(self):
        rng = np.random.default_rng(42)
        net = FlowNetwork()
        nodes = list(range(7))
        for _ in range(18):
            u, v = rng.choice(nodes, size=2, replace=False)
            net.add_arc(int(u), int(v), int(rng.integers(1, 4)))
        problem = MultiCommodityProblem(net, [Commodity("only", 0, 6)])
        res = solve_max_multicommodity(problem)
        expected = edmonds_karp(net.copy(), 0, 6).value
        assert res.total_flow == pytest.approx(expected)

    def test_capacity_respected_per_arc(self):
        problem = shared_link_instance()
        res = solve_max_multicommodity(problem)
        for arc in problem.net.arcs:
            total = sum(
                res.commodity_flow(k, arc) for k in range(len(problem.commodities))
            )
            assert total <= arc.capacity + 1e-6


class TestMinCostMulticommodity:
    def test_demands_met_at_min_cost(self):
        net = FlowNetwork()
        net.add_arc("s1", "t1", 2, cost=1)
        net.add_arc("s1", "x", 2, cost=0)
        net.add_arc("x", "t1", 2, cost=0)
        net.add_arc("s2", "t2", 1, cost=2)
        coms = [Commodity("A", "s1", "t1", demand=1), Commodity("B", "s2", "t2", demand=1)]
        res = solve_min_cost_multicommodity(MultiCommodityProblem(net, coms))
        assert res.status is LPStatus.OPTIMAL
        assert res.cost == pytest.approx(2.0)  # A uses the free 2-hop route

    def test_per_commodity_cost_override(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 2, cost=1)
        coms = [Commodity("A", "s", "t", demand=1), Commodity("B", "s", "t", demand=1)]
        problem = MultiCommodityProblem(net, coms, costs={(1, 0): 10.0})
        res = solve_min_cost_multicommodity(problem)
        assert res.cost == pytest.approx(1.0 + 10.0)

    def test_missing_demand_rejected(self):
        problem = shared_link_instance()
        with pytest.raises(ValueError, match="demand"):
            solve_min_cost_multicommodity(problem)

    def test_infeasible_demand(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        coms = [Commodity("A", "s", "t", demand=5)]
        res = solve_min_cost_multicommodity(MultiCommodityProblem(net, coms))
        assert res.status is LPStatus.INFEASIBLE


class TestIntegral:
    def test_integral_on_integral_instance(self):
        res = solve_integral_multicommodity(disjoint_instance())
        assert res.integral
        assert res.total_flow == pytest.approx(5.0)

    def test_fractional_lp_gets_rounded_down(self):
        """The classic 3-commodity triangle: LP optimum 1.5 each direction,
        integral optimum strictly smaller."""
        net = FlowNetwork()
        # Triangle of unit arcs in both directions.
        for u, v in (("a", "b"), ("b", "c"), ("c", "a")):
            net.add_arc(u, v, 1)
            net.add_arc(v, u, 1)
        coms = [
            Commodity(0, "a", "b"),
            Commodity(1, "b", "c"),
            Commodity(2, "c", "a"),
        ]
        problem = MultiCommodityProblem(net, coms)
        lp_res = solve_max_multicommodity(problem)
        int_res = solve_integral_multicommodity(problem)
        assert int_res.integral
        assert int_res.total_flow <= lp_res.total_flow + 1e-6
        assert int_res.total_flow == pytest.approx(round(int_res.total_flow))
        assert int_res.total_flow >= 3.0 - 1e-6  # direct unit arcs exist

    def test_branch_and_bound_respects_capacities(self):
        problem = shared_link_instance()
        res = solve_integral_multicommodity(problem)
        assert res.integral
        assert res.total_flow == pytest.approx(3.0)
        for arc in problem.net.arcs:
            total = sum(
                res.commodity_flow(k, arc) for k in range(len(problem.commodities))
            )
            assert total <= arc.capacity + 1e-6

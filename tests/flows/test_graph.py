"""Unit tests for the FlowNetwork data structure."""

import pytest

from repro.flows.graph import FlowNetwork
from repro.flows.maxflow import edmonds_karp
from repro.flows.validate import FlowViolation, check_flow, is_integral


def diamond() -> FlowNetwork:
    """s -> a,b -> t with unit capacities."""
    net = FlowNetwork()
    net.add_arc("s", "a", 1)
    net.add_arc("s", "b", 1)
    net.add_arc("a", "t", 1)
    net.add_arc("b", "t", 1)
    return net


class TestConstruction:
    def test_add_arc_registers_endpoints(self):
        net = FlowNetwork()
        arc = net.add_arc("u", "v", 3)
        assert "u" in net and "v" in net
        assert arc.capacity == 3 and arc.flow == 0.0

    def test_add_node_idempotent(self):
        net = FlowNetwork()
        net.add_node("x")
        net.add_node("x")
        assert net.n_nodes == 1

    def test_self_loop_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValueError, match="self-loop"):
            net.add_arc("u", "u", 1)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValueError, match="negative capacity"):
            net.add_arc("u", "v", -1)

    def test_bad_lower_bound_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValueError, match="lower bound"):
            net.add_arc("u", "v", 1, lower=2)

    def test_parallel_arcs_are_distinct(self):
        net = FlowNetwork()
        a1 = net.add_arc("u", "v", 1)
        a2 = net.add_arc("u", "v", 1)
        assert a1.index != a2.index
        assert len(net.find_arcs("u", "v")) == 2

    def test_counts(self):
        net = diamond()
        assert net.n_nodes == 4
        assert net.n_arcs == 4


class TestQueries:
    def test_out_in_arcs(self):
        net = diamond()
        assert {a.head for a in net.out_arcs("s")} == {"a", "b"}
        assert {a.tail for a in net.in_arcs("t")} == {"a", "b"}

    def test_incident_directions(self):
        net = diamond()
        moves = list(net.incident("a"))
        forwards = [(a.head, fwd) for a, fwd in moves if fwd]
        backwards = [(a.tail, fwd) for a, fwd in moves if not fwd]
        assert forwards == [("t", True)]
        assert backwards == [("s", False)]

    def test_degree(self):
        net = diamond()
        assert net.degree("a") == 2
        assert net.degree("s") == 2

    def test_other_endpoint(self):
        net = diamond()
        arc = net.find_arcs("s", "a")[0]
        assert arc.other("s") == "a"
        assert arc.other("a") == "s"
        with pytest.raises(ValueError):
            arc.other("t")

    def test_residuals(self):
        net = diamond()
        arc = net.arcs[0]
        arc.flow = 1.0
        assert arc.residual_forward == 0.0
        assert arc.residual_backward == 1.0
        assert arc.residual(True) == 0.0
        assert arc.residual(False) == 1.0


class TestFlowBookkeeping:
    def test_flow_value_and_conservation(self):
        net = diamond()
        edmonds_karp(net, "s", "t")
        assert net.flow_value("s") == 2.0
        assert check_flow(net, "s", "t") == 2.0

    def test_zero_flow_resets(self):
        net = diamond()
        edmonds_karp(net, "s", "t")
        net.zero_flow()
        assert net.flow_value("s") == 0.0

    def test_total_cost(self):
        net = FlowNetwork()
        a = net.add_arc("s", "t", 2, cost=3.0)
        a.flow = 2.0
        assert net.total_cost() == 6.0

    def test_check_flow_detects_capacity_violation(self):
        net = diamond()
        net.arcs[0].flow = 2.0
        with pytest.raises(FlowViolation, match="capacity"):
            check_flow(net, "s", "t")

    def test_check_flow_detects_conservation_violation(self):
        net = diamond()
        net.arcs[0].flow = 1.0  # into "a" but not out
        with pytest.raises(FlowViolation, match="conservation"):
            check_flow(net, "s", "t")

    def test_is_integral(self):
        net = diamond()
        assert is_integral(net)
        net.arcs[0].flow = 0.5
        assert not is_integral(net)


class TestCopyAndDecompose:
    def test_copy_is_deep(self):
        net = diamond()
        edmonds_karp(net, "s", "t")
        dup = net.copy()
        dup.arcs[0].flow = 0.0
        assert net.arcs[0].flow != dup.arcs[0].flow
        assert dup.n_nodes == net.n_nodes and dup.n_arcs == net.n_arcs

    def test_decompose_simple(self):
        net = diamond()
        edmonds_karp(net, "s", "t")
        paths = net.decompose_paths("s", "t")
        assert len(paths) == 2
        for path in paths:
            assert path[0].tail == "s" and path[-1].head == "t"

    def test_decompose_requires_integral(self):
        net = diamond()
        net.arcs[0].flow = 0.5
        with pytest.raises(ValueError, match="integral"):
            net.decompose_paths("s", "t")

    def test_decompose_ignores_disjoint_cycle(self):
        net = diamond()
        # Flow cycle not touching s or t.
        net.add_arc("a", "b", 1).flow = 1.0
        net.add_arc("b", "a", 1).flow = 1.0
        paths = net.decompose_paths("s", "t")
        assert paths == []

    def test_decompose_cancels_cycle_on_path(self):
        # s -> a -> t plus a cycle a -> b -> a carrying flow.
        net = FlowNetwork()
        sa = net.add_arc("s", "a", 1)
        at = net.add_arc("a", "t", 1)
        ab = net.add_arc("a", "b", 1)
        ba = net.add_arc("b", "a", 1)
        for arc in (sa, at, ab, ba):
            arc.flow = 1.0
        paths = net.decompose_paths("s", "t")
        assert len(paths) == 1
        assert [arc.index for arc in paths[0]] in ([sa.index, at.index],)

"""Tests for min-cost flow: SSP vs cycle-canceling vs NetworkX oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.graph import FlowNetwork
from repro.flows.maxflow import edmonds_karp
from repro.flows.mincost import (
    InfeasibleFlowError,
    cycle_cancel_min_cost,
    min_cost_flow,
)
from repro.flows.validate import check_flow, is_integral
from tests.helpers import nx_min_cost_for_value, random_flow_network


def two_route_network() -> FlowNetwork:
    """Cheap route capacity 1, expensive route capacity 2."""
    net = FlowNetwork()
    net.add_arc("s", "a", 1, cost=1)
    net.add_arc("a", "t", 1, cost=1)
    net.add_arc("s", "b", 2, cost=5)
    net.add_arc("b", "t", 2, cost=5)
    return net


class TestSuccessiveShortestPaths:
    def test_prefers_cheap_route(self):
        net = two_route_network()
        res = min_cost_flow(net, "s", "t", target_flow=1)
        assert res.value == 1
        assert res.cost == 2
        assert net.find_arcs("s", "a")[0].flow == 1

    def test_spills_to_expensive_route(self):
        net = two_route_network()
        res = min_cost_flow(net, "s", "t", target_flow=3)
        assert res.value == 3
        assert res.cost == 2 + 2 * 10

    def test_infeasible_target_raises(self):
        net = two_route_network()
        with pytest.raises(InfeasibleFlowError):
            min_cost_flow(net, "s", "t", target_flow=4)

    def test_zero_target_with_terminals_is_trivially_met(self):
        net = two_route_network()
        res = min_cost_flow(net, "s", "t", target_flow=0)
        assert (res.value, res.cost, res.augmentations) == (0.0, 0.0, 0)
        assert all(arc.flow == 0 for arc in net.arcs)

    def test_zero_target_without_terminals_is_infeasible(self):
        # Regression: `if target_flow:` used to treat an explicit
        # target_flow=0 like "no target" and silently return success
        # even when the terminals do not exist in the network.
        net = two_route_network()
        with pytest.raises(InfeasibleFlowError, match="terminal missing"):
            min_cost_flow(net, "s", "ghost", target_flow=0)

    def test_no_target_without_terminals_returns_empty(self):
        net = two_route_network()
        res = min_cost_flow(net, "ghost", "t")
        assert (res.value, res.cost) == (0.0, 0.0)

    def test_without_target_finds_min_cost_max_flow(self):
        net = two_route_network()
        res = min_cost_flow(net, "s", "t")
        assert res.value == 3
        assert res.cost == 22

    def test_requires_zero_initial_flow(self):
        net = two_route_network()
        net.arcs[0].flow = 1.0
        with pytest.raises(ValueError, match="zero initial flow"):
            min_cost_flow(net, "s", "t")

    def test_negative_costs_handled(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 1, cost=-5)
        net.add_arc("a", "t", 1, cost=2)
        net.add_arc("s", "t", 1, cost=0)
        res = min_cost_flow(net, "s", "t", target_flow=2)
        assert res.value == 2
        assert res.cost == -3

    def test_zero_target_is_noop(self):
        net = two_route_network()
        res = min_cost_flow(net, "s", "t", target_flow=0)
        assert res.value == 0 and res.cost == 0


class TestCycleCanceling:
    def test_improves_greedy_flow(self):
        net = two_route_network()
        res = cycle_cancel_min_cost(net, "s", "t", target_flow=1)
        assert res.value == 1
        assert res.cost == 2

    def test_matches_ssp_on_random_instances(self):
        for seed in range(12):
            rng = np.random.default_rng(400 + seed)
            net, s, t = random_flow_network(rng, n_nodes=8, n_arcs=20)
            maxv = edmonds_karp(net.copy(), s, t).value
            if maxv == 0:
                continue
            target = int(maxv)
            net_a = net.copy()
            net_b = net.copy()
            cost_a = min_cost_flow(net_a, s, t, target_flow=target).cost
            cost_b = cycle_cancel_min_cost(net_b, s, t, target_flow=target).cost
            assert cost_a == pytest.approx(cost_b)
            check_flow(net_a, s, t)
            check_flow(net_b, s, t)


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(15))
    def test_ssp_matches_networkx(self, seed):
        rng = np.random.default_rng(500 + seed)
        net, s, t = random_flow_network(rng, n_nodes=9, n_arcs=24)
        maxv = int(edmonds_karp(net.copy(), s, t).value)
        if maxv == 0:
            pytest.skip("degenerate instance with no s-t path")
        target = max(1, maxv // 2)
        res = min_cost_flow(net, s, t, target_flow=target)
        expected = nx_min_cost_for_value(net, s, t, target)
        assert res.cost == pytest.approx(expected)
        assert is_integral(net)


@given(seed=st.integers(0, 10_000), n_arcs=st.integers(6, 30))
@settings(max_examples=40, deadline=None)
def test_property_ssp_cost_never_beats_oracle(seed, n_arcs):
    """Property: SSP cost equals the NetworkX optimal cost exactly."""
    rng = np.random.default_rng(seed)
    net, s, t = random_flow_network(rng, n_nodes=8, n_arcs=n_arcs)
    maxv = int(edmonds_karp(net.copy(), s, t).value)
    if maxv == 0:
        return
    res = min_cost_flow(net, s, t, target_flow=maxv)
    expected = nx_min_cost_for_value(net, s, t, maxv)
    assert res.cost == pytest.approx(expected)
    assert check_flow(net, s, t) == maxv

"""Tests for the Goldberg–Tarjan push–relabel solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.graph import FlowNetwork
from repro.flows.maxflow import edmonds_karp
from repro.flows.mincut import min_cut
from repro.flows.push_relabel import push_relabel
from repro.flows.validate import check_flow, is_integral
from tests.helpers import nx_max_flow, random_flow_network


class TestBasics:
    def test_single_arc(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 4)
        assert push_relabel(net, "s", "t").value == 4
        check_flow(net, "s", "t")

    def test_bottleneck(self):
        net = FlowNetwork()
        net.add_arc("s", "m", 9)
        net.add_arc("m", "t", 3)
        assert push_relabel(net, "s", "t").value == 3
        check_flow(net, "s", "t")

    def test_excess_returns_to_source(self):
        """A dead-end branch soaks preflow that must drain back."""
        net = FlowNetwork()
        net.add_arc("s", "dead", 7)
        net.add_arc("s", "a", 2)
        net.add_arc("a", "t", 2)
        assert push_relabel(net, "s", "t").value == 2
        check_flow(net, "s", "t")
        assert net.find_arcs("s", "dead")[0].flow == 0.0

    def test_disconnected(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 1)
        net.add_arc("b", "t", 1)
        assert push_relabel(net, "s", "t").value == 0

    def test_same_terminals(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        assert push_relabel(net, "s", "s").value == 0

    def test_nonzero_initial_flow_rejected(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1).flow = 1.0
        with pytest.raises(ValueError, match="zero initial flow"):
            push_relabel(net, "s", "t")

    def test_flow_limit_not_stranded_on_dead_ends(self):
        """The regression the peeling strategy exists for: a naive
        limited source saturation would waste budget on the dead arc."""
        net = FlowNetwork()
        net.add_arc("s", "dead", 5)
        net.add_arc("s", "b", 5)
        net.add_arc("b", "t", 5)
        res = push_relabel(net, "s", "t", flow_limit=5)
        assert res.value == 5
        check_flow(net, "s", "t")

    def test_flow_limit_reduces_value(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 10)
        res = push_relabel(net, "s", "t", flow_limit=4)
        assert res.value == 4
        check_flow(net, "s", "t")


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_networks(self, seed):
        rng = np.random.default_rng(800 + seed)
        net, s, t = random_flow_network(rng, n_nodes=10, n_arcs=30)
        expected = nx_max_flow(net, s, t)
        assert push_relabel(net, s, t).value == expected
        check_flow(net, s, t)
        assert is_integral(net)

    @pytest.mark.parametrize("seed", range(10))
    def test_min_cut_certificate(self, seed):
        rng = np.random.default_rng(900 + seed)
        net, s, t = random_flow_network(rng, n_nodes=9, n_arcs=24, unit=True)
        value = push_relabel(net, s, t).value
        assert min_cut(net, s, t).capacity == value


def test_scheduler_integration():
    from repro.core import MRSIN, OptimalScheduler, Request
    from repro.networks import omega

    m = MRSIN(omega(8))
    for p in range(8):
        m.submit(Request(p))
    mapping = OptimalScheduler(maxflow="push_relabel").schedule(m)
    assert len(mapping) == 8
    mapping.validate(m)


@given(seed=st.integers(0, 10_000), n_arcs=st.integers(4, 40))
@settings(max_examples=50, deadline=None)
def test_property_push_relabel_equals_edmonds_karp(seed, n_arcs):
    """Property: push-relabel and Edmonds–Karp agree on every instance."""
    rng = np.random.default_rng(seed)
    net, s, t = random_flow_network(rng, n_nodes=9, n_arcs=n_arcs)
    v_ek = edmonds_karp(net.copy(), s, t).value
    v_pr = push_relabel(net, s, t).value
    assert v_pr == v_ek
    assert check_flow(net, s, t) == v_pr

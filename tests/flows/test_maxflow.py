"""Tests for Ford–Fulkerson / Edmonds–Karp max flow, vs NetworkX oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.graph import FlowNetwork
from repro.flows.maxflow import edmonds_karp, ford_fulkerson
from repro.flows.mincut import min_cut
from repro.flows.validate import check_flow, is_integral
from tests.helpers import nx_max_flow, random_flow_network


def cancellation_network() -> FlowNetwork:
    """The paper's Fig. 3 network: optimal flow requires cancelling.

    ``s-a-d-t`` carries an initial unit; the augmenting path
    ``s-c-d-a-b-t`` pushes against ``a->d`` to reach the max flow 2.
    """
    net = FlowNetwork()
    net.add_arc("s", "a", 1)
    net.add_arc("s", "c", 1)
    net.add_arc("a", "b", 1)
    net.add_arc("a", "d", 1)
    net.add_arc("c", "d", 1)
    net.add_arc("b", "t", 1)
    net.add_arc("d", "t", 1)
    return net


@pytest.mark.parametrize("solver", [edmonds_karp, ford_fulkerson])
class TestBasics:
    def test_single_arc(self, solver):
        net = FlowNetwork()
        net.add_arc("s", "t", 7)
        assert solver(net, "s", "t").value == 7

    def test_series_bottleneck(self, solver):
        net = FlowNetwork()
        net.add_arc("s", "m", 5)
        net.add_arc("m", "t", 2)
        assert solver(net, "s", "t").value == 2

    def test_disconnected(self, solver):
        net = FlowNetwork()
        net.add_arc("s", "a", 1)
        net.add_arc("b", "t", 1)
        assert solver(net, "s", "t").value == 0

    def test_fig3_requires_cancellation(self, solver):
        net = cancellation_network()
        # Pre-assign the paper's initial flow along s-a-d-t.
        for tail, head in (("s", "a"), ("a", "d"), ("d", "t")):
            net.find_arcs(tail, head)[0].flow = 1.0
        res = solver(net, "s", "t")
        assert res.value == 2
        check_flow(net, "s", "t")
        # Fig. 3(c): the final flow uses s-a-b-t and s-c-d-t, so the
        # middle arc a->d carries nothing.
        assert net.find_arcs("a", "d")[0].flow == 0.0

    def test_flow_limit_stops_early(self, solver):
        net = FlowNetwork()
        net.add_arc("s", "t", 10)
        res = solver(net, "s", "t", flow_limit=4)
        assert res.value == 4
        assert net.flow_value("s") == 4

    def test_parallel_arcs(self, solver):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        net.add_arc("s", "t", 1)
        assert solver(net, "s", "t").value == 2

    def test_augments_on_top_of_existing_flow(self, solver):
        net = FlowNetwork()
        net.add_arc("s", "t", 3).flow = 1.0
        res = solver(net, "s", "t")
        assert res.value == 3


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_networks_match_networkx(self, seed):
        rng = np.random.default_rng(seed)
        net, s, t = random_flow_network(rng, n_nodes=10, n_arcs=30)
        expected = nx_max_flow(net, s, t)
        got = edmonds_karp(net, s, t).value
        assert got == expected
        check_flow(net, s, t)
        assert is_integral(net)

    @pytest.mark.parametrize("seed", range(10))
    def test_bfs_and_dfs_agree(self, seed):
        rng = np.random.default_rng(100 + seed)
        net, s, t = random_flow_network(rng, n_nodes=12, n_arcs=40, unit=True)
        v1 = edmonds_karp(net.copy(), s, t).value
        v2 = ford_fulkerson(net, s, t).value
        assert v1 == v2

    @pytest.mark.parametrize("seed", range(10))
    def test_maxflow_equals_mincut(self, seed):
        rng = np.random.default_rng(200 + seed)
        net, s, t = random_flow_network(rng, n_nodes=9, n_arcs=25)
        value = edmonds_karp(net, s, t).value
        cut = min_cut(net, s, t)
        assert cut.capacity == value
        assert s in cut.source_side and t in cut.sink_side


@given(
    seed=st.integers(0, 10_000),
    n_nodes=st.integers(4, 12),
    n_arcs=st.integers(4, 40),
    unit=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_property_maxflow_legal_integral_and_optimal(seed, n_nodes, n_arcs, unit):
    """Property: our max flow is legal, integral, and matches the oracle."""
    rng = np.random.default_rng(seed)
    net, s, t = random_flow_network(rng, n_nodes=n_nodes, n_arcs=n_arcs, unit=unit)
    expected = nx_max_flow(net, s, t)
    value = edmonds_karp(net, s, t).value
    assert value == expected
    assert check_flow(net, s, t) == value
    assert is_integral(net)

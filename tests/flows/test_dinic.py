"""Tests for Dinic's algorithm and the explicit layered networks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.dinic import blocking_flow, build_layered_network, dinic
from repro.flows.graph import FlowNetwork
from repro.flows.maxflow import edmonds_karp
from repro.flows.validate import check_flow, is_integral
from tests.helpers import nx_max_flow, random_flow_network
from repro.util.counters import OpCounter


def fig8_network() -> FlowNetwork:
    """The paper's Fig. 8(a): a flow network from a 4x4 MRSIN.

    Nodes: s; processors p1, p2, p4; switch nodes 4, 5, 6, 7;
    resources r1, r3, r4; sink t.  Initial flow routes p1->r4 (via
    5 -> 6) and p4 -> r1 (via 6?).  We model the essential structure:
    three requesters, three resources, an inner exchange 5 -> 6 whose
    flow must be cancelled to free the blocked request p2.
    """
    net = FlowNetwork()
    # s to requesting processors
    net.add_arc("s", "p1", 1)
    net.add_arc("s", "p2", 1)
    net.add_arc("s", "p4", 1)
    # first-stage switch nodes 4 and 5
    net.add_arc("p1", "n4", 1)
    net.add_arc("p2", "n4", 1)
    net.add_arc("p4", "n5", 1)
    # inter-switch links (node 5 -> node 6 carries cancellable flow)
    net.add_arc("n4", "n6", 1)
    net.add_arc("n4", "n7", 1)
    net.add_arc("n5", "n6", 1)
    net.add_arc("n5", "n7", 1)
    # second-stage switches to resources
    net.add_arc("n6", "r1", 1)
    net.add_arc("n6", "r4", 1)
    net.add_arc("n7", "r3", 1)
    # resources to t
    net.add_arc("r1", "t", 1)
    net.add_arc("r3", "t", 1)
    net.add_arc("r4", "t", 1)
    return net


def assign_fig8_initial_flow(net: FlowNetwork) -> None:
    """Initial mapping {(p1, r4), (p4, r3)} that blocks p2.

    p2 can only reach n7 (its box n4 has n4->n6 occupied), and n7's
    sole resource r3 is taken by p4.  The unique augmenting path must
    *cancel* the n5->n7 flow — the situation of Fig. 8(b), where the
    layered network contains a backward (flow-cancelling) arc.
    """
    for tail, head in (
        ("s", "p1"), ("p1", "n4"), ("n4", "n6"), ("n6", "r4"), ("r4", "t"),
        ("s", "p4"), ("p4", "n5"), ("n5", "n7"), ("n7", "r3"), ("r3", "t"),
    ):
        net.find_arcs(tail, head)[0].flow = 1.0


class TestLayeredNetwork:
    def test_layers_partition_reached_nodes(self):
        net = fig8_network()
        layered = build_layered_network(net, "s", "t")
        seen = set()
        for layer in layered.layers:
            assert not (layer & seen), "layers must be disjoint"
            seen |= layer
        assert layered.layers[0] == {"s"}
        assert layered.reaches_sink

    def test_level_indices_match_layers(self):
        net = fig8_network()
        layered = build_layered_network(net, "s", "t")
        for i, layer in enumerate(layered.layers):
            for node in layer:
                assert layered.level[node] == i

    def test_moves_go_strictly_forward(self):
        net = fig8_network()
        layered = build_layered_network(net, "s", "t")
        for node, moves in layered.moves.items():
            for arc, forward in moves:
                nxt = arc.head if forward else arc.tail
                assert layered.level[nxt] == layered.level[node] + 1

    def test_construction_stops_at_sink_layer(self):
        net = fig8_network()
        layered = build_layered_network(net, "s", "t")
        assert "t" in layered.layers[-1]

    def test_saturated_network_does_not_reach_sink(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1).flow = 1.0
        layered = build_layered_network(net, "s", "t")
        assert not layered.reaches_sink

    def test_backward_arc_appears_after_flow(self):
        """The cancellation move of Fig. 8(b) (arc 6->5 reversing 5->6)."""
        net = fig8_network()
        assign_fig8_initial_flow(net)
        layered = build_layered_network(net, "s", "t")
        assert layered.reaches_sink
        backward_moves = [
            (node, arc)
            for node, moves in layered.moves.items()
            for arc, forward in moves
            if not forward
        ]
        assert backward_moves, "layered network must include a flow-cancelling move"

    def test_missing_terminal_yields_empty(self):
        net = FlowNetwork()
        net.add_node("s")
        layered = build_layered_network(net, "s", "t")
        assert not layered.reaches_sink


class TestBlockingFlow:
    def test_blocking_flow_saturates_every_path(self):
        net = fig8_network()
        layered = build_layered_network(net, "s", "t")
        added = blocking_flow(net, layered)
        assert added > 0
        # Maximality: rebuilding a layered network of the same depth
        # must not reach the sink at that depth any more.
        relayered = build_layered_network(net, "s", "t")
        assert (not relayered.reaches_sink) or relayered.depth > layered.depth

    def test_no_sink_returns_zero(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1).flow = 1.0
        layered = build_layered_network(net, "s", "t")
        assert blocking_flow(net, layered) == 0.0


class TestDinic:
    def test_fig8_recovers_blocked_request(self):
        """All three resources allocatable after reallocation (Fig. 8)."""
        net = fig8_network()
        assign_fig8_initial_flow(net)
        res = dinic(net, "s", "t")
        assert res.value == 3
        check_flow(net, "s", "t")

    def test_phases_counted(self):
        net = fig8_network()
        res = dinic(net, "s", "t", record_layers=True)
        assert res.phases >= 1
        # One recorded layered network per phase plus the final failed one.
        assert len(res.layered_networks) == res.phases + 1

    def test_counter_charges(self):
        net = fig8_network()
        counter = OpCounter()
        dinic(net, "s", "t", counter=counter)
        assert counter["arc_scan"] > 0
        assert counter["augmentation"] >= 1

    @pytest.mark.parametrize("seed", range(20))
    def test_random_networks_match_oracle(self, seed):
        rng = np.random.default_rng(300 + seed)
        net, s, t = random_flow_network(rng, n_nodes=12, n_arcs=36)
        expected = nx_max_flow(net, s, t)
        assert dinic(net, s, t).value == expected
        check_flow(net, s, t)
        assert is_integral(net)


@given(
    seed=st.integers(0, 10_000),
    n_nodes=st.integers(4, 14),
    n_arcs=st.integers(4, 50),
)
@settings(max_examples=60, deadline=None)
def test_property_dinic_equals_edmonds_karp(seed, n_nodes, n_arcs):
    """Property: Dinic and Edmonds–Karp find the same max-flow value."""
    rng = np.random.default_rng(seed)
    net, s, t = random_flow_network(rng, n_nodes=n_nodes, n_arcs=n_arcs, unit=True)
    v_dinic = dinic(net.copy(), s, t).value
    v_ek = edmonds_karp(net, s, t).value
    assert v_dinic == v_ek

"""Tests for the out-of-kilter algorithm vs the other min-cost solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.graph import FlowNetwork
from repro.flows.maxflow import edmonds_karp
from repro.flows.mincost import InfeasibleFlowError, min_cost_flow
from repro.flows.out_of_kilter import min_cost_circulation, out_of_kilter
from repro.flows.validate import check_flow, is_integral
from tests.helpers import random_flow_network


class TestCirculation:
    def test_trivial_all_zero_is_feasible(self):
        net = FlowNetwork()
        net.add_arc("a", "b", 2, cost=3)
        net.add_arc("b", "a", 2, cost=4)
        cost = min_cost_circulation(net)
        assert cost == 0.0
        assert all(arc.flow == 0 for arc in net.arcs)

    def test_lower_bounds_force_flow(self):
        net = FlowNetwork()
        net.add_arc("a", "b", 2, cost=1, lower=1)
        net.add_arc("b", "a", 2, cost=1)
        cost = min_cost_circulation(net)
        assert cost == 2.0
        check_flow(net)

    def test_negative_cost_cycle_is_saturated(self):
        net = FlowNetwork()
        net.add_arc("a", "b", 3, cost=-2)
        net.add_arc("b", "a", 3, cost=1)
        cost = min_cost_circulation(net)
        assert cost == 3 * (-2 + 1)
        check_flow(net)

    def test_infeasible_bounds_detected(self):
        net = FlowNetwork()
        # A one-way arc with a lower bound and no way back.
        net.add_arc("a", "b", 2, cost=0, lower=1)
        net.add_node("c")
        net.add_arc("b", "c", 2, cost=0)
        with pytest.raises(InfeasibleFlowError):
            min_cost_circulation(net)

    def test_cheaper_return_path_chosen(self):
        net = FlowNetwork()
        net.add_arc("a", "b", 1, cost=0, lower=1)
        net.add_arc("b", "a", 1, cost=7)
        net.add_arc("b", "c", 1, cost=1)
        net.add_arc("c", "a", 1, cost=1)
        cost = min_cost_circulation(net)
        assert cost == 2.0


class TestSTFlow:
    def test_matches_ssp_on_simple_network(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 1, cost=1)
        net.add_arc("a", "t", 1, cost=1)
        net.add_arc("s", "b", 2, cost=5)
        net.add_arc("b", "t", 2, cost=5)
        res = out_of_kilter(net, "s", "t", target_flow=1)
        assert res.value == 1
        assert res.cost == 2
        # The temporary return arc must be gone.
        assert not net.find_arcs("t", "s")
        check_flow(net, "s", "t")

    def test_infeasible_target(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1, cost=0)
        with pytest.raises(InfeasibleFlowError):
            out_of_kilter(net, "s", "t", target_flow=2)

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_ssp_on_random_instances(self, seed):
        rng = np.random.default_rng(600 + seed)
        net, s, t = random_flow_network(rng, n_nodes=8, n_arcs=18)
        maxv = int(edmonds_karp(net.copy(), s, t).value)
        if maxv == 0:
            pytest.skip("no s-t path")
        target = max(1, maxv // 2)
        expected = min_cost_flow(net.copy(), s, t, target_flow=target).cost
        res = out_of_kilter(net, s, t, target_flow=target)
        assert res.value == target
        assert res.cost == pytest.approx(expected)
        assert is_integral(net)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_property_out_of_kilter_optimal_on_unit_networks(seed):
    """Property: out-of-kilter equals SSP cost on 0-1 networks.

    The 0-1 case is exactly what Transformation 2 produces; the paper
    quotes the O(|V||E|^2) bound for it.
    """
    rng = np.random.default_rng(seed)
    net, s, t = random_flow_network(rng, n_nodes=8, n_arcs=20, unit=True)
    maxv = int(edmonds_karp(net.copy(), s, t).value)
    if maxv == 0:
        return
    expected = min_cost_flow(net.copy(), s, t, target_flow=maxv).cost
    res = out_of_kilter(net, s, t, target_flow=maxv)
    assert res.cost == pytest.approx(expected)
    assert check_flow(net, s, t) == pytest.approx(maxv)

"""Corner-branch tests across the flows package.

Small behaviours that the algorithm-level tests do not pin down:
empty/degenerate inputs, error messages, result-object accessors.
"""

import math

import pytest

from repro.flows.graph import FlowNetwork
from repro.flows.dinic import LayeredNetwork, dinic
from repro.flows.lp import LinearProgram, LPResult, LPStatus, Sense
from repro.flows.maxflow import augment_along, edmonds_karp
from repro.flows.mincost import min_cost_flow
from repro.flows.mincut import min_cut, residual_reachable
from repro.flows.multicommodity import Commodity, MultiCommodityProblem, solve_max_multicommodity
from repro.flows.simplex import simplex_standard_form
import numpy as np


class TestGraphEdges:
    def test_find_arcs_empty(self):
        net = FlowNetwork()
        net.add_node("a")
        assert net.find_arcs("a", "b") == []
        assert net.find_arcs("ghost", "b") == []

    def test_flow_value_of_isolated_source(self):
        net = FlowNetwork()
        net.add_node("s")
        assert net.flow_value("s") == 0.0

    def test_decompose_empty_flow(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 3)
        assert net.decompose_paths("s", "t") == []

    def test_incident_on_leaf(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        moves = list(net.incident("t"))
        assert len(moves) == 1 and moves[0][1] is False


class TestMaxflowEdges:
    def test_augment_along_empty_path_noop(self):
        augment_along([], 5.0)  # must not raise

    def test_missing_terminals_tolerated(self):
        net = FlowNetwork()
        net.add_node("s")
        assert edmonds_karp(net, "s", "t").value == 0.0
        assert edmonds_karp(net, "nope", "t").value == 0.0


class TestDinicEdges:
    def test_layered_network_accessors(self):
        ln = LayeredNetwork(source="s", sink="t")
        assert ln.depth == 0
        assert ln.useful_moves("anything") == []

    def test_dinic_missing_source(self):
        net = FlowNetwork()
        net.add_node("t")
        assert dinic(net, "s", "t").value == 0.0


class TestMincutEdges:
    def test_residual_reachable_missing_source(self):
        net = FlowNetwork()
        net.add_node("a")
        assert residual_reachable(net, "zzz") == set()

    def test_min_cut_requires_max_flow(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        with pytest.raises(ValueError, match="not maximum"):
            min_cut(net, "s", "t")

    def test_cut_sides_partition(self):
        net = FlowNetwork()
        net.add_arc("s", "m", 2)
        net.add_arc("m", "t", 1)
        edmonds_karp(net, "s", "t")
        cut = min_cut(net, "s", "t")
        assert cut.source_side | cut.sink_side == set(net.nodes)
        assert not cut.source_side & cut.sink_side


class TestMincostEdges:
    def test_missing_terminal_without_target_ok(self):
        net = FlowNetwork()
        net.add_node("s")
        res = min_cost_flow(net, "s", "t")
        assert res.value == 0.0 and res.cost == 0.0

    def test_missing_terminal_with_target_raises(self):
        from repro.flows.mincost import InfeasibleFlowError

        net = FlowNetwork()
        net.add_node("s")
        with pytest.raises(InfeasibleFlowError):
            min_cost_flow(net, "s", "t", target_flow=1)


class TestLPEdges:
    def test_set_objective(self):
        lp = LinearProgram()
        lp.add_variable("x", high=5.0)
        lp.set_objective("x", -1.0)
        from repro.flows.simplex import simplex_solve

        res = simplex_solve(lp)
        assert res["x"] == pytest.approx(5.0)

    def test_result_getitem(self):
        res = LPResult(status=LPStatus.OPTIMAL, objective=0.0, values={"x": 3.0})
        assert res["x"] == 3.0

    def test_zero_coefficients_dropped(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint({"x": 0.0}, Sense.EQ, 0.0)
        A, b, c, low, high = lp.to_standard_form()
        assert A[0, 0] == 0.0

    def test_standard_form_no_constraints_objective_direction(self):
        # min with all-infinite upper bound and negative cost: unbounded.
        status, x, obj, it = simplex_standard_form(
            np.zeros((0, 1)), np.zeros(0), np.array([-1.0]),
            np.array([0.0]), np.array([math.inf]),
        )
        assert status is LPStatus.UNBOUNDED


class TestMulticommodityEdges:
    def test_commodity_flow_accessor(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        problem = MultiCommodityProblem(net, [Commodity("A", "s", "t")])
        res = solve_max_multicommodity(problem)
        assert res.commodity_flow(0, net.arcs[0]) == pytest.approx(1.0)

    def test_cost_override_lookup(self):
        net = FlowNetwork()
        arc = net.add_arc("s", "t", 1, cost=2.0)
        problem = MultiCommodityProblem(net, [Commodity("A", "s", "t")],
                                        costs={(0, arc.index): 9.0})
        assert problem.cost_of(0, arc) == 9.0
        assert problem.cost_of(1, arc) == 2.0

    def test_empty_commodity_list(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        res = solve_max_multicommodity(MultiCommodityProblem(net, []))
        assert res.total_flow == 0.0

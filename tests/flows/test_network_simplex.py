"""Tests for the network simplex min-cost flow solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flows.graph import FlowNetwork
from repro.flows.maxflow import edmonds_karp
from repro.flows.mincost import InfeasibleFlowError, min_cost_flow
from repro.flows.network_simplex import network_simplex
from repro.flows.validate import check_flow, is_integral
from tests.helpers import nx_min_cost_for_value, random_flow_network


class TestBasics:
    def test_two_route_split(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 1, cost=1)
        net.add_arc("a", "t", 1, cost=1)
        net.add_arc("s", "b", 2, cost=5)
        net.add_arc("b", "t", 2, cost=5)
        res = network_simplex(net, "s", "t", target_flow=3)
        assert res.value == 3
        assert res.cost == 22
        check_flow(net, "s", "t")

    def test_zero_target(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1, cost=1)
        res = network_simplex(net, "s", "t", target_flow=0)
        assert res.value == 0 and res.cost == 0

    def test_negative_target_rejected(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1)
        with pytest.raises(ValueError, match="negative target"):
            network_simplex(net, "s", "t", target_flow=-1)

    def test_infeasible_detected(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1, cost=1)
        with pytest.raises(InfeasibleFlowError):
            network_simplex(net, "s", "t", target_flow=3)

    def test_disconnected_infeasible(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 1)
        net.add_arc("b", "t", 1)
        with pytest.raises(InfeasibleFlowError):
            network_simplex(net, "s", "t", target_flow=1)

    def test_nonzero_initial_flow_rejected(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 1).flow = 1.0
        with pytest.raises(ValueError, match="zero initial flow"):
            network_simplex(net, "s", "t", target_flow=1)

    def test_negative_costs(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 1, cost=-5)
        net.add_arc("a", "t", 1, cost=2)
        net.add_arc("s", "t", 1, cost=0)
        res = network_simplex(net, "s", "t", target_flow=2)
        assert res.cost == -3
        check_flow(net, "s", "t")

    def test_upper_bounded_pivot(self):
        """An instance whose optimum needs a nonbasic arc at its upper
        bound (saturated cheap arc)."""
        net = FlowNetwork()
        net.add_arc("s", "t", 2, cost=1)
        net.add_arc("s", "m", 3, cost=2)
        net.add_arc("m", "t", 3, cost=2)
        res = network_simplex(net, "s", "t", target_flow=4)
        assert res.cost == 2 * 1 + 2 * 4
        assert net.find_arcs("s", "t")[0].flow == 2


class TestAgainstOracles:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances_match_ssp(self, seed):
        rng = np.random.default_rng(1100 + seed)
        net, s, t = random_flow_network(rng, n_nodes=8, n_arcs=22)
        maxv = int(edmonds_karp(net.copy(), s, t).value)
        if maxv == 0:
            pytest.skip("no s-t path")
        target = max(1, maxv // 2)
        expected = min_cost_flow(net.copy(), s, t, target_flow=target).cost
        res = network_simplex(net, s, t, target_flow=target)
        assert res.value == target
        assert res.cost == pytest.approx(expected)
        assert is_integral(net)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(1200 + seed)
        net, s, t = random_flow_network(rng, n_nodes=9, n_arcs=26)
        maxv = int(edmonds_karp(net.copy(), s, t).value)
        if maxv == 0:
            pytest.skip("no s-t path")
        expected = nx_min_cost_for_value(net, s, t, maxv)
        res = network_simplex(net, s, t, target_flow=maxv)
        assert res.cost == pytest.approx(expected)


def test_scheduler_integration():
    from repro.core import MRSIN, OptimalScheduler, Request
    from repro.networks import omega

    m = MRSIN(omega(8), preferences=[3, 8, 1, 5, 2, 9, 4, 6])
    for p in range(6):
        m.submit(Request(p, priority=1 + p))
    a = OptimalScheduler(mincost="network_simplex")
    mapping = a.schedule(m)
    b = OptimalScheduler(mincost="ssp")
    m2 = MRSIN(omega(8), preferences=[3, 8, 1, 5, 2, 9, 4, 6])
    for p in range(6):
        m2.submit(Request(p, priority=1 + p))
    mapping2 = b.schedule(m2)
    assert len(mapping) == len(mapping2)
    assert a.stats.flow_cost == pytest.approx(b.stats.flow_cost)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_property_network_simplex_optimal_on_unit_networks(seed):
    """Property: network simplex matches SSP on 0-1 networks (the
    Transformation 2 case)."""
    rng = np.random.default_rng(seed)
    net, s, t = random_flow_network(rng, n_nodes=8, n_arcs=20, unit=True)
    maxv = int(edmonds_karp(net.copy(), s, t).value)
    if maxv == 0:
        return
    expected = min_cost_flow(net.copy(), s, t, target_flow=maxv).cost
    res = network_simplex(net, s, t, target_flow=maxv)
    assert res.cost == pytest.approx(expected)
    assert check_flow(net, s, t) == pytest.approx(maxv)

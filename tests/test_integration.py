"""End-to-end integration tests spanning every subsystem.

Each test exercises a realistic multi-cycle scenario through the
public API: networks → model → transformations → solvers → circuit
establishment → task lifecycle, with both software and hardware
schedulers in the loop.
"""

import numpy as np
import pytest

from repro.core import (
    MRSIN,
    Discipline,
    OptimalScheduler,
    Request,
    greedy_schedule,
)
from repro.distributed import DistributedScheduler, MonitorScheduler
from repro.networks import benes, gamma, omega
from repro.sim.queueing import simulate_queueing
from repro.sim.workload import WorkloadSpec, sample_instance


class TestMultiCycleOperation:
    def test_sustained_scheduling_with_task_lifecycle(self):
        """Three full cycles: schedule, transmit, serve, repeat —
        the Section II model end to end."""
        m = MRSIN(omega(8))
        sched = OptimalScheduler()
        rng = np.random.default_rng(0)
        served_total = 0
        for cycle in range(3):
            for p in range(8):
                if rng.random() < 0.8:
                    m.submit(Request(p, tag=("cycle", cycle, p)))
            mapping = sched.schedule(m)
            m.apply_mapping(mapping)
            served_total += len(mapping)
            # Transmissions complete mid-cycle; circuits free up.
            for a in mapping:
                m.complete_transmission(a.resource.index)
            assert m.network.occupancy() == 0.0
            # Half the resources finish before the next cycle.
            busy = [r.index for r in m.resources if r.busy]
            for r in busy[::2]:
                m.complete_service(r)
        assert served_total >= 8

    def test_hardware_and_software_schedulers_interleave(self):
        """Alternate the distributed and monitor schedulers across
        cycles on the same system — they must compose."""
        m = MRSIN(omega(8))
        rng = np.random.default_rng(1)
        for cycle in range(4):
            for p in range(8):
                if rng.random() < 0.6 and not m.network.processor_link(p).occupied:
                    m.submit(Request(p))
            if cycle % 2 == 0:
                mapping = DistributedScheduler().schedule(m).mapping
            else:
                mapping = MonitorScheduler().schedule(m).mapping
            m.apply_mapping(mapping)
            for r in [r.index for r in m.resources if r.busy]:
                m.complete_service(r)
            m.pending.clear()

    def test_heterogeneous_pipeline(self):
        """PUMPS-style: typed prioritised requests drained over
        multiple cycles with limited per-type capacity."""
        types = ["fft", "fft", "hist", "conv", "conv", "fft", "hist", "conv"]
        m = MRSIN(omega(8), resource_types=types)
        workload = [
            Request(p, resource_type=t, priority=1 + (p % 5))
            for p, t in enumerate(["fft", "hist", "hist", "conv", "fft", "conv", "hist", "fft"])
        ]
        m.submit_many(workload)
        sched = OptimalScheduler()
        drained = 0
        for _ in range(4):
            mapping = sched.schedule(m)
            if not mapping.assignments:
                break
            for a in mapping:
                assert a.resource.resource_type == a.request.resource_type
            m.apply_mapping(mapping)
            drained += len(mapping)
            for r in [r.index for r in m.resources if r.busy]:
                m.complete_service(r)
        assert drained == len(workload)

    def test_queueing_with_all_policies_conserves_tasks(self):
        for policy in ("optimal", "greedy", "random_binding"):
            m = MRSIN(omega(8))
            res = simulate_queueing(m, policy=policy, arrival_rate=0.4,
                                    horizon=120.0, seed=4)
            assert res.completed > 0
            assert 0.0 <= res.utilization <= 1.0


class TestCrossSchedulerConsistency:
    @pytest.mark.parametrize("builder", [omega, benes, gamma])
    def test_all_optimal_paths_agree_on_value(self, builder):
        """Software Dinic, push-relabel, the distributed tokens, and
        the monitor must all report the same optimum on the same
        instance."""
        spec = WorkloadSpec(builder=builder, n_ports=8,
                            request_density=0.8, free_density=0.7,
                            occupied_circuits=1)
        for seed in range(5):
            counts = set()
            for run in range(4):
                m = sample_instance(spec, seed)
                if run == 0:
                    counts.add(len(OptimalScheduler(maxflow="dinic").schedule(m)))
                elif run == 1:
                    counts.add(len(OptimalScheduler(maxflow="push_relabel").schedule(m)))
                elif run == 2:
                    counts.add(len(DistributedScheduler().schedule(m).mapping))
                else:
                    counts.add(len(MonitorScheduler().schedule(m).mapping))
            assert len(counts) == 1, f"{builder.__name__} seed {seed}: {counts}"

    def test_discipline_dispatch_stable_across_cycles(self):
        m = MRSIN(omega(8), resource_types=["a", "b"] * 4)
        sched = OptimalScheduler()
        m.submit(Request(0, resource_type="a"))
        assert sched.classify(m) is Discipline.HETEROGENEOUS
        mapping = sched.schedule(m)
        m.apply_mapping(mapping)
        m.submit(Request(1, resource_type="b", priority=7))
        assert sched.classify(m) is Discipline.HETEROGENEOUS_PRIORITY
        assert len(sched.schedule(m)) == 1

    def test_greedy_never_invalidates_future_optimal(self):
        """Apply a greedy mapping, then let the optimal scheduler work
        with the leftovers — states must stay consistent."""
        m = MRSIN(omega(8))
        for p in range(8):
            m.submit(Request(p))
        first = greedy_schedule(m, order="random", rng=5)
        m.apply_mapping(first)
        second = OptimalScheduler().schedule(m)
        second.validate(m)
        m.apply_mapping(second)
        assert len(first) + len(second) <= 8

"""Soak: a seeded open-loop load generator vs a real wire server on
omega-16 with Poisson fault injection, over localhost TCP.

The invariants are absolute, not statistical:

- zero protocol errors (nothing hostile is on this wire, so any
  framing error is a bug);
- zero leaked leases (everything granted is released, auto-released,
  or revoked — the network ends with no busy resource);
- nonzero completed allocations (the system made progress through the
  fault churn).

``REPRO_SOAK_DURATION`` (seconds, default 2) scales the run; CI's
soak job runs it at 10.
"""

import asyncio
import os

from repro.core import MRSIN
from repro.faults import FaultInjector
from repro.networks import omega
from repro.service.server import AllocationService, ServiceConfig
from repro.wire import WireServer
from repro.wire.loadgen import LoadGenConfig, run_loadgen

DURATION = float(os.environ.get("REPRO_SOAK_DURATION", "2"))


def test_soak_loadgen_vs_faulty_server():
    async def scenario():
        mrsin = MRSIN(omega(16))
        service = AllocationService(
            mrsin,
            config=ServiceConfig(
                tick_interval=0.005,
                queue_limit=256,
                default_timeout=1.0,
                fault_budget=8,
            ),
        )
        injector = FaultInjector(
            mrsin,
            rng=101,
            fault_rate=4.0,       # several faults over even the short run
            transient_fraction=0.9,
            mean_repair=0.25,
        )
        config = LoadGenConfig(
            rate=250.0,
            duration=DURATION,
            processors=16,
            arrival="bursty",
            connections=4,
            seed=23,
            request_timeout=1.0,
            mean_hold=0.02,
        )
        stop = asyncio.Event()

        async def churn() -> None:
            started = service.clock.now()
            while not stop.is_set():
                await asyncio.sleep(0.01)
                injector.inject(service, service.clock.now() - started)

        async with service:
            async with WireServer(service, max_connections=8) as server:
                host, port = server.address
                churn_task = asyncio.ensure_future(churn())
                try:
                    report = await run_loadgen(host, port, config)
                finally:
                    stop.set()
                    await churn_task
                # Give disconnect auto-release a beat to settle.
                deadline = asyncio.get_event_loop().time() + 2.0
                while service.active_leases and (
                    asyncio.get_event_loop().time() < deadline
                ):
                    await asyncio.sleep(0.01)
                wire = server.snapshot()
            # --- invariants -------------------------------------------
            assert report.completed > 0, "no allocation completed"
            assert wire["protocol_errors"] == 0, wire
            assert report.errors == 0, report.to_json()
            assert service.active_leases == 0, "leaked leases"
            assert sum(r.busy for r in mrsin.resources) == 0, (
                "resource left busy after all leases ended"
            )
            assert (
                report.completed + report.rejected
                + report.timed_out + report.errors
                == report.offered
            )
            assert service.snapshot()["faults_injected"] > 0, (
                "soak ran without any fault — raise fault_rate or duration"
            )

    asyncio.run(scenario())

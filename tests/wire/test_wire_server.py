"""Wire server/client lifecycle tests: lease custody across
disconnects, graceful drain, revocation push, connection guards, and
error replies — all over real localhost TCP."""

import asyncio
import contextlib

import pytest

from repro.core import MRSIN
from repro.networks import omega
from repro.service.server import AllocationService, ServiceConfig
from repro.wire import (
    WireClient,
    WireConnectionError,
    WireLeaseRevoked,
    WireRejected,
    WireRemoteError,
    WireServer,
    WireTimeout,
)
from repro.wire import protocol


def run(coro):
    return asyncio.run(coro)


@contextlib.asynccontextmanager
async def stack(ports=8, tick=0.005, max_connections=64, **config_kwargs):
    """A running service + wire server on an ephemeral port."""
    defaults = dict(tick_interval=tick, queue_limit=256, default_timeout=2.0)
    defaults.update(config_kwargs)
    service = AllocationService(MRSIN(omega(ports)), config=ServiceConfig(**defaults))
    async with service:
        async with WireServer(service, max_connections=max_connections) as server:
            yield service, server


async def poll_until(predicate, timeout=2.0, interval=0.005):
    """Await a condition the tick loop will eventually make true."""
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        if asyncio.get_event_loop().time() > deadline:
            raise AssertionError("condition not reached before timeout")
        await asyncio.sleep(interval)


async def raw_connect(server):
    host, port = server.address
    return await asyncio.open_connection(host, port)


async def raw_roundtrip(reader, writer, frame, timeout=2.0):
    writer.write(protocol.encode(frame))
    await writer.drain()
    return protocol.decode(await asyncio.wait_for(reader.readline(), timeout))


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    def test_acquire_release_over_tcp(self):
        async def scenario():
            async with stack() as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=2.0) as client:
                    lease = await client.acquire(3)
                    assert lease.active
                    assert service.active_leases == 1
                    await client.release(lease)
                    assert lease.released and not lease.active
                    assert service.active_leases == 0
                    assert server.leases_granted == 1
                    assert server.protocol_errors == 0

        run(scenario())

    def test_end_transmission_then_release(self):
        async def scenario():
            async with stack() as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=2.0) as client:
                    lease = await client.acquire(0)
                    await client.end_transmission(lease)
                    assert lease.active  # resource still held
                    assert service.active_leases == 1
                    await client.release(lease)
                    assert service.active_leases == 0

        run(scenario())

    def test_ping_and_stats(self):
        async def scenario():
            async with stack() as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=2.0) as client:
                    await client.ping()
                    lease = await client.acquire(1)
                    stats = await client.stats()
                    assert stats["active_leases"] == 1
                    assert stats["wire"]["leases_granted"] == 1
                    assert stats["wire"]["open_connections"] == 1
                    await client.release(lease)

        run(scenario())

    def test_pipelined_acquires_on_one_connection(self):
        async def scenario():
            async with stack(ports=8) as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=2.0) as client:
                    leases = await asyncio.gather(
                        *(client.acquire(p) for p in range(8))
                    )
                    assert len({l.lease_id for l in leases}) == 8
                    assert service.active_leases == 8
                    for lease in leases:
                        await client.release(lease)
                    assert service.active_leases == 0

        run(scenario())


# ----------------------------------------------------------------------
# Satellite: disconnect auto-releases every connection-held lease
# ----------------------------------------------------------------------
class TestDisconnectCustody:
    def test_client_disconnect_auto_releases(self):
        async def scenario():
            async with stack() as (service, server):
                host, port = server.address
                client = WireClient(host, port, request_timeout=2.0)
                await client.connect()
                for p in range(4):
                    await client.acquire(p)
                assert service.active_leases == 4
                await client.close()  # no releases sent
                await poll_until(lambda: service.active_leases == 0)
                assert server.leases_auto_released == 4
                assert server.open_connections == 0

        run(scenario())

    def test_grant_after_disconnect_is_auto_released(self):
        """The no-reply path in ``_handle_acquire`` (R008-suppressed):
        when the transport dies while an ACQUIRE is queued — ``_send``
        flips ``conn.closed`` on a write failure before teardown has
        collected the task — the grant has no owner and no
        destination, so it is given straight back instead of being
        stranded, and no reply frame is owed."""

        async def scenario():
            async with stack() as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=2.0) as client:
                    await client.ping()  # connection is registered
                    (conn,) = server._connections.values()
                    conn.closed = True  # transport died mid-queue
                    await server._handle_acquire(
                        conn, protocol.make_acquire(99, 1)
                    )
                    assert server.leases_auto_released == 1
                    assert server.leases_granted == 0
                    assert service.active_leases == 0

        run(scenario())

    def test_lost_connection_marks_client_leases_revoked(self):
        async def scenario():
            async with stack() as (service, server):
                host, port = server.address
                client = WireClient(host, port, request_timeout=2.0)
                await client.connect()
                lease = await client.acquire(0)
                # Server vanishes out from under the client.
                await server.close()
                await poll_until(lambda: lease.revoked)
                with pytest.raises(WireLeaseRevoked):
                    await client.release(lease)
                await client.close()

        run(scenario())


# ----------------------------------------------------------------------
# Satellite: graceful drain
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_rejects_new_and_completes_in_flight(self):
        async def scenario():
            # omega(4): 4 resources.  Saturate them, queue one more.
            async with stack(ports=4) as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=5.0) as client:
                    held = [await client.acquire(p) for p in range(4)]
                    queued = asyncio.ensure_future(client.acquire(0, timeout=5.0))
                    await poll_until(lambda: service.queue_depth == 1)
                    drain_task = asyncio.ensure_future(server.drain())
                    await poll_until(lambda: server.draining)
                    # New ACQUIREs bounce immediately...
                    with pytest.raises(WireRejected, match="draining"):
                        await client.acquire(1)
                    # ...while the in-flight one is still pending.
                    assert not queued.done()
                    assert not drain_task.done()
                    # Freeing a resource lets the in-flight acquire finish,
                    # which is what drain() was waiting for.
                    await client.release(held[0])
                    lease = await asyncio.wait_for(queued, 2.0)
                    await asyncio.wait_for(drain_task, 2.0)
                    assert lease.active
                    # Cleanup still works on a draining server.
                    await client.release(lease)
                    for l in held[1:]:
                        await client.release(l)
                    assert service.active_leases == 0

        run(scenario())


# ----------------------------------------------------------------------
# Satellite: revocation reaches the holder as a pushed REVOKED frame
# ----------------------------------------------------------------------
class TestRevocationPush:
    def test_fault_revocation_pushed_to_client(self):
        async def scenario():
            async with stack() as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=2.0) as client:
                    lease = await client.acquire(2)
                    service.mrsin.fail_resource(lease.resource)
                    service.reconcile_faults()
                    await asyncio.wait_for(lease.revocation.wait(), 2.0)
                    assert lease.revoked and not lease.active
                    assert server.revocations_pushed == 1
                    with pytest.raises(WireLeaseRevoked):
                        await client.release(lease)

        run(scenario())

    def test_release_racing_revocation_gets_revoked_reply(self):
        """A RELEASE crossing the REVOKED push on the wire is answered
        with REVOKED, not ERROR — the client learns the true outcome."""

        async def scenario():
            async with stack() as (service, server):
                reader, writer = await raw_connect(server)
                reply = await raw_roundtrip(
                    reader, writer, protocol.make_acquire(1, 0)
                )
                assert reply.kind == "LEASE"
                lease_id = reply.get("lease_id")
                service.mrsin.fail_resource(reply.get("resource"))
                service.reconcile_faults()
                push = protocol.decode(
                    await asyncio.wait_for(reader.readline(), 2.0)
                )
                assert push.kind == "REVOKED"
                assert push.request_id == protocol.PUSH_ID
                assert push.get("lease_id") == lease_id
                # Release the revoked lease anyway: REVOKED reply.
                reply = await raw_roundtrip(
                    reader, writer, protocol.make_release(2, lease_id)
                )
                assert reply.kind == "REVOKED"
                writer.close()
                await writer.wait_closed()

        run(scenario())


# ----------------------------------------------------------------------
# Satellite: late replies after a local timeout are not dropped
# ----------------------------------------------------------------------
class TestStaleReplies:
    def test_late_lease_grant_is_auto_released(self):
        """A LEASE arriving after the client's wait expired must be
        answered with a RELEASE — before this fix the grant was dropped
        and the resource stayed busy until disconnect."""

        async def scenario():
            released: asyncio.Future = asyncio.get_running_loop().create_future()

            async def handler(reader, writer):
                # Grant the ACQUIRE only after the client gave up.
                frame = protocol.decode(await reader.readline())
                assert frame.kind == "ACQUIRE"
                await asyncio.sleep(0.2)
                writer.write(
                    protocol.encode(
                        protocol.make_lease(frame.request_id, 77, 3, 0.2)
                    )
                )
                await writer.drain()
                follow_up = protocol.decode(await reader.readline())
                if not released.done():
                    released.set_result(follow_up)
                # Answer the RELEASE so the id-tracking path runs too.
                writer.write(
                    protocol.encode(
                        protocol.Frame("OK", follow_up.request_id, {})
                    )
                )
                await writer.drain()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = WireClient(host, port, request_timeout=0.05)
                await client.connect()
                with pytest.raises(WireTimeout):
                    await client.acquire(0)
                follow_up = await asyncio.wait_for(released, 2.0)
                assert follow_up.kind == "RELEASE"
                assert follow_up.get("lease_id") == 77
                assert client.stale_replies == 1
                # The stale grant never became a client-side lease.
                assert client._leases == {}
                # The OK answering our auto-RELEASE is not stale.
                await asyncio.sleep(0.05)
                assert client.stale_replies == 1
                await client.close()
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_late_non_lease_reply_only_counted(self):
        """Over the real stack: a server-side TIMEOUT reply landing
        after the local wait expired bumps the counter and nothing
        else — no RELEASE is owed for a reply that grants nothing."""

        async def scenario():
            async with stack(ports=4, tick=0.02) as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=2.0) as client:
                    held = [await client.acquire(p) for p in range(4)]
                    # Saturated: the server queues this ACQUIRE and
                    # answers TIMEOUT at ~0.1s, after the 0.05s local
                    # wait has already raised.
                    with pytest.raises(WireTimeout):
                        await client._request(
                            protocol.make_acquire(
                                next(client._ids), 0, timeout=0.1
                            ),
                            wait=0.05,
                        )
                    await poll_until(lambda: client.stale_replies == 1)
                    for lease in held:
                        await client.release(lease)
                    assert service.active_leases == 0

        run(scenario())


# ----------------------------------------------------------------------
# Guards and error replies
# ----------------------------------------------------------------------
class TestGuards:
    def test_max_connections_refused_with_error_frame(self):
        async def scenario():
            async with stack(max_connections=1) as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=2.0) as client:
                    await client.ping()
                    reader, writer = await raw_connect(server)
                    frame = protocol.decode(
                        await asyncio.wait_for(reader.readline(), 2.0)
                    )
                    assert frame.kind == "ERROR"
                    assert "max_connections" in frame.get("message")
                    assert server.connections_refused == 1
                    writer.close()

        run(scenario())

    def test_malformed_frame_answered_not_fatal(self):
        async def scenario():
            async with stack() as (service, server):
                reader, writer = await raw_connect(server)
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = protocol.decode(
                    await asyncio.wait_for(reader.readline(), 2.0)
                )
                assert reply.kind == "ERROR"
                assert reply.request_id == protocol.PUSH_ID
                assert server.protocol_errors == 1
                # The connection survives and still serves requests.
                reply = await raw_roundtrip(reader, writer, protocol.make_ping(9))
                assert reply.kind == "PONG"
                writer.close()
                await writer.wait_closed()

        run(scenario())

    def test_reply_kind_as_request_is_rejected(self):
        async def scenario():
            async with stack() as (service, server):
                reader, writer = await raw_connect(server)
                reply = await raw_roundtrip(
                    reader, writer, protocol.make_pong(5)
                )
                assert reply.kind == "ERROR"
                assert "request frame" in reply.get("message")
                writer.close()
                await writer.wait_closed()

        run(scenario())

    def test_bad_acquire_payload_gets_error(self):
        async def scenario():
            async with stack() as (service, server):
                reader, writer = await raw_connect(server)
                bad = protocol.Frame("ACQUIRE", 3, {"processor": "zero"})
                reply = await raw_roundtrip(reader, writer, bad)
                assert reply.kind == "ERROR"
                assert "processor" in reply.get("message")
                writer.close()
                await writer.wait_closed()

        run(scenario())

    def test_unknown_lease_release_is_error(self):
        async def scenario():
            async with stack() as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=2.0) as client:
                    from repro.wire.client import RemoteLease

                    ghost = RemoteLease(lease_id=10**6, resource=0, waited=0.0)
                    with pytest.raises(WireRemoteError, match="unknown lease"):
                        await client.release(ghost)

        run(scenario())

    def test_acquire_timeout_when_saturated(self):
        async def scenario():
            async with stack(ports=4) as (service, server):
                host, port = server.address
                async with WireClient(host, port, request_timeout=5.0) as client:
                    held = [await client.acquire(p) for p in range(4)]
                    with pytest.raises(WireTimeout):
                        await client.acquire(0, timeout=0.05)
                    for lease in held:
                        await client.release(lease)

        run(scenario())

    def test_connect_failure_raises_after_retries(self):
        async def scenario():
            client = WireClient(
                "127.0.0.1", 1,  # reserved port: nothing listens there
                reconnect_attempts=2,
                backoff_base=0.001,
                backoff_max=0.002,
                rng=7,
            )
            with pytest.raises(WireConnectionError, match="3 attempt"):
                await client.connect()

        run(scenario())

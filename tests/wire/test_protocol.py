"""Wire-protocol tests: every frame kind round-trips through
encode/decode, and every class of malformed input is rejected with a
:class:`ProtocolError` (never anything else)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wire import protocol
from repro.wire.protocol import (
    PUSH_ID,
    REPLY_KINDS,
    REQUEST_KINDS,
    WIRE_VERSION,
    Frame,
    ProtocolError,
    decode,
    encode,
)

ids = st.integers(0, 2**31)
reasons = st.text(max_size=40)


def frames() -> st.SearchStrategy[Frame]:
    """A strategy generating every frame kind via its constructor."""
    return st.one_of(
        st.builds(
            protocol.make_acquire,
            ids,
            st.integers(0, 1023),
            resource_type=st.one_of(st.text(min_size=1, max_size=8), st.integers(0, 9)),
            priority=st.integers(1, 8),
            timeout=st.one_of(st.none(), st.floats(0.001, 100.0)),
        ),
        st.builds(protocol.make_release, ids, ids),
        st.builds(protocol.make_end_tx, ids, ids),
        st.builds(protocol.make_ping, ids),
        st.builds(protocol.make_stats, ids),
        st.builds(
            protocol.make_lease, ids, ids, st.integers(0, 1023),
            st.floats(0.0, 1000.0),
        ),
        st.builds(protocol.make_rejected, ids, reasons),
        st.builds(protocol.make_timeout, ids, reasons),
        st.builds(protocol.make_revoked, ids, ids, reasons),
        st.builds(protocol.make_error, ids, reasons),
        st.builds(protocol.make_ok, ids),
        st.builds(protocol.make_pong, ids),
    )


class TestRoundTrip:
    @given(frame=frames())
    @settings(max_examples=400, deadline=None)
    def test_every_frame_kind_round_trips(self, frame):
        """Property: decode(encode(f)) == f for every constructor-built
        frame — kinds, ids, and payloads all survive the wire."""
        assert decode(encode(frame)) == frame

    @given(frame=frames())
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_one_json_line(self, frame):
        line = encode(frame)
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        document = json.loads(line)
        assert document["v"] == WIRE_VERSION
        assert document["kind"] == frame.kind
        assert document["id"] == frame.request_id

    def test_all_kinds_covered_by_constructors(self):
        """The constructors must span the full kind vocabulary — a new
        kind without a constructor would silently dodge the round-trip
        property above."""
        built = {
            protocol.make_acquire(1, 0).kind,
            protocol.make_release(1, 1).kind,
            protocol.make_end_tx(1, 1).kind,
            protocol.make_ping(1).kind,
            protocol.make_stats(1).kind,
            protocol.make_lease(1, 1, 0, 0.0).kind,
            protocol.make_rejected(1, "r").kind,
            protocol.make_timeout(1, "r").kind,
            protocol.make_revoked(PUSH_ID, 1, "r").kind,
            protocol.make_error(1, "m").kind,
            protocol.make_ok(1).kind,
            protocol.make_pong(1).kind,
        }
        assert built == set(REQUEST_KINDS) | set(REPLY_KINDS)


class TestMalformedInput:
    @pytest.mark.parametrize(
        "line, fragment",
        [
            (b"", "empty"),
            (b"   \n", "empty"),
            (b"\xff\xfe{", "UTF-8"),
            (b"{not json}\n", "JSON"),
            (b"[1,2,3]\n", "object"),
            (b"42\n", "object"),
            (b'{"kind":"PING","id":1}\n', "version"),
            (b'{"v":99,"kind":"PING","id":1}\n', "version"),
            (b'{"v":1,"kind":"NOPE","id":1}\n', "kind"),
            (b'{"v":1,"id":1}\n', "kind"),
            (b'{"v":1,"kind":"PING"}\n', "id"),
            (b'{"v":1,"kind":"PING","id":-1}\n', "id"),
            (b'{"v":1,"kind":"PING","id":"7"}\n', "id"),
            (b'{"v":1,"kind":"PING","id":true}\n', "id"),
        ],
    )
    def test_each_defect_raises_protocol_error(self, line, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            decode(line)

    @given(junk=st.binary(max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes_never_raise_anything_else(self, junk):
        """Property: hostile input produces ProtocolError or a Frame,
        never any other exception (the server turns ProtocolError into
        an ERROR reply; anything else would kill the connection)."""
        try:
            frame = decode(junk)
        except ProtocolError:
            return
        assert isinstance(frame, Frame)

    def test_text_input_accepted(self):
        frame = decode('{"v":1,"kind":"PING","id":3}')
        assert frame == protocol.make_ping(3)


class TestFrameValidation:
    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ProtocolError, match="kind"):
            Frame("BOGUS", 1)

    def test_bad_request_ids_rejected(self):
        with pytest.raises(ProtocolError):
            Frame("PING", -1)
        with pytest.raises(ProtocolError):
            Frame("PING", True)
        with pytest.raises(ProtocolError):
            Frame("PING", "7")

    def test_payload_may_not_shadow_envelope(self):
        with pytest.raises(ProtocolError, match="shadow"):
            Frame("OK", 1, {"kind": "LEASE"})

    def test_unencodable_payload_raises_protocol_error(self):
        with pytest.raises(ProtocolError, match="unencodable"):
            encode(Frame("OK", 1, {"bad": object()}))

    def test_get_reads_payload_with_default(self):
        frame = protocol.make_acquire(1, 5, priority=3)
        assert frame.get("processor") == 5
        assert frame.get("priority") == 3
        assert frame.get("missing", "d") == "d"

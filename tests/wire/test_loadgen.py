"""Load-generator tests: schedules are pure functions of the config,
each arrival process has its shape, and a short open-loop run against
a real server produces a coherent report."""

import asyncio

import pytest

from repro.core import MRSIN
from repro.networks import omega
from repro.service.server import AllocationService, ServiceConfig
from repro.wire import WireServer
from repro.wire.loadgen import (
    ARRIVAL_PROCESSES,
    LoadGenConfig,
    arrival_schedule,
    run_loadgen,
)


def cfg(**kwargs):
    defaults = dict(rate=200.0, duration=2.0, processors=16, seed=7)
    defaults.update(kwargs)
    return LoadGenConfig(**defaults)


# ----------------------------------------------------------------------
# Schedules: seeded, pure, shaped
# ----------------------------------------------------------------------
class TestSchedules:
    @pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
    def test_schedule_is_deterministic(self, arrival):
        a = arrival_schedule(cfg(arrival=arrival))
        b = arrival_schedule(cfg(arrival=arrival))
        assert a == b
        assert len(a) > 50

    @pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
    def test_schedule_respects_horizon_and_ranges(self, arrival):
        config = cfg(arrival=arrival)
        schedule = arrival_schedule(config)
        assert all(0.0 <= a.time < config.duration for a in schedule)
        assert all(0 <= a.processor < config.processors for a in schedule)
        assert all(a.hold >= 0.0 for a in schedule)
        times = [a.time for a in schedule]
        assert times == sorted(times)

    def test_different_seeds_differ(self):
        assert arrival_schedule(cfg(seed=1)) != arrival_schedule(cfg(seed=2))

    def test_poisson_mean_rate(self):
        schedule = arrival_schedule(cfg(rate=500.0, duration=4.0))
        assert len(schedule) == pytest.approx(2000, rel=0.15)

    def test_bursty_clusters_into_on_windows(self):
        config = cfg(
            arrival="bursty", rate=200.0, duration=4.0,
            burst_factor=4.0, burst_on_fraction=0.25, burst_period=1.0,
        )
        schedule = arrival_schedule(config)
        # Every arrival falls in the first quarter of its cycle.
        assert all((a.time % 1.0) < 0.25 + 1e-9 for a in schedule)
        # The long-run mean still tracks `rate`.
        assert len(schedule) == pytest.approx(800, rel=0.2)

    def test_diurnal_peak_outweighs_trough(self):
        config = cfg(
            arrival="diurnal", rate=400.0, duration=10.0,
            diurnal_period=10.0, diurnal_amplitude=0.8,
        )
        schedule = arrival_schedule(config)
        # sin > 0 on the first half-period, < 0 on the second.
        first = sum(a.time < 5.0 for a in schedule)
        second = len(schedule) - first
        assert first > 1.5 * second

    def test_config_validation(self):
        with pytest.raises(ValueError):
            cfg(rate=0)
        with pytest.raises(ValueError):
            cfg(duration=-1)
        with pytest.raises(ValueError):
            cfg(arrival="constant")
        with pytest.raises(ValueError):
            cfg(connections=0)
        with pytest.raises(ValueError):
            cfg(processors=0)
        with pytest.raises(ValueError):
            cfg(request_timeout=0)
        with pytest.raises(ValueError):
            cfg(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            cfg(burst_on_fraction=0.0)


# ----------------------------------------------------------------------
# A short real run
# ----------------------------------------------------------------------
class TestRun:
    def test_short_open_loop_run(self):
        async def scenario():
            service = AllocationService(
                MRSIN(omega(16)),
                config=ServiceConfig(
                    tick_interval=0.005, queue_limit=256, default_timeout=2.0
                ),
            )
            config = cfg(
                rate=300.0, duration=0.5, connections=2,
                mean_hold=0.01, request_timeout=2.0,
            )
            async with service:
                async with WireServer(service) as server:
                    host, port = server.address
                    report = await run_loadgen(host, port, config)
            assert report.offered == len(arrival_schedule(config))
            assert report.completed > 0
            assert (
                report.completed + report.rejected
                + report.timed_out + report.errors
                == report.offered
            )
            assert report.errors == 0
            assert report.histogram.count == report.completed
            assert report.throughput > 0
            latency = report.latency_ms()
            assert set(latency) == {"p50", "p90", "p99", "p999"}
            assert latency["p50"] <= latency["p99"] <= latency["p999"]
            # Everything granted was also handed back: no leaks.
            assert service.active_leases == 0
            payload = report.to_json()
            assert payload["completed"] == report.completed
            assert "loadgen" in report.render()

        asyncio.run(scenario())

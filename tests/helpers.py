"""Shared test utilities: random instance generators and oracles.

NetworkX and SciPy appear *only* here (and in the benchmark
cross-checks); the library under test never imports them.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.flows.graph import FlowNetwork


def random_flow_network(
    rng: np.random.Generator,
    n_nodes: int = 8,
    n_arcs: int = 20,
    max_cap: int = 5,
    max_cost: int = 10,
    *,
    unit: bool = False,
) -> tuple[FlowNetwork, int, int]:
    """A random digraph with integer capacities/costs; returns (net, s, t).

    Nodes are ``0..n_nodes-1`` with source 0 and sink ``n_nodes-1``.
    Parallel arcs are allowed; self-loops are skipped.  ``unit=True``
    forces all capacities to 1 (the MRSIN case).
    """
    net = FlowNetwork()
    for v in range(n_nodes):
        net.add_node(v)
    added = 0
    while added < n_arcs:
        u = int(rng.integers(0, n_nodes))
        v = int(rng.integers(0, n_nodes))
        if u == v:
            continue
        cap = 1 if unit else int(rng.integers(1, max_cap + 1))
        cost = int(rng.integers(0, max_cost + 1))
        net.add_arc(u, v, capacity=cap, cost=cost)
        added += 1
    return net, 0, n_nodes - 1


def to_networkx(net: FlowNetwork) -> nx.DiGraph:
    """Convert to a NetworkX DiGraph, merging parallel arcs.

    Parallel arcs are merged by summing capacities; for min-cost
    oracles use :func:`to_networkx_multi` instead (costs cannot be
    merged).
    """
    g = nx.DiGraph()
    for node in net.nodes:
        g.add_node(node)
    for arc in net.arcs:
        if g.has_edge(arc.tail, arc.head):
            g[arc.tail][arc.head]["capacity"] += arc.capacity
        else:
            g.add_edge(arc.tail, arc.head, capacity=arc.capacity)
    return g


def to_networkx_multi(net: FlowNetwork) -> nx.MultiDiGraph:
    """Convert to a MultiDiGraph preserving parallel arcs and costs."""
    g = nx.MultiDiGraph()
    for node in net.nodes:
        g.add_node(node)
    for arc in net.arcs:
        g.add_edge(arc.tail, arc.head, capacity=arc.capacity, weight=arc.cost)
    return g


def nx_max_flow(net: FlowNetwork, s, t) -> float:
    """Oracle maximum-flow value via NetworkX."""
    g = to_networkx(net)
    if s not in g or t not in g:
        return 0.0
    return float(nx.maximum_flow_value(g, s, t))


def nx_min_cost_for_value(net: FlowNetwork, s, t, value: int) -> float:
    """Oracle minimum cost of circulating ``value`` units from s to t."""
    g = to_networkx_multi(net)
    g.add_node(s)
    g.add_node(t)
    demands = {node: 0 for node in g.nodes}
    demands[s] = -value
    demands[t] = value
    nx.set_node_attributes(g, demands, "demand")
    flow_dict = nx.min_cost_flow(g)
    cost = 0.0
    for u, targets in flow_dict.items():
        for v, keyed in targets.items():
            for key, f in keyed.items():
                cost += g[u][v][key]["weight"] * f
    return cost

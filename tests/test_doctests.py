"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.flows.lp

MODULES_WITH_DOCTESTS = [repro.flows.lp]


@pytest.mark.parametrize("module", MODULES_WITH_DOCTESTS,
                         ids=[m.__name__ for m in MODULES_WITH_DOCTESTS])
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{module.__name__}: {result.failed} doctest failures"
    assert result.attempted > 0, f"{module.__name__} has no doctests to run"

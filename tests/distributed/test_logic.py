"""Gate-level/behavioural equivalence of the NS request-phase logic.

Exhaustively evaluates the boolean equations of
:mod:`repro.distributed.logic` over every local input combination of a
2x2 NS and checks them against a direct transcription of the
simulator's behavioural rules — plus the paper's "low gate count /
short delay" claims as concrete numbers.
"""

from itertools import product

import pytest

from repro.distributed.logic import (
    And,
    Const,
    Not,
    Or,
    Var,
    depth,
    gate_count,
    ns_request_logic,
    shared_gate_count,
)


class TestExprPrimitives:
    def test_var_and_const(self):
        assert Var("x").evaluate({"x": True})
        assert not Var("x").evaluate({"x": False})
        assert Const(True).evaluate({})
        assert not Const(False).evaluate({})

    def test_operators(self):
        x, y = Var("x"), Var("y")
        env = {"x": True, "y": False}
        assert (x | y).evaluate(env)
        assert not (x & y).evaluate(env)
        assert (~y).evaluate(env)

    def test_gate_count(self):
        x, y = Var("x"), Var("y")
        assert gate_count(x) == 0
        assert gate_count(x & y) == 1
        assert gate_count(~(x & y) | y) == 3

    def test_depth(self):
        x, y = Var("x"), Var("y")
        assert depth(x) == 0
        assert depth(x & y) == 1
        assert depth((x & y) | (x & y)) == 2
        assert depth(~x & y) == 2


def behavioural_reference(inputs: dict[str, bool], n_in: int = 2, n_out: int = 2) -> dict[str, bool]:
    """Direct Python transcription of the simulator's NS firing rule."""
    out: dict[str, bool] = {}
    arrivals = [inputs[f"tok_in_{i}"] for i in range(n_in)] + [
        inputs[f"tok_out_{o}"] for o in range(n_out)
    ]
    recv = inputs["e3"] and not inputs["fired"] and any(arrivals)
    out["recv"] = recv
    for o in range(n_out):
        free = not inputs[f"occ_out_{o}"] and not inputs[f"reg_out_{o}"]
        eligible = free and not inputs[f"mark_out_{o}"] and not inputs[f"tok_out_{o}"]
        out[f"send_out_{o}"] = recv and eligible
        out[f"set_mark_out_{o}"] = recv and (inputs[f"tok_out_{o}"] or eligible)
    for i in range(n_in):
        eligible = (
            inputs[f"reg_in_{i}"]
            and not inputs[f"mark_in_{i}"]
            and not inputs[f"tok_in_{i}"]
        )
        out[f"send_in_{i}"] = recv and eligible
        out[f"set_mark_in_{i}"] = recv and (inputs[f"tok_in_{i}"] or eligible)
    return out


INPUT_NAMES = (
    ["e3", "fired"]
    + [f"tok_in_{i}" for i in range(2)]
    + [f"tok_out_{o}" for o in range(2)]
    + [f"mark_in_{i}" for i in range(2)]
    + [f"mark_out_{o}" for o in range(2)]
    + [f"reg_in_{i}" for i in range(2)]
    + [f"reg_out_{o}" for o in range(2)]
    + [f"occ_out_{o}" for o in range(2)]
)


class TestNSLogic:
    def test_exhaustive_equivalence(self):
        """All 2^16 input combinations match the behavioural rules."""
        logic = ns_request_logic(2, 2)
        for bits in product([False, True], repeat=len(INPUT_NAMES)):
            env = dict(zip(INPUT_NAMES, bits))
            expected = behavioural_reference(env)
            for name, expr in logic.items():
                assert expr.evaluate(env) == expected[name], (name, env)

    def test_no_emission_when_not_fired_phase(self):
        logic = ns_request_logic(2, 2)
        env = {name: False for name in INPUT_NAMES}
        env["tok_in_0"] = True  # token arrives but E3 low
        assert not logic["send_out_0"].evaluate(env)
        env["e3"] = True
        env["fired"] = True  # second batch: discard
        assert not logic["recv"].evaluate(env)

    def test_paper_gate_count_claim(self):
        """'Very low gate count and very short token propagation
        delay': with common-subexpression sharing (the recv term is
        one physical signal), the whole request-phase decision logic
        of a 2x2 NS fits in well under 100 two-input gates with a
        critical path under 10 gate delays."""
        logic = ns_request_logic(2, 2)
        total = shared_gate_count(logic.values())
        worst = max(depth(expr) for expr in logic.values())
        assert total < 100, f"gate count {total}"
        assert worst < 10, f"critical path {worst}"

    def test_shared_count_below_tree_count(self):
        logic = ns_request_logic(2, 2)
        tree = sum(gate_count(e) for e in logic.values())
        shared = shared_gate_count(logic.values())
        assert shared < tree

    def test_scales_linearly_with_ports(self):
        small = shared_gate_count(ns_request_logic(2, 2).values())
        large = shared_gate_count(ns_request_logic(4, 4).values())
        assert large < 4 * small  # linear-ish, not combinatorial

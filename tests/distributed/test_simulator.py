"""Tests for the distributed token-propagation scheduler.

The central claims verified here:

- the distributed architecture computes exactly the software optimum
  (it realises Dinic's algorithm, Theorems 2 and 4);
- the Fig. 10 state machine is traversed in the documented order;
- flow cancellation (reallocation) works through token propagation
  (the paper's Fig. 4 / Fig. 8 behaviour);
- markings, bonding, and registration leave the physical network
  untouched until the mapping is applied.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MRSIN, OptimalScheduler, Request
from repro.distributed import DistributedScheduler, GlobalState
from repro.networks import baseline, benes, crossbar, cube, omega


def harsh_state(seed: int, n: int = 8, builder=omega):
    """Random *individual* link occupancy — the harshest partial state
    (a link can be held by traffic the scheduler does not control)."""
    rng = np.random.default_rng(seed)
    net = builder(n)
    m = MRSIN(net)
    for link in net.links:
        if rng.random() < 0.25:
            link.occupied = True
    for r in range(n):
        if rng.random() < 0.3:
            m.resources[r].busy = True
    for p in range(n):
        if rng.random() < 0.8 and not net.processor_link(p).occupied:
            m.submit(Request(p))
    return m


def random_state(seed: int, n: int = 8, builder=omega):
    """A random partially-occupied MRSIN with random requests."""
    rng = np.random.default_rng(seed)
    net = builder(n)
    m = MRSIN(net)
    for _ in range(int(rng.integers(0, n // 2 + 1))):
        p, r = int(rng.integers(0, n)), int(rng.integers(0, n))
        path = net.find_free_path(p, r)
        if path:
            net.establish_circuit(path)
            m.resources[r].busy = True
    for p in range(n):
        if rng.random() < 0.7 and not net.processor_link(p).occupied:
            m.submit(Request(p))
    return m


class TestEquivalenceWithSoftwareDinic:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_optimal_on_omega(self, seed):
        m = random_state(seed)
        optimal = len(OptimalScheduler().schedule(m))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == optimal
        outcome.mapping.validate(m)

    @pytest.mark.parametrize("builder", [omega, cube, baseline, benes, crossbar])
    def test_matches_optimal_across_topologies(self, builder):
        for seed in range(8):
            m = random_state(1000 + seed, builder=builder)
            optimal = len(OptimalScheduler().schedule(m))
            outcome = DistributedScheduler().schedule(m)
            assert len(outcome.mapping) == optimal

    def test_full_allocation_on_free_omega(self):
        m = MRSIN(omega(8))
        for p in range(8):
            m.submit(Request(p))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == 8
        m.apply_mapping(outcome.mapping)
        assert m.utilization() == 1.0


class TestReallocationThroughCancellation:
    def test_fig4_style_reallocation(self):
        """Pre-register a conflicting partial allocation by running one
        cycle, then verify a later cycle reallocates.  Equivalent
        behaviour: a single cycle starting from a state where greedy
        would block must still reach the optimum (the augmenting path
        cancels tentative flow *within* the cycle's iterations)."""
        # On omega(8), requests that force at least two Dinic
        # iterations: craft by occupying circuits.
        found_multi_iteration = False
        for seed in range(60):
            m = random_state(seed)
            outcome = DistributedScheduler().schedule(m)
            if outcome.iterations >= 2 and len(outcome.mapping) >= 2:
                found_multi_iteration = True
                optimal = len(OptimalScheduler().schedule(m))
                assert len(outcome.mapping) == optimal
        assert found_multi_iteration, "no multi-iteration instance found"

    def test_cancellation_trace_visible(self):
        """Harsh link-occupancy states force genuine flow cancellation
        (registered links traversed backward), and the result still
        matches the software optimum."""
        sched = DistributedScheduler(record=True)
        opt = OptimalScheduler()
        saw_cancel = 0
        for seed in range(120):
            m = harsh_state(seed)
            outcome = sched.schedule(m)
            assert len(outcome.mapping) == len(opt.schedule(m))
            if any("cancels" in t.detail for t in outcome.token_trace):
                saw_cancel += 1
        assert saw_cancel >= 3

    def test_same_pairing_expelled_regression(self):
        """Regression: an augmenting path that cancels both the in-
        and out-link of one old path segment through a box must delete
        that box's pairing outright (seed 31 of the harsh sweep used
        to KeyError here)."""
        m = harsh_state(31)
        outcome = DistributedScheduler().schedule(m)
        outcome.mapping.validate(m)
        assert len(outcome.mapping) == len(OptimalScheduler().schedule(m))


class TestStateMachine:
    def test_trace_follows_fig10(self):
        m = MRSIN(omega(8))
        for p in range(4):
            m.submit(Request(p))
        outcome = DistributedScheduler().schedule(m)
        trace = outcome.state_trace
        assert trace[0] is GlobalState.IDLE
        assert trace[-1] is GlobalState.ALLOCATION
        # Every iteration follows REQUEST -> STOP -> RESOURCE -> REGISTRATION.
        for i, state in enumerate(trace):
            if state is GlobalState.TOKEN_STOP:
                assert trace[i - 1] is GlobalState.REQUEST_PROPAGATION
                assert trace[i + 1] is GlobalState.RESOURCE_PROPAGATION
            if state is GlobalState.PATH_REGISTRATION:
                assert trace[i - 1] is GlobalState.RESOURCE_PROPAGATION

    def test_no_requests_goes_to_waiting_like_idle(self):
        m = MRSIN(omega(8))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == 0
        assert GlobalState.REQUEST_PROPAGATION not in outcome.state_trace[:1]

    def test_no_free_resources_finds_nothing(self):
        m = MRSIN(omega(8))
        for r in range(8):
            m.resources[r].busy = True
        m.submit(Request(0))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == 0

    def test_iterations_counted(self):
        m = MRSIN(omega(8))
        m.submit(Request(0))
        outcome = DistributedScheduler().schedule(m)
        assert outcome.iterations >= 1
        assert outcome.clocks > 0


class TestHygiene:
    def test_network_left_pristine(self):
        m = random_state(3)
        occupancy_before = m.network.occupancy()
        settings_before = [box.connections for box in m.network.boxes()]
        DistributedScheduler().schedule(m)
        assert m.network.occupancy() == occupancy_before
        assert [box.connections for box in m.network.boxes()] == settings_before

    def test_heterogeneous_rejected(self):
        m = MRSIN(crossbar(2, 2), resource_types=["a", "b"])
        m.submit(Request(0, resource_type="a"))
        with pytest.raises(ValueError, match="homogeneous"):
            DistributedScheduler().schedule(m)

    def test_busy_resources_never_bonded(self):
        m = MRSIN(omega(8))
        for r in range(4):
            m.resources[r].busy = True
        for p in range(8):
            m.submit(Request(p))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == 4
        for a in outcome.mapping:
            assert a.resource.index >= 4

    def test_clock_cost_scales_with_iterations(self):
        """Clocks >= iterations * (network depth) roughly: each
        iteration needs at least one full traversal."""
        m = MRSIN(omega(8))
        for p in range(8):
            m.submit(Request(p))
        outcome = DistributedScheduler().schedule(m)
        depth = m.network.n_stages + 1
        assert outcome.clocks >= outcome.iterations * depth


@given(seed=st.integers(0, 100_000), n_log=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_property_distributed_equals_software_optimum(seed, n_log):
    """Property: for any random Omega state, the token architecture
    allocates exactly the software max-flow optimum, and its mapping
    is realisable."""
    m = random_state(seed, n=1 << n_log)
    optimal = len(OptimalScheduler().schedule(m))
    outcome = DistributedScheduler().schedule(m)
    assert len(outcome.mapping) == optimal
    outcome.mapping.validate(m)
    m.apply_mapping(outcome.mapping)


class TestNonSquareBoxTopologies:
    """Clos and gamma have rectangular switchboxes (n x m, 1x3, 3x1);
    the token architecture must be exact there too."""

    @pytest.mark.parametrize("seed", range(8))
    def test_clos_equivalence(self, seed):
        from repro.networks import clos

        m = random_state(3000 + seed, builder=lambda n: clos(3, 2, 4))
        optimal = len(OptimalScheduler().schedule(m))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == optimal
        outcome.mapping.validate(m)

    @pytest.mark.parametrize("seed", range(8))
    def test_gamma_harsh_equivalence(self, seed):
        from repro.networks import gamma

        m = harsh_state(4000 + seed, builder=gamma)
        optimal = len(OptimalScheduler().schedule(m))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == optimal

    def test_large_network_stress(self):
        m = random_state(5000, n=32)
        optimal = len(OptimalScheduler().schedule(m))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == optimal
        # Clocks stay modest: parallel search is logarithmic-ish.
        assert outcome.clocks < 40 * outcome.iterations + 40


class TestDeterminism:
    def test_repeat_scheduling_identical(self):
        """The protocol is deterministic: the same state yields the
        same mapping, clock count, and trace every run."""
        a = DistributedScheduler(record=True).schedule(harsh_state(42))
        b = DistributedScheduler(record=True).schedule(harsh_state(42))
        assert a.mapping.pairs == b.mapping.pairs
        assert a.clocks == b.clocks
        assert a.iterations == b.iterations
        assert [t.detail for t in a.token_trace] == [t.detail for t in b.token_trace]

    def test_explicit_request_list_respected(self):
        m = MRSIN(omega(8))
        for p in range(8):
            m.submit(Request(p))
        subset = m.schedulable_requests()[:3]
        outcome = DistributedScheduler().schedule(m, subset)
        assert len(outcome.mapping) == 3
        assert {a.request.processor for a in outcome.mapping} == {
            r.processor for r in subset
        }

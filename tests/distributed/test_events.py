"""Tests for the Table I events and the wired-OR status bus."""

from repro.distributed.events import Event, StatusBus


class TestBitAssignments:
    def test_seven_events(self):
        assert len(Event) == StatusBus.N_BITS == 7

    def test_table1_positions(self):
        assert Event.REQUEST_PENDING == 6       # E1 = MSB
        assert Event.RESOURCE_READY == 5
        assert Event.REQUEST_TOKENS == 4
        assert Event.RESOURCE_TOKENS == 3
        assert Event.PATH_REGISTRATION == 2
        assert Event.RESOURCE_GOT_TOKEN == 1
        assert Event.RQ_BONDED == 0             # E7 = LSB


class TestWiredOr:
    def test_single_driver(self):
        bus = StatusBus()
        bus.set("a", Event.REQUEST_PENDING)
        assert bus.read(Event.REQUEST_PENDING)
        bus.clear("a", Event.REQUEST_PENDING)
        assert not bus.read(Event.REQUEST_PENDING)

    def test_or_of_multiple_drivers(self):
        """The bit stays high until *every* driver releases it."""
        bus = StatusBus()
        bus.set("a", Event.REQUEST_TOKENS)
        bus.set("b", Event.REQUEST_TOKENS)
        bus.clear("a", Event.REQUEST_TOKENS)
        assert bus.read(Event.REQUEST_TOKENS)
        bus.clear("b", Event.REQUEST_TOKENS)
        assert not bus.read(Event.REQUEST_TOKENS)

    def test_clear_is_idempotent(self):
        bus = StatusBus()
        bus.clear("ghost", Event.RQ_BONDED)  # must not raise
        assert not bus.read(Event.RQ_BONDED)

    def test_clear_all(self):
        bus = StatusBus()
        bus.set("a", Event.REQUEST_PENDING)
        bus.set("a", Event.RESOURCE_READY)
        bus.set("b", Event.RESOURCE_READY)
        bus.clear_all("a")
        assert not bus.read(Event.REQUEST_PENDING)
        assert bus.read(Event.RESOURCE_READY)

    def test_drivers_view(self):
        bus = StatusBus()
        bus.set("a", Event.RESOURCE_READY)
        assert bus.drivers(Event.RESOURCE_READY) == frozenset({"a"})


class TestVector:
    def test_paper_state_vector_order(self):
        """The paper writes vectors E1..E7 MSB-first: request-token
        propagation is 111000x."""
        bus = StatusBus()
        bus.set("rq", Event.REQUEST_PENDING)
        bus.set("rs", Event.RESOURCE_READY)
        bus.set("ns", Event.REQUEST_TOKENS)
        assert bus.as_string() == "1110000"

    def test_resource_phase_vector(self):
        bus = StatusBus()
        for e in (Event.REQUEST_PENDING, Event.RESOURCE_READY, Event.RESOURCE_TOKENS):
            bus.set("x", e)
        assert bus.as_string() == "1101000"

    def test_registration_vector(self):
        bus = StatusBus()
        for e in (
            Event.REQUEST_PENDING,
            Event.RESOURCE_READY,
            Event.RESOURCE_TOKENS,
            Event.PATH_REGISTRATION,
        ):
            bus.set("x", e)
        assert bus.as_string() == "1101100"

    def test_reset(self):
        bus = StatusBus()
        bus.set("x", Event.REQUEST_PENDING)
        bus.reset()
        assert bus.as_string() == "0000000"

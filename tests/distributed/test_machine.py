"""Tests for the Fig. 10 state machine as a standalone component."""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.events import Event, StatusBus
from repro.distributed.machine import GlobalState, next_state


def bus_with(*events: Event) -> StatusBus:
    bus = StatusBus()
    for e in events:
        bus.set("x", e)
    return bus


class TestTransitions:
    def test_idle_without_both_sides(self):
        assert next_state(GlobalState.IDLE, StatusBus()) is GlobalState.IDLE
        assert next_state(GlobalState.IDLE, bus_with(Event.REQUEST_PENDING)) is GlobalState.WAITING
        assert next_state(GlobalState.IDLE, bus_with(Event.RESOURCE_READY)) is GlobalState.WAITING

    def test_idle_to_scheduling(self):
        bus = bus_with(Event.REQUEST_PENDING, Event.RESOURCE_READY)
        assert next_state(GlobalState.IDLE, bus) is GlobalState.REQUEST_PROPAGATION
        assert next_state(GlobalState.WAITING, bus) is GlobalState.REQUEST_PROPAGATION
        assert next_state(GlobalState.ALLOCATION, bus) is GlobalState.REQUEST_PROPAGATION

    def test_request_phase_progress(self):
        busy = bus_with(Event.REQUEST_PENDING, Event.RESOURCE_READY, Event.REQUEST_TOKENS)
        assert next_state(GlobalState.REQUEST_PROPAGATION, busy) is GlobalState.REQUEST_PROPAGATION
        hit = bus_with(Event.REQUEST_PENDING, Event.RESOURCE_READY,
                       Event.REQUEST_TOKENS, Event.RESOURCE_GOT_TOKEN)
        assert next_state(GlobalState.REQUEST_PROPAGATION, hit) is GlobalState.TOKEN_STOP

    def test_request_phase_dies_to_allocation(self):
        bus = bus_with(Event.REQUEST_PENDING, Event.RESOURCE_READY)
        assert next_state(GlobalState.REQUEST_PROPAGATION, bus) is GlobalState.ALLOCATION

    def test_token_stop_always_advances(self):
        assert next_state(GlobalState.TOKEN_STOP, StatusBus()) is GlobalState.RESOURCE_PROPAGATION

    def test_resource_phase(self):
        running = bus_with(Event.RESOURCE_TOKENS)
        assert next_state(GlobalState.RESOURCE_PROPAGATION, running) is GlobalState.RESOURCE_PROPAGATION
        registering = bus_with(Event.RESOURCE_TOKENS, Event.PATH_REGISTRATION)
        assert next_state(GlobalState.RESOURCE_PROPAGATION, registering) is GlobalState.PATH_REGISTRATION
        assert next_state(GlobalState.RESOURCE_PROPAGATION, StatusBus()) is GlobalState.PATH_REGISTRATION

    def test_registration_iterates_or_allocates(self):
        more = bus_with(Event.REQUEST_PENDING, Event.RESOURCE_READY)
        assert next_state(GlobalState.PATH_REGISTRATION, more) is GlobalState.REQUEST_PROPAGATION
        assert next_state(GlobalState.PATH_REGISTRATION, StatusBus()) is GlobalState.ALLOCATION


def test_totality_over_all_bus_vectors():
    """Every (state, bus vector) pair transitions to a valid state —
    the machine can never wedge on an unexpected event combination."""
    for state in GlobalState:
        for bits in product([False, True], repeat=len(Event)):
            bus = StatusBus()
            for event, on in zip(Event, bits):
                if on:
                    bus.set("x", event)
            nxt = next_state(state, bus)
            assert isinstance(nxt, GlobalState)


@given(
    steps=st.lists(
        st.sets(st.sampled_from(list(Event))), min_size=1, max_size=30
    )
)
@settings(max_examples=50, deadline=None)
def test_property_no_illegal_adjacent_states(steps):
    """Property: under any event sequence, TOKEN_STOP only follows
    REQUEST_PROPAGATION and PATH_REGISTRATION only follows
    RESOURCE_PROPAGATION (the Fig. 10 arrows)."""
    state = GlobalState.IDLE
    prev = state
    for events in steps:
        bus = StatusBus()
        for e in events:
            bus.set("x", e)
        prev, state = state, next_state(state, bus)
        if state is GlobalState.TOKEN_STOP:
            assert prev is GlobalState.REQUEST_PROPAGATION
        if state is GlobalState.PATH_REGISTRATION:
            assert prev in (GlobalState.RESOURCE_PROPAGATION, GlobalState.PATH_REGISTRATION)

"""Unit tests for the RQ/RS/NS element state machines."""

import pytest

from repro.distributed.elements import NodeServer, RequestServer, ResourceServer
from repro.core.requests import Request
from repro.networks.topology import Link, PortRef


def link(i: int) -> Link:
    return Link(i, PortRef.processor(0), PortRef.box_in(0, 0, 0))


def ns_2x2() -> NodeServer:
    return NodeServer(
        stage=0, index=0,
        in_links=[link(0), link(1)],
        out_links=[link(2), link(3)],
    )


class TestRequestServer:
    def test_wants_token(self):
        rq = RequestServer(processor=0, link=link(0), request=Request(0))
        assert rq.wants_token
        rq.bonded = True
        assert not rq.wants_token

    def test_idle_rq_never_emits(self):
        rq = RequestServer(processor=0, link=link(0))
        assert not rq.wants_token

    def test_occupied_link_blocks_emission(self):
        l = link(0)
        l.occupied = True
        rq = RequestServer(processor=0, link=l, request=Request(0))
        assert not rq.wants_token


class TestResourceServer:
    def test_can_accept(self):
        rs = ResourceServer(resource=0, link=link(0), ready=True)
        assert rs.can_accept
        rs.bonded = True
        assert not rs.can_accept

    def test_not_ready_rejects(self):
        rs = ResourceServer(resource=0, link=link(0), ready=False)
        assert not rs.can_accept


class TestNodeServerMarks:
    def test_reset_iteration_keeps_pairs(self):
        ns = ns_2x2()
        ns.pairs[0] = 1
        ns.fired = True
        ns.received.append(("in", 0))
        ns.sent.add(("out", 0))
        ns.consumed.add(("in", 0))
        ns.reset_iteration()
        assert ns.pairs == {0: 1}
        assert not ns.fired and not ns.received and not ns.sent and not ns.consumed

    def test_available_entry_order_and_consumption(self):
        ns = ns_2x2()
        ns.received.extend([("in", 0), ("in", 1)])
        assert ns.available_entry() == ("in", 0)
        ns.consumed.add(("in", 0))
        assert ns.available_entry() == ("in", 1)
        ns.consumed.add(("in", 1))
        assert ns.available_entry() is None

    def test_clear_entry(self):
        ns = ns_2x2()
        ns.received.append(("in", 0))
        ns.consumed.add(("in", 0))
        ns.clear_entry(("in", 0))
        assert ns.received == [] and ns.consumed == set()

    def test_link_at(self):
        ns = ns_2x2()
        assert ns.link_at(("in", 1)).index == 1
        assert ns.link_at(("out", 0)).index == 2
        ns.in_links[0] = None
        with pytest.raises(ValueError, match="unwired"):
            ns.link_at(("in", 0))


class TestApplyPass:
    """The four splice cases of a resource token crossing an NS."""

    def test_new_in_new_out(self):
        ns = ns_2x2()
        ns.apply_pass(("in", 0), ("out", 1))
        assert ns.pairs == {0: 1}

    def test_new_in_cancel_in(self):
        """Entry on a fresh in-link, exit cancelling the registered
        in-link: the old downstream is re-fed from the new in-port."""
        ns = ns_2x2()
        ns.pairs[1] = 0  # old path: in1 -> out0
        ns.apply_pass(("in", 0), ("in", 1))
        assert ns.pairs == {0: 0}

    def test_cancel_out_new_out(self):
        """Entry cancelling the registered out-link, exit on a fresh
        out-link: the old upstream is re-routed to the new out-port."""
        ns = ns_2x2()
        ns.pairs[0] = 0  # old path: in0 -> out0
        ns.apply_pass(("out", 0), ("out", 1))
        assert ns.pairs == {0: 1}

    def test_cancel_out_cancel_in_distinct_paths(self):
        """Two different old paths spliced into one."""
        ns = ns_2x2()
        ns.pairs[0] = 0  # path A: in0 -> out0
        ns.pairs[1] = 1  # path B: in1 -> out1
        # Cancel A's out-link and B's in-link: A's upstream joins B's
        # downstream.
        ns.apply_pass(("out", 0), ("in", 1))
        assert ns.pairs == {0: 1}

    def test_cancel_same_pairing_expels(self):
        """Regression: both cancellations on the same old pairing must
        delete it, not splice it back (KeyError before the fix)."""
        ns = ns_2x2()
        ns.pairs[0] = 1
        ns.apply_pass(("out", 1), ("in", 0))
        assert ns.pairs == {}

    def test_missing_pairing_raises(self):
        ns = ns_2x2()
        with pytest.raises(KeyError):
            ns.apply_pass(("out", 0), ("out", 1))

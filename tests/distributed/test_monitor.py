"""Tests for the monitor architecture and its cost model."""

import pytest

from repro.core import MRSIN, Request
from repro.distributed import DistributedScheduler, MonitorScheduler, INSTRUCTION_WEIGHTS
from repro.networks import omega


def loaded(n=8):
    m = MRSIN(omega(n))
    for p in range(n):
        m.submit(Request(p))
    return m


class TestMonitor:
    def test_same_optimum_as_distributed(self):
        m = loaded()
        mon = MonitorScheduler().schedule(m)
        dist = DistributedScheduler().schedule(m)
        assert len(mon.mapping) == len(dist.mapping) == 8

    def test_instruction_count_positive_and_itemised(self):
        m = loaded()
        out = MonitorScheduler().schedule(m)
        assert out.instructions > 0
        assert out.operations["arc_scan"] > 0
        assert out.operations["transform_arc"] == len(m.network.links)

    def test_instructions_grow_with_network_size(self):
        small = MonitorScheduler().schedule(loaded(8)).instructions
        large = MonitorScheduler().schedule(loaded(32)).instructions
        assert large > small

    def test_monitor_vs_distributed_cost_units(self):
        """The architectural speedup claim: the distributed clock count
        is far below the monitor instruction count on the same cycle
        (parallel search + gate delays vs instruction cycles)."""
        m = loaded(16)
        mon = MonitorScheduler().schedule(m)
        dist = DistributedScheduler().schedule(m)
        assert dist.clocks * 10 < mon.instructions

    def test_priority_discipline_supported(self):
        m = MRSIN(omega(8), preferences=[5] * 8)
        m.submit(Request(0, priority=3))
        out = MonitorScheduler().schedule(m)
        assert len(out.mapping) == 1

    def test_weights_cover_all_charged_categories(self):
        m = loaded()
        out = MonitorScheduler().schedule(m)
        for category in out.operations.counts:
            assert category in INSTRUCTION_WEIGHTS, f"unweighted op {category}"


class TestMonitorOptions:
    def test_alternate_maxflow_backend(self):
        m = loaded()
        out = MonitorScheduler(maxflow="edmonds_karp").schedule(m)
        assert len(out.mapping) == 8

    def test_mincost_backend_for_priorities(self):
        m = MRSIN(omega(8), preferences=[2, 9] * 4)
        m.submit(Request(0, priority=4))
        m.submit(Request(3, priority=7))
        out = MonitorScheduler(mincost="ssp").schedule(m)
        assert len(out.mapping) == 2
        assert out.instructions > 0

"""Exhaustive verification of Theorem 1 on small switchboxes.

Theorem 1: *"For any MRSIN, there exists a flow network for which a
legal integral flow is equivalent to a valid request-resource
mapping"* — built on the observation that a non-broadcast switch
setting corresponds exactly to a legal integral flow assignment at a
unit-capacity node.

These tests enumerate *every* partial setting of small crossbars and
*every* legal integral flow at the corresponding node and verify the
two sets correspond: each setting induces a legal flow, and each legal
flow is realised by at least one setting (``k!`` of them — the flow
does not record the pairing, which is why any path decomposition
yields valid switch settings).
"""

from itertools import combinations, permutations

import pytest

from repro.flows.graph import FlowNetwork
from repro.flows.validate import check_flow
from repro.networks.switchbox import Switchbox


def all_partial_settings(n_in: int, n_out: int):
    """Every injective partial map from inputs to outputs."""
    for k in range(min(n_in, n_out) + 1):
        for ins in combinations(range(n_in), k):
            for outs in permutations(range(n_out), k):
                yield dict(zip(ins, outs))


def node_flow_network(n_in: int, n_out: int) -> FlowNetwork:
    """One node ``u`` with unit in/out arcs, as in the Theorem 1 proof."""
    net = FlowNetwork()
    for i in range(n_in):
        net.add_arc(("in", i), "u", 1)
    for o in range(n_out):
        net.add_arc("u", ("out", o), 1)
    return net


def legal_integral_flows(n_in: int, n_out: int):
    """Every legal 0/1 flow at the node: equal-size in/out subsets."""
    for k in range(min(n_in, n_out) + 1):
        for ins in combinations(range(n_in), k):
            for outs in combinations(range(n_out), k):
                yield frozenset(ins), frozenset(outs)


SHAPES = [(2, 2), (2, 3), (3, 2), (3, 3)]


@pytest.mark.parametrize("n_in,n_out", SHAPES)
class TestTheorem1:
    def test_every_setting_is_a_legal_flow(self, n_in, n_out):
        """Direction 1: switch setting → legal integral flow."""
        for setting in all_partial_settings(n_in, n_out):
            net = node_flow_network(n_in, n_out)
            for i, o in setting.items():
                net.find_arcs(("in", i), "u")[0].flow = 1.0
                net.find_arcs("u", ("out", o))[0].flow = 1.0
            # Conservation at u holds by the matching property; the
            # terminals are the leaf nodes.
            for node in net.nodes:
                if node == "u":
                    assert net.net_outflow("u") == 0.0

    def test_every_legal_flow_has_a_realising_setting(self, n_in, n_out):
        """Direction 2: legal integral flow → >= 1 switch setting."""
        settings_by_flow: dict = {}
        for setting in all_partial_settings(n_in, n_out):
            key = (frozenset(setting.keys()), frozenset(setting.values()))
            settings_by_flow.setdefault(key, []).append(setting)
        for flow in legal_integral_flows(n_in, n_out):
            assert flow in settings_by_flow, f"flow {flow} has no setting"
            k = len(flow[0])
            # Exactly k! settings realise a given flow (the pairings).
            expected = 1
            for j in range(2, k + 1):
                expected *= j
            assert len(settings_by_flow[flow]) == expected

    def test_counts_match_closed_forms(self, n_in, n_out):
        """#flows = sum_k C(n,k)C(m,k); #settings adds the k! pairings."""
        from math import comb, factorial

        n_flows = sum(
            comb(n_in, k) * comb(n_out, k) for k in range(min(n_in, n_out) + 1)
        )
        n_settings = sum(
            comb(n_in, k) * comb(n_out, k) * factorial(k)
            for k in range(min(n_in, n_out) + 1)
        )
        assert len(list(legal_integral_flows(n_in, n_out))) == n_flows
        assert len(list(all_partial_settings(n_in, n_out))) == n_settings

    def test_settings_install_on_real_switchbox(self, n_in, n_out):
        """Every enumerated setting is accepted by the Switchbox API."""
        for setting in all_partial_settings(n_in, n_out):
            box = Switchbox(0, 0, n_in, n_out)
            for i, o in setting.items():
                box.connect(i, o)
            assert box.connections == setting


def test_theorem1_end_to_end_on_a_two_box_network():
    """A concrete two-switch MRSIN-like flow network: every integral
    max flow decomposes into paths whose per-box port usage is a legal
    setting (the Theorem 2 corollary the scheduler relies on)."""
    net = FlowNetwork()
    net.add_arc("s", ("p", 0), 1)
    net.add_arc("s", ("p", 1), 1)
    net.add_arc(("p", 0), "x0", 1)
    net.add_arc(("p", 1), "x0", 1)
    net.add_arc("x0", "x1", 1)
    net.add_arc("x0", "x1", 1)  # parallel links: 2x2 box to 2x2 box
    net.add_arc("x1", ("r", 0), 1)
    net.add_arc("x1", ("r", 1), 1)
    net.add_arc(("r", 0), "t", 1)
    net.add_arc(("r", 1), "t", 1)
    from repro.flows.dinic import dinic

    assert dinic(net, "s", "t").value == 2
    check_flow(net, "s", "t")
    paths = net.decompose_paths("s", "t")
    assert len(paths) == 2
    # Port-disjointness: no arc shared between the two paths.
    used = [arc.index for path in paths for arc in path]
    assert len(used) == len(set(used))

"""Unit tests for Request / Resource value objects."""

import pytest

from repro.core.requests import DEFAULT_TYPE, Request, Resource


class TestRequest:
    def test_defaults(self):
        req = Request(3)
        assert req.resource_type == DEFAULT_TYPE
        assert req.priority == 1

    def test_negative_processor_rejected(self):
        with pytest.raises(ValueError):
            Request(-1)

    def test_priority_floor(self):
        with pytest.raises(ValueError):
            Request(0, priority=0)

    def test_tag_excluded_from_equality(self):
        assert Request(1, tag="a") == Request(1, tag="b")

    def test_frozen(self):
        req = Request(1)
        with pytest.raises(AttributeError):
            req.processor = 2  # type: ignore[misc]


class TestResource:
    def test_defaults(self):
        res = Resource(0)
        assert res.available and not res.busy
        assert res.preference == 1

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Resource(-2)

    def test_preference_floor(self):
        with pytest.raises(ValueError):
            Resource(0, preference=0)

    def test_busy_means_unavailable(self):
        res = Resource(0)
        res.busy = True
        assert not res.available

"""Tests for the OptimalScheduler facade (Table II dispatch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MRSIN,
    Discipline,
    OptimalScheduler,
    Request,
    greedy_schedule,
)
from repro.networks import benes, crossbar, omega


class TestClassification:
    def test_homogeneous(self):
        m = MRSIN(crossbar(2, 2))
        m.submit(Request(0))
        assert OptimalScheduler().classify(m) is Discipline.HOMOGENEOUS

    def test_priority_via_request(self):
        m = MRSIN(crossbar(2, 2))
        m.submit(Request(0, priority=5))
        assert OptimalScheduler().classify(m) is Discipline.PRIORITY

    def test_priority_via_preference(self):
        m = MRSIN(crossbar(2, 2), preferences=[3, 1])
        m.submit(Request(0))
        assert OptimalScheduler().classify(m) is Discipline.PRIORITY

    def test_heterogeneous(self):
        m = MRSIN(crossbar(2, 2), resource_types=["a", "b"])
        m.submit(Request(0, resource_type="a"))
        assert OptimalScheduler().classify(m) is Discipline.HETEROGENEOUS

    def test_heterogeneous_priority(self):
        m = MRSIN(crossbar(2, 2), resource_types=["a", "b"])
        m.submit(Request(0, resource_type="a", priority=4))
        assert OptimalScheduler().classify(m) is Discipline.HETEROGENEOUS_PRIORITY

    def test_unknown_algorithms_rejected(self):
        with pytest.raises(ValueError):
            OptimalScheduler(maxflow="telepathy")
        with pytest.raises(ValueError):
            OptimalScheduler(mincost="magic")


class TestHomogeneousScheduling:
    @pytest.mark.parametrize("algo", ["dinic", "edmonds_karp", "ford_fulkerson", "push_relabel"])
    def test_all_algorithms_allocate_fully_on_free_network(self, algo):
        m = MRSIN(omega(8))
        for p in range(8):
            m.submit(Request(p))
        mapping = OptimalScheduler(maxflow=algo).schedule(m)
        assert len(mapping) == 8
        mapping.validate(m)

    def test_empty_queue_gives_empty_mapping(self):
        m = MRSIN(omega(8))
        sched = OptimalScheduler()
        assert len(sched.schedule(m)) == 0
        assert sched.stats.blocking_fraction == 0.0

    def test_stats_populated(self):
        m = MRSIN(omega(8))
        for p in (0, 1, 2):
            m.submit(Request(p))
        sched = OptimalScheduler()
        mapping = sched.schedule(m)
        assert sched.stats.discipline is Discipline.HOMOGENEOUS
        assert sched.stats.n_requests == 3
        assert sched.stats.n_allocated == len(mapping) == 3
        assert sched.stats.flow_value == 3

    def test_optimal_never_below_greedy(self):
        rng = np.random.default_rng(5)
        sched = OptimalScheduler()
        for trial in range(20):
            m = MRSIN(omega(8))
            for _ in range(int(rng.integers(0, 5))):
                p, r = int(rng.integers(0, 8)), int(rng.integers(0, 8))
                path = m.network.find_free_path(p, r)
                if path:
                    m.network.establish_circuit(path)
                    m.resources[r].busy = True
            for p in range(8):
                if rng.random() < 0.7 and not m.network.processor_link(p).occupied:
                    m.submit(Request(p))
            optimal = len(sched.schedule(m))
            greedy = len(greedy_schedule(m, order="random", rng=int(rng.integers(1 << 31))))
            assert optimal >= greedy


class TestPriorityScheduling:
    @pytest.mark.parametrize("algo", ["out_of_kilter", "ssp", "cycle_cancel", "network_simplex"])
    def test_higher_priority_wins_contention(self, algo):
        """Two requests, one free resource: urgency decides."""
        m = MRSIN(crossbar(2, 2))
        m.resources[1].busy = True
        m.submit(Request(0, priority=2))
        m.submit(Request(1, priority=9))
        mapping = OptimalScheduler(mincost=algo).schedule(m)
        assert mapping.pairs == {(1, 0)}

    @pytest.mark.parametrize("algo", ["out_of_kilter", "ssp", "cycle_cancel", "network_simplex"])
    def test_preferred_resource_chosen(self, algo):
        m = MRSIN(crossbar(2, 2), preferences=[2, 9])
        m.submit(Request(0))
        mapping = OptimalScheduler(mincost=algo).schedule(m)
        assert mapping.pairs == {(0, 1)}

    def test_allocation_count_not_sacrificed(self):
        """Theorem 3: cost optimality implies maximum allocation; a
        high-priority request never starves the pool."""
        m = MRSIN(crossbar(2, 2))
        m.submit(Request(0, priority=10))
        m.submit(Request(1, priority=1))
        mapping = OptimalScheduler().schedule(m)
        assert len(mapping) == 2

    def test_priority_blocked_low_priority_served(self):
        """The paper: requests need not be served in priority order —
        a blocked high-priority request must not prevent a lower one
        from using a reachable resource."""
        net = omega(8)
        m = MRSIN(net)
        # Occupy processor 0's link so its request cannot be served.
        net.establish_circuit(net.find_free_path(0, 0))
        m.resources[0].busy = True
        m.submit(Request(2, priority=1))
        reqs = [Request(2, priority=1)]
        mapping = OptimalScheduler().schedule(m, reqs, discipline=Discipline.PRIORITY)
        assert len(mapping) == 1

    def test_mincost_algorithms_agree(self):
        rng = np.random.default_rng(17)
        for trial in range(8):
            net = omega(8)
            prefs = [int(rng.integers(1, 11)) for _ in range(8)]
            m = MRSIN(net, preferences=prefs)
            reqs = []
            for p in range(8):
                if rng.random() < 0.6:
                    reqs.append(Request(p, priority=int(rng.integers(1, 11))))
            for req in reqs:
                m.submit(req)
            costs = set()
            sizes = set()
            for algo in ("out_of_kilter", "ssp", "cycle_cancel", "network_simplex"):
                m2 = MRSIN(omega(8), preferences=prefs)
                for req in reqs:
                    m2.submit(req)
                sched = OptimalScheduler(mincost=algo)
                mapping = sched.schedule(m2)
                costs.add(round(sched.stats.flow_cost, 6))
                sizes.add(len(mapping))
            assert len(costs) == 1, f"trial {trial}: costs diverge {costs}"
            assert len(sizes) == 1


class TestHeterogeneousScheduling:
    def test_types_respected(self):
        m = MRSIN(crossbar(4, 4), resource_types=["fft", "fft", "conv", "conv"])
        m.submit(Request(0, resource_type="fft"))
        m.submit(Request(1, resource_type="conv"))
        mapping = OptimalScheduler().schedule(m)
        assert len(mapping) == 2
        for a in mapping:
            assert a.resource.resource_type == a.request.resource_type
        mapping.validate(m)
        m.apply_mapping(mapping)

    def test_contention_within_type(self):
        m = MRSIN(crossbar(3, 3), resource_types=["a", "a", "b"])
        for p in range(3):
            m.submit(Request(p, resource_type="a"))
        mapping = OptimalScheduler().schedule(m)
        assert len(mapping) == 2  # only two "a" resources exist

    def test_heterogeneous_on_omega(self):
        types = ["a", "b"] * 4
        m = MRSIN(omega(8), resource_types=types)
        for p in range(6):
            m.submit(Request(p, resource_type="a" if p % 2 else "b"))
        mapping = OptimalScheduler().schedule(m)
        mapping.validate(m)
        assert len(mapping) >= 4  # plenty of capacity for 3+3 typed requests
        m.apply_mapping(mapping)

    def test_heterogeneous_priority(self):
        m = MRSIN(crossbar(3, 3), resource_types=["a", "a", "b"], preferences=[9, 1, 1])
        m.submit(Request(0, resource_type="a", priority=5))
        m.submit(Request(2, resource_type="b", priority=2))
        mapping = OptimalScheduler().schedule(m)
        assert len(mapping) == 2
        # The "a" request lands on the preferred resource 0.
        assert (0, 0) in mapping.pairs

    def test_heterogeneous_priority_contention(self):
        m = MRSIN(crossbar(3, 3), resource_types=["a", "a", "a"])
        m.resources[1].busy = True
        m.resources[2].busy = True
        m.submit(Request(0, resource_type="a", priority=1))
        m.submit(Request(1, resource_type="a", priority=8))
        # Force the heterogeneous machinery even for one type.
        mapping = OptimalScheduler().schedule(
            m, discipline=Discipline.HETEROGENEOUS_PRIORITY
        )
        assert mapping.pairs == {(1, 0)}


@given(
    seed=st.integers(0, 100_000),
    network=st.sampled_from(["omega", "benes", "crossbar"]),
)
@settings(max_examples=25, deadline=None)
def test_property_optimal_dominates_greedy_everywhere(seed, network):
    """Property: on any topology/state, optimal >= greedy allocation."""
    rng = np.random.default_rng(seed)
    net = {"omega": lambda: omega(8), "benes": lambda: benes(8), "crossbar": lambda: crossbar(8, 8)}[network]()
    m = MRSIN(net)
    for _ in range(int(rng.integers(0, 6))):
        p, r = int(rng.integers(0, 8)), int(rng.integers(0, 8))
        path = net.find_free_path(p, r)
        if path:
            net.establish_circuit(path)
            m.resources[r].busy = True
    for p in range(8):
        if rng.random() < 0.7 and not net.processor_link(p).occupied:
            m.submit(Request(p))
    optimal = len(OptimalScheduler().schedule(m))
    greedy = len(greedy_schedule(m, order="random", rng=seed))
    assert optimal >= greedy


class TestRobustness:
    def test_schedule_is_stateless_wrt_network(self):
        """Scheduling twice from the same state yields the same value
        and leaves no residue on the network."""
        m = MRSIN(omega(8))
        for p in range(8):
            m.submit(Request(p))
        sched = OptimalScheduler()
        a = sched.schedule(m)
        b = sched.schedule(m)
        assert len(a) == len(b) == 8
        assert m.network.occupancy() == 0.0

    def test_explicit_requests_override_queue(self):
        m = MRSIN(omega(8))
        m.submit(Request(0))
        explicit = [Request(5), Request(6)]
        mapping = OptimalScheduler().schedule(m, explicit)
        assert {a.request.processor for a in mapping} == {5, 6}
        # The queue is untouched by scheduling (only apply consumes it).
        assert len(m.pending) == 1

    def test_stats_blocking_fraction(self):
        m = MRSIN(omega(8))
        for r in range(6, 8):
            m.resources[r].busy = False
        for r in range(6):
            m.resources[r].busy = True
        for p in range(4):
            m.submit(Request(p))
        sched = OptimalScheduler()
        mapping = sched.schedule(m)
        assert len(mapping) == 2  # only two free resources
        assert sched.stats.blocking_fraction == pytest.approx(0.5)


class TestValidationSurvivesOptimization:
    """Regression: these guards were bare ``assert`` statements, which
    ``python -O`` strips — a buggy solver could then hand physically
    unrealisable circuits to ``apply_mapping``.  They are real raises
    now, and this class runs in the CI ``-O`` tier to prove it."""

    def test_nonintegral_max_flow_raises(self, monkeypatch):
        import types

        from repro.core import scheduler as scheduler_module
        from repro.flows.validate import FlowViolation

        def half_unit_solver(net, source, sink, counter=None):
            net.arcs[0].flow = 0.5
            return types.SimpleNamespace(value=0.5)

        monkeypatch.setitem(
            scheduler_module.MAXFLOW_ALGORITHMS, "dinic", half_unit_solver
        )
        m = MRSIN(omega(4))
        m.submit(Request(0))
        with pytest.raises(FlowViolation, match="integral"):
            OptimalScheduler().schedule(m)

    def test_nonintegral_min_cost_flow_raises(self, monkeypatch):
        from repro.core import scheduler as scheduler_module
        from repro.flows.validate import FlowViolation

        real = scheduler_module.out_of_kilter

        def corrupting_solver(net, source, sink, **kwargs):
            result = real(net, source, sink, **kwargs)
            net.arcs[0].flow += 0.5
            return result

        monkeypatch.setattr(scheduler_module, "out_of_kilter", corrupting_solver)
        m = MRSIN(omega(4))
        m.submit(Request(0, priority=3))
        with pytest.raises(FlowViolation, match="integral"):
            OptimalScheduler().schedule(m)

    def test_missing_required_flow_raises(self, monkeypatch):
        from repro.core import scheduler as scheduler_module

        real = scheduler_module.transformation2

        def drop_f0(mrsin, reqs):
            problem = real(mrsin, reqs)
            problem.required_flow = None
            return problem

        monkeypatch.setattr(scheduler_module, "transformation2", drop_f0)
        m = MRSIN(omega(4))
        m.submit(Request(0, priority=3))
        with pytest.raises(ValueError, match="required flow"):
            OptimalScheduler().schedule(m)

"""Tests for the MRSIN model: request queue and allocation lifecycle."""

import pytest

from repro.core import MRSIN, OptimalScheduler, Request
from repro.networks import crossbar, omega


def small() -> MRSIN:
    return MRSIN(crossbar(4, 4))


class TestConstruction:
    def test_defaults_homogeneous(self):
        m = small()
        assert not m.is_heterogeneous
        assert not m.has_priorities
        assert m.n_processors == 4 and m.n_resources == 4

    def test_typed_pool(self):
        m = MRSIN(crossbar(2, 3), resource_types=["fft", "fft", "conv"])
        assert m.is_heterogeneous
        assert m.resource_types == {"fft", "conv"}
        assert [r.index for r in m.free_resources("fft")] == [0, 1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="resource types"):
            MRSIN(crossbar(2, 3), resource_types=["a"])

    def test_preferences(self):
        m = MRSIN(crossbar(2, 2), preferences=[5, 1])
        assert m.has_priorities
        assert m.resources[0].preference == 5


class TestSubmission:
    def test_submit_and_pending(self):
        m = small()
        m.submit(Request(0))
        m.submit_many([Request(1), Request(2)])
        assert len(m.pending) == 3
        assert m.requesting_processors() == {0, 1, 2}

    def test_unknown_processor_rejected(self):
        m = small()
        with pytest.raises(ValueError, match="processor"):
            m.submit(Request(9))

    def test_unknown_type_rejected(self):
        m = small()
        with pytest.raises(ValueError, match="type"):
            m.submit(Request(0, resource_type="gpu"))

    def test_one_schedulable_per_processor(self):
        """Model item 5: a processor transmits one task at a time."""
        m = small()
        m.submit(Request(0, tag="first"))
        m.submit(Request(0, tag="second"))
        m.submit(Request(1))
        sched = m.schedulable_requests()
        assert len(sched) == 2
        assert sched[0].tag == "first"

    def test_transmitting_processor_excluded(self):
        m = small()
        m.submit(Request(0))
        mapping = OptimalScheduler().schedule(m)
        m.apply_mapping(mapping)
        m.submit(Request(0))
        assert m.schedulable_requests() == []


class TestAllocationLifecycle:
    def test_apply_mapping_updates_everything(self):
        m = small()
        m.submit(Request(0))
        m.submit(Request(1))
        mapping = OptimalScheduler().schedule(m)
        circuits = m.apply_mapping(mapping)
        assert len(circuits) == 2
        assert m.pending == []
        assert m.utilization() == pytest.approx(0.5)
        assert m.network.occupancy() > 0

    def test_transmission_release_keeps_resource_busy(self):
        """Model item 5: circuit released after transmission, resource
        busy until task completion."""
        m = small()
        m.submit(Request(0))
        mapping = OptimalScheduler().schedule(m)
        m.apply_mapping(mapping)
        r = mapping.assignments[0].resource.index
        m.complete_transmission(r)
        assert m.network.occupancy() == 0.0
        assert m.resources[r].busy

    def test_complete_service_frees_resource(self):
        m = small()
        m.submit(Request(0))
        m.apply_mapping(OptimalScheduler().schedule(m))
        r = next(res.index for res in m.resources if res.busy)
        m.complete_service(r)  # implicit transmission completion
        assert not m.resources[r].busy
        assert m.network.occupancy() == 0.0

    def test_double_completion_rejected(self):
        m = small()
        m.submit(Request(0))
        m.apply_mapping(OptimalScheduler().schedule(m))
        r = next(res.index for res in m.resources if res.busy)
        m.complete_service(r)
        with pytest.raises(ValueError):
            m.complete_service(r)
        with pytest.raises(ValueError):
            m.complete_transmission(r)

    def test_reset(self):
        m = small()
        m.submit(Request(0))
        m.apply_mapping(OptimalScheduler().schedule(m))
        m.reset()
        assert m.pending == [] and m.utilization() == 0.0
        assert m.network.occupancy() == 0.0


class TestSchedulingCyclesEndToEnd:
    def test_successive_cycles_drain_queue(self):
        """Requests beyond the per-cycle capacity are served next cycle."""
        m = MRSIN(omega(8))
        for p in range(8):
            m.submit(Request(p))
        sched = OptimalScheduler()
        total = 0
        for _ in range(4):
            mapping = sched.schedule(m)
            if not mapping.assignments:
                break
            m.apply_mapping(mapping)
            total += len(mapping)
            # Tasks finish before the next cycle.
            for res in list(m.resources):
                if res.busy:
                    m.complete_service(res.index)
        assert total == 8
        assert m.pending == []

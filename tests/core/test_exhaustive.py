"""Tests for the exhaustive-search oracle (Section III's straw man)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MRSIN,
    OptimalScheduler,
    Request,
    count_candidate_mappings,
    exhaustive_schedule,
)
from repro.core.exhaustive import mapping_objective_cost
from repro.networks import crossbar, gamma, omega


class TestSearchSpaceSize:
    def test_paper_formula(self):
        # C(x,y) y! for x >= y
        assert count_candidate_mappings(5, 3) == 10 * 6
        assert count_candidate_mappings(3, 5) == 10 * 6
        assert count_candidate_mappings(4, 4) == 24
        assert count_candidate_mappings(1, 1) == 1

    def test_growth_is_factorial(self):
        sizes = [count_candidate_mappings(k, k) for k in range(1, 7)]
        assert sizes == [1, 2, 6, 24, 120, 720]


class TestPathEnumeration:
    def test_unique_path_networks_enumerate_one(self):
        net = omega(8)
        paths = list(net.enumerate_free_paths(0, 5))
        assert len(paths) == 1
        assert paths[0] == net.find_free_path(0, 5)

    def test_multipath_enumeration_matches_count(self):
        net = gamma(8)
        for p, r in [(0, 1), (2, 5), (7, 0)]:
            assert len(list(net.enumerate_free_paths(p, r))) == net.count_paths(p, r)

    def test_occupancy_prunes_paths(self):
        net = gamma(8)
        before = len(list(net.enumerate_free_paths(0, 1)))
        net.establish_circuit(net.find_free_path(0, 1))
        assert list(net.enumerate_free_paths(0, 1)) == []
        net.release_all()
        assert len(list(net.enumerate_free_paths(0, 1))) == before


class TestOracleAgreement:
    def test_trivial_cases(self):
        m = MRSIN(crossbar(3, 3))
        assert len(exhaustive_schedule(m)) == 0
        m.submit(Request(0))
        mapping = exhaustive_schedule(m)
        assert len(mapping) == 1
        mapping.validate(m)

    def test_guard_rail(self):
        m = MRSIN(crossbar(6, 6))
        for p in range(6):
            m.submit(Request(p))
        with pytest.raises(RuntimeError, match="exceeded"):
            exhaustive_schedule(m, max_mappings=10)

    def test_typed_pools_respected(self):
        m = MRSIN(crossbar(3, 3), resource_types=["a", "b", "a"])
        m.submit(Request(0, resource_type="b"))
        m.submit(Request(1, resource_type="b"))
        mapping = exhaustive_schedule(m)
        assert len(mapping) == 1  # only one "b" resource exists
        assert mapping.assignments[0].resource.index == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_flow_scheduler_on_homogeneous(self, seed):
        rng = np.random.default_rng(2000 + seed)
        net = omega(8)
        m = MRSIN(net)
        for link in net.links:
            if rng.random() < 0.3:
                link.occupied = True
        for r in range(8):
            if rng.random() < 0.5:
                m.resources[r].busy = True
        for p in range(8):
            if rng.random() < 0.4 and not net.processor_link(p).occupied:
                m.submit(Request(p))
        optimal = OptimalScheduler().schedule(m)
        exhaustive = exhaustive_schedule(m)
        assert len(exhaustive) == len(optimal)


@given(seed=st.integers(0, 20_000))
@settings(max_examples=20, deadline=None)
def test_property_flow_cost_is_truly_optimal(seed):
    """Property (Theorems 2+3 together): the min-cost flow scheduler's
    objective equals the exhaustive optimum — count and cost."""
    rng = np.random.default_rng(seed)
    net = omega(8)
    m = MRSIN(net)
    for link in net.links:
        if rng.random() < 0.3:
            link.occupied = True
    for r in range(8):
        if rng.random() < 0.5:
            m.resources[r].busy = True
        else:
            m.resources[r].preference = int(rng.integers(1, 11))
    for p in range(8):
        if rng.random() < 0.35 and not net.processor_link(p).occupied:
            m.submit(Request(p, priority=int(rng.integers(1, 11))))
    reqs = m.schedulable_requests()
    sched = OptimalScheduler(mincost="ssp")
    optimal = sched.schedule(m)
    exhaustive = exhaustive_schedule(m)
    assert len(optimal) == len(exhaustive)
    cost_flow = mapping_objective_cost(m, reqs, optimal)
    cost_brute = mapping_objective_cost(m, reqs, exhaustive)
    assert cost_flow == pytest.approx(cost_brute)
    if reqs:
        assert sched.stats.flow_cost == pytest.approx(cost_flow)

"""Tests for the heuristic (address-mapped) comparator schedulers."""

import numpy as np
import pytest

from repro.core import (
    MRSIN,
    OptimalScheduler,
    Request,
    arbitrary_schedule,
    greedy_schedule,
    random_binding_schedule,
)
from repro.networks import crossbar, omega


def loaded_omega():
    m = MRSIN(omega(8))
    for p in range(8):
        m.submit(Request(p))
    return m


class TestGreedy:
    def test_network_left_pristine(self):
        m = loaded_omega()
        before = m.network.occupancy()
        greedy_schedule(m)
        assert m.network.occupancy() == before == 0.0
        assert len(m.pending) == 8  # scheduling does not consume requests

    def test_mapping_is_applicable(self):
        m = loaded_omega()
        mapping = greedy_schedule(m)
        mapping.validate(m)
        m.apply_mapping(mapping)

    def test_respects_types(self):
        m = MRSIN(crossbar(4, 4), resource_types=["a", "a", "b", "b"])
        m.submit(Request(0, resource_type="b"))
        mapping = greedy_schedule(m)
        assert len(mapping) == 1
        assert mapping.assignments[0].resource.resource_type == "b"

    def test_no_duplicate_resources(self):
        m = loaded_omega()
        mapping = greedy_schedule(m, order="random", rng=3)
        resources = [a.resource.index for a in mapping]
        assert len(set(resources)) == len(resources)

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            greedy_schedule(loaded_omega(), order="sideways")

    def test_deterministic_given_seed(self):
        m1, m2 = loaded_omega(), loaded_omega()
        a = greedy_schedule(m1, order="random", rng=11)
        b = greedy_schedule(m2, order="random", rng=11)
        assert a.pairs == b.pairs


class TestRandomBinding:
    def test_blocks_more_than_optimal_on_average(self):
        """The SIM-BLOCK premise at unit scale: over many random
        states, address mapping loses allocations that the optimal
        scheduler finds."""
        sched = OptimalScheduler()
        opt_total = heur_total = 0
        for seed in range(30):
            m1, m2 = loaded_omega(), loaded_omega()
            opt_total += len(sched.schedule(m1))
            heur_total += len(random_binding_schedule(m2, rng=seed))
        assert opt_total == 30 * 8  # optimal always allocates fully here
        assert heur_total < opt_total  # binding blindly must block sometimes

    def test_applicable_and_pristine(self):
        m = loaded_omega()
        mapping = random_binding_schedule(m, rng=1)
        assert m.network.occupancy() == 0.0
        m.apply_mapping(mapping)


class TestArbitrary:
    def test_identity_binding_when_free(self):
        m = MRSIN(crossbar(3, 3))
        for p in range(3):
            m.submit(Request(p))
        mapping = arbitrary_schedule(m)
        assert mapping.pairs == {(0, 0), (1, 1), (2, 2)}

    def test_blocks_without_alternatives(self):
        """On a unique-path Omega the fixed binding frequently blocks
        even though free resources remain — the paper's motivation for
        extra stages."""
        blocked_any = False
        for seed in range(10):
            rng = np.random.default_rng(seed)
            net = omega(8)
            m = MRSIN(net)
            for _ in range(2):
                p, r = int(rng.integers(0, 8)), int(rng.integers(0, 8))
                path = net.find_free_path(p, r)
                if path:
                    net.establish_circuit(path)
                    m.resources[r].busy = True
            for p in range(8):
                if not net.processor_link(p).occupied:
                    m.submit(Request(p))
            n_req = len(m.schedulable_requests())
            n_free = len(m.free_resources())
            if len(arbitrary_schedule(m)) < min(n_req, n_free):
                blocked_any = True
        assert blocked_any

"""Tests for the warm-start :class:`IncrementalFlowEngine`.

The load-bearing property is *differential*: a warm solve on the
persistent network must allocate exactly as many requests per cycle as
a cold Transformation-1 build-and-solve on the same MRSIN state.  The
stochastic lifecycle test below pins that down across many ticks of
allocation, transmission teardown, and release, without a single
rebuild on the happy path.
"""

import numpy as np
import pytest

from repro.core import (
    MRSIN,
    IncrementalFlowEngine,
    KernelFlowEngine,
    OptimalScheduler,
    Request,
)
from repro.networks import benes, omega

ENGINES = [IncrementalFlowEngine, KernelFlowEngine]


def cold_count(mrsin: MRSIN, reqs) -> int:
    """Allocations a from-scratch solve finds on the current state."""
    return len(OptimalScheduler().schedule(mrsin, reqs))


def run_lifecycle(mrsin: MRSIN, engine: IncrementalFlowEngine, rng, ticks: int) -> int:
    """Drive random request/teardown/release traffic; differential-check
    every tick.  Returns the total number of allocations."""
    holding: dict[int, int] = {}  # resource index -> processor of its circuit
    busy: set[int] = set()  # resources serving with the circuit torn down
    total = 0
    for _ in range(ticks):
        transmitting = set(holding.values())
        idle = [p for p in range(mrsin.n_processors) if p not in transmitting]
        n = int(rng.integers(0, len(idle) + 1))
        reqs = [Request(int(p)) for p in rng.choice(idle, size=n, replace=False)]

        expected = cold_count(mrsin, reqs)
        mapping = engine.schedule(reqs)
        assert len(mapping) == expected  # the differential property
        mrsin.apply_mapping(mapping)  # validates the circuits too
        engine.commit(mapping)
        total += len(mapping)
        for a in mapping.assignments:
            holding[a.resource.index] = a.request.processor

        # Tear down some transmissions (resource stays busy) ...
        for res in [r for r in list(holding) if rng.random() < 0.3]:
            mrsin.complete_transmission(res)
            engine.note_transmission_end(res)
            del holding[res]
            busy.add(res)
        # ... and complete some services (with or without a live circuit).
        for res in [r for r in list(busy) if rng.random() < 0.4]:
            mrsin.complete_service(res)
            engine.note_release(res)
            busy.discard(res)
        for res in [r for r in list(holding) if rng.random() < 0.15]:
            mrsin.complete_service(res)
            engine.note_release(res)
            del holding[res]
    return total


class TestDifferential:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    @pytest.mark.parametrize("builder,size", [(omega, 8), (benes, 8), (omega, 16)])
    def test_warm_matches_cold_every_tick(self, builder, size, engine_cls):
        mrsin = MRSIN(builder(size))
        engine = engine_cls(mrsin)
        rng = np.random.default_rng(7)
        total = run_lifecycle(mrsin, engine, rng, ticks=60)
        assert total > 0
        assert engine.builds == 1  # never fell back to cold on the happy path
        assert engine.warm_ticks == 60

    def test_full_batch_on_free_network(self):
        mrsin = MRSIN(omega(8))
        engine = IncrementalFlowEngine(mrsin)
        mapping = engine.schedule([Request(p) for p in range(8)])
        assert len(mapping) == 8
        mrsin.apply_mapping(mapping)
        engine.commit(mapping)
        assert engine.last_new_flow == 8

    def test_empty_batch(self):
        mrsin = MRSIN(omega(8))
        engine = IncrementalFlowEngine(mrsin)
        assert len(engine.schedule([])) == 0
        assert engine.last_new_flow == 0


class TestLifecycle:
    def test_release_makes_resource_reusable(self):
        mrsin = MRSIN(omega(8))
        engine = IncrementalFlowEngine(mrsin)
        mapping = engine.schedule([Request(p) for p in range(8)])
        mrsin.apply_mapping(mapping)
        engine.commit(mapping)
        # Saturated: nothing more to allocate even cold.
        assert cold_count(mrsin, []) == 0
        a = mapping.assignments[0]
        mrsin.complete_service(a.resource.index)
        engine.note_release(a.resource.index)
        follow_up = engine.schedule([Request(a.request.processor)])
        assert len(follow_up) == 1
        assert engine.builds == 1

    def test_transmission_end_frees_links_not_resource(self):
        mrsin = MRSIN(omega(4))
        engine = IncrementalFlowEngine(mrsin)
        mapping = engine.schedule([Request(p) for p in range(4)])
        mrsin.apply_mapping(mapping)
        engine.commit(mapping)
        for a in mapping.assignments:
            mrsin.complete_transmission(a.resource.index)
            engine.note_transmission_end(a.resource.index)
        # Links are free again but every resource is still serving:
        # warm and cold must both find zero.
        reqs = [Request(p) for p in range(4)]
        assert cold_count(mrsin, reqs) == 0
        assert len(engine.schedule(reqs)) == 0
        assert engine.builds == 1

    def test_transmitting_processor_rejected(self):
        mrsin = MRSIN(omega(4))
        engine = IncrementalFlowEngine(mrsin)
        mapping = engine.schedule([Request(0)])
        mrsin.apply_mapping(mapping)
        engine.commit(mapping)
        with pytest.raises(ValueError, match="transmitting circuit"):
            engine.schedule([Request(0)])

    def test_duplicate_processor_rejected(self):
        engine = IncrementalFlowEngine(MRSIN(omega(4)))
        with pytest.raises(ValueError, match="one request per processor"):
            engine.schedule([Request(1), Request(1)])

    def test_uncommitted_schedule_rolls_back(self):
        mrsin = MRSIN(omega(8))
        engine = IncrementalFlowEngine(mrsin)
        discarded = engine.schedule([Request(p) for p in range(8)])
        assert len(discarded) == 8  # never applied nor committed
        mapping = engine.schedule([Request(p) for p in range(8)])
        assert len(mapping) == 8  # the rolled-back flow freed every link
        mrsin.apply_mapping(mapping)
        engine.commit(mapping)


class TestFallback:
    def test_mutation_behind_engines_back_triggers_rebuild(self):
        mrsin = MRSIN(omega(8))
        engine = IncrementalFlowEngine(mrsin)
        mapping = engine.schedule([Request(p) for p in range(8)])
        mrsin.apply_mapping(mapping)
        engine.commit(mapping)
        assert engine.builds == 1
        # Release on the MRSIN without telling the engine.
        a = mapping.assignments[0]
        mrsin.complete_service(a.resource.index)
        reqs = [Request(a.request.processor)]
        expected = cold_count(mrsin, reqs)
        got = engine.schedule(reqs)
        assert len(got) == expected == 1  # still optimal, via the rebuild
        assert engine.builds == 2

    def test_rebuild_registers_in_flight_circuits(self):
        mrsin = MRSIN(omega(8))
        engine = IncrementalFlowEngine(mrsin)
        mapping = engine.schedule([Request(p) for p in range(4)])
        mrsin.apply_mapping(mapping)
        engine.commit(mapping)
        engine.invalidate()
        more = engine.schedule([Request(p) for p in range(4, 8)])
        assert engine.builds == 2
        mrsin.apply_mapping(more)
        engine.commit(more)
        # The rebuilt network re-registered the old circuits: releasing
        # them retracts in place, no further rebuild.
        for a in mapping.assignments:
            mrsin.complete_service(a.resource.index)
            engine.note_release(a.resource.index)
        again = engine.schedule([Request(a.request.processor) for a in mapping.assignments])
        assert len(again) == 4
        assert engine.builds == 2

    def test_external_mapping_committed_through_link_index(self):
        mrsin = MRSIN(omega(8))
        engine = IncrementalFlowEngine(mrsin)
        engine.schedule([])  # force the initial build
        # A cold solve the engine did not produce (e.g. a priority tick).
        external = OptimalScheduler().schedule(mrsin, [Request(p) for p in range(3)])
        mrsin.apply_mapping(external)
        engine.commit(external)
        assert engine.builds == 1  # reconciled without a rebuild
        reqs = [Request(p) for p in range(3, 8)]
        expected = cold_count(mrsin, reqs)
        assert len(engine.schedule(reqs)) == expected
        assert engine.builds == 1

"""Tests for Mapping/Assignment validation and cost accounting."""

import pytest

from repro.core import MRSIN, OptimalScheduler, Request
from repro.core.mapping import Assignment, Mapping
from repro.core.requests import Resource
from repro.networks import crossbar, omega


def make_assignment(m: MRSIN, p: int, r: int) -> Assignment:
    path = m.network.find_free_path(p, r)
    return Assignment(request=Request(p), resource=m.resources[r], path=tuple(path))


class TestAssignment:
    def test_endpoint_consistency_checked(self):
        m = MRSIN(crossbar(2, 2))
        path = tuple(m.network.find_free_path(0, 1))
        with pytest.raises(ValueError, match="starts at processor"):
            Assignment(request=Request(1), resource=m.resources[1], path=path)
        with pytest.raises(ValueError, match="ends at resource"):
            Assignment(request=Request(0), resource=m.resources[0], path=path)


class TestValidation:
    def test_duplicate_processor(self):
        m = MRSIN(crossbar(2, 2))
        mapping = Mapping([make_assignment(m, 0, 0), make_assignment(m, 0, 1)])
        with pytest.raises(ValueError, match="share a processor"):
            mapping.validate(m)

    def test_duplicate_resource(self):
        m = MRSIN(crossbar(2, 2))
        mapping = Mapping([make_assignment(m, 0, 0), make_assignment(m, 1, 0)])
        with pytest.raises(ValueError, match="share a resource"):
            mapping.validate(m)

    def test_busy_resource(self):
        m = MRSIN(crossbar(2, 2))
        mapping = Mapping([make_assignment(m, 0, 0)])
        m.resources[0].busy = True
        with pytest.raises(ValueError, match="busy"):
            mapping.validate(m)

    def test_type_mismatch(self):
        m = MRSIN(crossbar(2, 2), resource_types=["a", "b"])
        path = tuple(m.network.find_free_path(0, 0))
        mapping = Mapping([
            Assignment(
                request=Request(0, resource_type="b"),
                resource=Resource(0, resource_type="b"),
                path=path,
            )
        ])
        with pytest.raises(ValueError, match="type mismatch"):
            mapping.validate(m)

    def test_occupied_link(self):
        m = MRSIN(omega(8))
        mapping = Mapping([make_assignment(m, 0, 0)])
        m.network.establish_circuit(m.network.find_free_path(0, 0))
        with pytest.raises(ValueError, match="occupied"):
            mapping.validate(m)

    def test_shared_link(self):
        """Find two omega paths (distinct endpoints) sharing an
        internal link; the mapping must be rejected."""
        m = MRSIN(omega(8))
        found = None
        for p2 in range(1, 8):
            for r2 in range(1, 8):
                a1 = make_assignment(m, 0, 0)
                a2 = make_assignment(m, p2, r2)
                if {l.index for l in a1.path} & {l.index for l in a2.path}:
                    found = (a1, a2)
                    break
            if found:
                break
        assert found is not None, "omega(8) must have link-sharing paths"
        with pytest.raises(ValueError, match="share link"):
            Mapping(list(found)).validate(m)


class TestCost:
    def test_allocation_cost(self):
        m = MRSIN(crossbar(2, 2), preferences=[4, 1])
        mapping = Mapping([
            Assignment(Request(0, priority=7), m.resources[0],
                       tuple(m.network.find_free_path(0, 0))),
            Assignment(Request(1, priority=2), m.resources[1],
                       tuple(m.network.find_free_path(1, 1))),
        ])
        # (10-7)+(10-4) + (10-2)+(10-1) = 3+6+8+9 = 26
        assert mapping.allocation_cost(10, 10) == 26

    def test_scheduler_cost_matches_mapping_cost_plus_bypass(self):
        """The flow cost decomposes exactly:
        sum_served [(ymax-y_p) + (qmax-q_w)]
        + sum_bypassed [(ymax-y_p) + 2*penalty + y_p]."""
        from repro.core.transform import bypass_cost

        m = MRSIN(crossbar(2, 2))
        m.resources[1].busy = True
        m.submit(Request(0, priority=3))
        m.submit(Request(1, priority=8))
        sched = OptimalScheduler(mincost="ssp")
        mapping = sched.schedule(m)
        assert mapping.pairs == {(1, 0)}  # urgent request served
        served_cost = mapping.allocation_cost(m.max_priority, m.max_preference)
        bypassed = (m.max_priority - 3) + 2 * bypass_cost(m) + 3  # request p0
        assert sched.stats.flow_cost == pytest.approx(served_cost + bypassed)


class TestDunder:
    def test_len_iter_pairs(self):
        m = MRSIN(crossbar(2, 2))
        mapping = Mapping([make_assignment(m, 0, 1), make_assignment(m, 1, 0)])
        assert len(mapping) == 2
        assert {a.request.processor for a in mapping} == {0, 1}
        assert mapping.pairs == {(0, 1), (1, 0)}

"""Tests for Transformations 1 and 2 and the flow→mapping inverse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MRSIN, Request
from repro.core.transform import (
    bypass_cost,
    extract_mapping,
    heterogeneous_max_problem,
    transformation1,
    transformation2,
)
from repro.flows.dinic import dinic
from repro.flows.mincost import min_cost_flow
from repro.networks import crossbar, omega
from tests.helpers import nx_max_flow


def omega_mrsin(occupied_pairs=(), busy_resources=(), requesters=()):
    """8x8 Omega MRSIN with given circuits, busy resources, requests."""
    net = omega(8)
    m = MRSIN(net)
    for p, r in occupied_pairs:
        net.establish_circuit(net.find_free_path(p, r))
        m.resources[r].busy = True
    for r in busy_resources:
        m.resources[r].busy = True
    for p in requesters:
        m.submit(Request(p))
    return m


class TestTransformation1Structure:
    def test_node_sets(self):
        m = omega_mrsin(requesters=[0, 1])
        problem = transformation1(m)
        nodes = set(problem.net.nodes)
        assert "s" in nodes and "t" in nodes
        assert ("p", 0) in nodes and ("p", 1) in nodes
        assert ("x", 0, 0) in nodes
        assert ("r", 0) in nodes

    def test_all_arcs_unit_capacity(self):
        m = omega_mrsin(requesters=[0, 1, 2])
        problem = transformation1(m)
        assert all(arc.capacity == 1 for arc in problem.net.arcs)

    def test_occupied_links_excluded(self):
        """Step T3/T4: occupied links get no arc."""
        free = omega_mrsin(requesters=[0])
        n_free_arcs = transformation1(free).net.n_arcs
        occupied = omega_mrsin(occupied_pairs=[(1, 5)], requesters=[0])
        problem = transformation1(occupied)
        # The occupied circuit removes stages+1 = 4 link arcs, and the
        # busy resource r5 loses its sink arc.
        assert problem.net.n_arcs == n_free_arcs - 4 - 1
        assert not any(link.occupied for link in problem.arc_link.values())

    def test_busy_resources_get_no_sink_arc(self):
        m = omega_mrsin(busy_resources=[3], requesters=[0])
        problem = transformation1(m)
        assert not problem.net.find_arcs(("r", 3), "t")

    def test_non_requesting_processors_get_no_source_arc(self):
        m = omega_mrsin(requesters=[2])
        problem = transformation1(m)
        assert problem.net.find_arcs("s", ("p", 2))
        assert not problem.net.find_arcs("s", ("p", 0))

    def test_duplicate_processor_requests_rejected(self):
        m = omega_mrsin()
        with pytest.raises(ValueError, match="one request per processor"):
            transformation1(m, [Request(0), Request(0)])


class TestTheorem2:
    """Max flow value == max number of allocatable resources."""

    def test_fig2_all_five_allocated(self):
        """The paper's Fig. 2 situation (0-based): two circuits up,
        five requesters, five free resources — optimal allocates 5."""
        m = omega_mrsin(occupied_pairs=[(2, 1), (4, 6)], requesters=[0, 3, 5, 6, 7])
        problem = transformation1(m)
        value = dinic(problem.net, "s", "t").value
        assert value == 5
        mapping = extract_mapping(problem, m)
        assert len(mapping) == 5
        mapping.validate(m)

    def test_mapping_size_equals_flow_value(self):
        rng = np.random.default_rng(1)
        for _ in range(15):
            m = omega_mrsin()
            # Random occupancy.
            for _ in range(int(rng.integers(0, 4))):
                p, r = int(rng.integers(0, 8)), int(rng.integers(0, 8))
                path = m.network.find_free_path(p, r)
                if path:
                    m.network.establish_circuit(path)
                    m.resources[r].busy = True
            for p in range(8):
                if rng.random() < 0.6 and not m.network.processor_link(p).occupied:
                    m.submit(Request(p))
            problem = transformation1(m)
            value = dinic(problem.net, "s", "t").value
            mapping = extract_mapping(problem, m)
            assert len(mapping) == value
            mapping.validate(m)

    def test_flow_value_matches_oracle(self):
        m = omega_mrsin(occupied_pairs=[(0, 0)], requesters=[1, 2, 3])
        problem = transformation1(m)
        expected = nx_max_flow(problem.net, "s", "t")
        assert dinic(problem.net, "s", "t").value == expected

    def test_extracted_paths_are_establishable(self):
        m = omega_mrsin(requesters=list(range(8)))
        problem = transformation1(m)
        dinic(problem.net, "s", "t")
        mapping = extract_mapping(problem, m)
        m.apply_mapping(mapping)  # must not raise
        assert m.utilization() == 1.0


class TestTransformation2:
    def test_bypass_structure(self):
        m = omega_mrsin(requesters=[0, 1])
        problem = transformation2(m)
        assert problem.bypass == "u"
        assert problem.required_flow == 2
        assert problem.net.find_arcs(("p", 0), "u")
        (ut,) = problem.net.find_arcs("u", "t")
        assert ut.capacity == 2

    def test_cost_assignment(self):
        net = crossbar(2, 2)
        m = MRSIN(net, preferences=[4, 1], max_priority=10, max_preference=10)
        m.submit(Request(0, priority=7))
        problem = transformation2(m)
        (sp,) = problem.net.find_arcs("s", ("p", 0))
        assert sp.cost == 10 - 7
        (rt,) = problem.net.find_arcs(("r", 0), "t")
        assert rt.cost == 10 - 4
        penalty = bypass_cost(m)
        assert penalty == 11
        (pu,) = problem.net.find_arcs(("p", 0), "u")
        assert pu.cost == penalty + 7  # priority surcharge (see bypass_cost)
        (ut,) = problem.net.find_arcs("u", "t")
        assert ut.cost == penalty

    def test_out_of_scale_priority_rejected(self):
        m = MRSIN(crossbar(2, 2), max_priority=5)
        m.submit(Request(0, priority=7))
        with pytest.raises(ValueError, match="exceeds ymax"):
            transformation2(m)

    def test_out_of_scale_preference_rejected(self):
        m = MRSIN(crossbar(2, 2), preferences=[11, 1], max_preference=10)
        m.submit(Request(0))
        with pytest.raises(ValueError, match="exceeds qmax"):
            transformation2(m)

    def test_feasible_even_when_nothing_allocatable(self):
        """Theorem 3: a feasible flow always exists via the bypass."""
        m = omega_mrsin(busy_resources=range(8), requesters=[0, 1, 2])
        problem = transformation2(m)
        res = min_cost_flow(problem.net, "s", "t", target_flow=problem.required_flow)
        assert res.value == 3
        mapping = extract_mapping(problem, m)
        assert len(mapping) == 0  # everything bypassed

    def test_bypass_dearer_than_any_real_path(self):
        """2*penalty > worst real allocation cost, for any scales."""
        for ymax, qmax in [(10, 10), (1, 1), (3, 17)]:
            m = MRSIN(crossbar(2, 2), max_priority=ymax, max_preference=qmax)
            worst_real = (ymax - 1) + (qmax - 1)
            assert 2 * bypass_cost(m) > worst_real


class TestHeterogeneousProblem:
    def test_one_commodity_per_requested_type(self):
        net = crossbar(3, 3)
        m = MRSIN(net, resource_types=["a", "a", "b"])
        m.submit(Request(0, resource_type="a"))
        m.submit(Request(1, resource_type="b"))
        problem, meta = heterogeneous_max_problem(m)
        assert [c.name for c in problem.commodities] == ["a", "b"]
        assert problem.net.find_arcs(("s", "a"), ("p", 0))
        assert not problem.net.find_arcs(("s", "b"), ("p", 0))

    def test_typed_sink_arcs(self):
        net = crossbar(2, 3)
        m = MRSIN(net, resource_types=["a", "b", "a"])
        m.submit(Request(0, resource_type="a"))
        problem, _ = heterogeneous_max_problem(m)
        assert problem.net.find_arcs(("r", 0), ("t", "a"))
        assert problem.net.find_arcs(("r", 2), ("t", "a"))
        assert not problem.net.find_arcs(("r", 1), ("t", "a"))


@given(
    seed=st.integers(0, 100_000),
    n_requesters=st.integers(0, 8),
    n_busy=st.integers(0, 8),
)
@settings(max_examples=40, deadline=None)
def test_property_theorem2_on_random_states(seed, n_requesters, n_busy):
    """Property (Theorem 2): extracted mapping size == max-flow value ==
    oracle value, and the mapping is always realisable."""
    rng = np.random.default_rng(seed)
    m = omega_mrsin()
    for r in rng.choice(8, size=n_busy, replace=False):
        m.resources[int(r)].busy = True
    for p in rng.choice(8, size=n_requesters, replace=False):
        m.submit(Request(int(p)))
    problem = transformation1(m)
    value = dinic(problem.net, "s", "t").value
    assert value == nx_max_flow(problem.net, "s", "t")
    mapping = extract_mapping(problem, m)
    assert len(mapping) == value
    mapping.validate(m)
    m.apply_mapping(mapping)


class TestHeterogeneousMinCostExtraction:
    def test_end_to_end_extraction(self):
        """heterogeneous_min_cost_problem -> simplex -> mapping, with
        bypassed (unservable) requests skipped correctly."""
        from repro.core.transform import (
            extract_multicommodity_mapping,
            heterogeneous_min_cost_problem,
        )
        from repro.flows.multicommodity import solve_min_cost_multicommodity

        net = crossbar(3, 3)
        m = MRSIN(net, resource_types=["a", "a", "b"], preferences=[7, 2, 5])
        m.resources[1].busy = True  # only one "a" resource left
        m.submit(Request(0, resource_type="a", priority=3))
        m.submit(Request(1, resource_type="a", priority=8))
        m.submit(Request(2, resource_type="b", priority=1))
        problem, meta = heterogeneous_min_cost_problem(m)
        result = solve_min_cost_multicommodity(problem)
        assert result.integral
        mapping = extract_multicommodity_mapping(result, problem, meta, m)
        mapping.validate(m)
        # Two served (urgent "a" + the "b"); one "a" request bypassed.
        assert len(mapping) == 2
        served_a = [x for x in mapping if x.request.resource_type == "a"]
        assert served_a[0].request.priority == 8

    def test_fractional_result_rejected(self):
        from repro.core.transform import extract_multicommodity_mapping
        from repro.flows.lp import LPStatus
        from repro.flows.multicommodity import MultiCommodityResult

        m = MRSIN(crossbar(2, 2))
        fake = MultiCommodityResult(
            status=LPStatus.OPTIMAL, flow_values=[0.5], total_flow=0.5,
            cost=0.0, arc_flows={(0, 0): 0.5}, integral=False,
        )
        from repro.core.transform import heterogeneous_max_problem

        problem, meta = heterogeneous_max_problem(m, [Request(0)])
        with pytest.raises(ValueError, match="fractional"):
            extract_multicommodity_mapping(fake, problem, meta, m)

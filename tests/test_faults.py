"""Tests for the fault model: core exclusion semantics, revocation,
the seeded injector, and the chaos harness invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MRSIN, OptimalScheduler, Request
from repro.core.heuristic import greedy_schedule
from repro.core.incremental import IncrementalFlowEngine
from repro.faults import ChaosInvariantError, FaultEvent, FaultInjector, apply_event, run_chaos
from repro.networks import benes, omega


def fresh(n=8, n_requests=None):
    m = MRSIN(omega(n))
    for p in range(n if n_requests is None else n_requests):
        m.submit(Request(p))
    return m


# ----------------------------------------------------------------------
# Core exclusion: failed components never enter a schedule
# ----------------------------------------------------------------------
class TestCoreFaultModel:
    def test_failed_resource_not_allocated(self):
        m = fresh(8)
        m.fail_resource(0)
        m.fail_resource(1)
        mapping = OptimalScheduler().schedule(m)
        assert all(a.resource.index not in (0, 1) for a in mapping.assignments)
        assert len(mapping) == 6  # 8 requests, 6 surviving resources

    def test_failed_input_link_blocks_processor(self):
        m = fresh(8)
        link = m.network.processor_link(3)
        m.fail_link(link.index)
        assert all(r.processor != 3 for r in m.schedulable_requests())
        mapping = OptimalScheduler().schedule(m)
        assert all(a.request.processor != 3 for a in mapping.assignments)

    def test_failed_switchbox_excluded_everywhere(self):
        """Optimal and greedy schedules both avoid a dead switchbox."""
        m = fresh(8)
        m.fail_switchbox(0, 0)
        for mapping in (OptimalScheduler().schedule(m), greedy_schedule(m)):
            for a in mapping.assignments:
                for link in a.path:
                    for ref in (link.src, link.dst):
                        if ref.kind in ("box_in", "box_out"):
                            assert (ref.stage, ref.box) != (0, 0)

    def test_faulted_solve_equals_subgraph_solve(self):
        """Theorem 2 on the surviving subgraph: failing half the
        resources gives exactly the max flow of the degraded network."""
        m = fresh(8)
        for idx in range(0, 8, 2):
            m.fail_resource(idx)
        assert len(OptimalScheduler().schedule(m)) == 4

    def test_fail_and_repair_are_idempotent(self):
        m = fresh(4)
        assert m.fail_link(0) is True
        assert m.fail_link(0) is False
        assert m.repair_link(0) is True
        assert m.repair_link(0) is False
        assert m.fail_switchbox(0, 0) and not m.fail_switchbox(0, 0)
        assert m.repair_switchbox(0, 0) and not m.repair_switchbox(0, 0)
        assert m.fail_resource(2) and not m.fail_resource(2)
        assert m.repair_resource(2) and not m.repair_resource(2)
        assert m.failed_components() == {"links": [], "switchboxes": [], "resources": []}

    def test_repair_restores_full_capacity(self):
        m = fresh(8)
        m.fail_resource(0)
        m.repair_resource(0)
        assert len(OptimalScheduler().schedule(m)) == 8

    def test_reset_clears_faults(self):
        m = fresh(4)
        m.fail_link(0)
        m.fail_switchbox(0, 0)
        m.fail_resource(1)
        m.reset()
        assert m.failed_components() == {"links": [], "switchboxes": [], "resources": []}

    def test_establish_circuit_rejects_failed_path(self):
        m = fresh(8)
        mapping = OptimalScheduler().schedule(m)
        path = mapping.assignments[0].path
        m.fail_link(path[0].index)
        with pytest.raises(ValueError, match="failed"):
            m.network.establish_circuit(path)


# ----------------------------------------------------------------------
# Severed circuits and revocation
# ----------------------------------------------------------------------
class TestSeveranceAndRevoke:
    def _allocate_one(self):
        m = MRSIN(omega(8))
        m.submit(Request(0))
        mapping = OptimalScheduler().schedule(m)
        m.apply_mapping(mapping)
        a = mapping.assignments[0]
        return m, a.resource.index, a.path

    def test_link_fault_severs_held_circuit(self):
        m, res, path = self._allocate_one()
        assert m.severed_resources() == []
        m.fail_link(path[1].index)
        assert m.severed_resources() == [res]

    def test_resource_fault_severs_even_after_transmission(self):
        m, res, _ = self._allocate_one()
        m.complete_transmission(res)  # circuit gone, resource still busy
        m.fail_resource(res)
        assert m.severed_resources() == [res]

    def test_revoke_frees_links_and_resource(self):
        m, res, path = self._allocate_one()
        m.fail_link(path[0].index)
        circuit = m.revoke(res)
        assert circuit is not None
        assert not m.resources[res].busy
        assert all(not link.occupied for link in path)
        assert m.severed_resources() == []

    def test_revoke_idle_resource_raises(self):
        m = MRSIN(omega(4))
        with pytest.raises(ValueError, match="not busy"):
            m.revoke(0)

    def test_warm_engine_absorbs_fault_without_rebuild(self):
        """A fault/repair between ticks is a capacity delta the sync
        scan absorbs in place — no cold rebuild of the engine."""
        m = MRSIN(omega(8))
        engine = IncrementalFlowEngine(m)
        sched = OptimalScheduler()
        for p in range(4):
            m.submit(Request(p))
        mapping = sched.schedule_incremental(m, engine=engine)
        m.apply_mapping(mapping)
        engine.commit(mapping)
        builds_before = engine.builds
        m.fail_resource(6)
        m.fail_link(m.network.processor_link(7).index)
        for p in range(4, 8):
            m.submit(Request(p))
        degraded = sched.schedule_incremental(m, engine=engine)
        assert engine.builds == builds_before  # absorbed, not rebuilt
        assert all(a.resource.index != 6 for a in degraded.assignments)
        cold = len(OptimalScheduler().schedule(m, [r for r in m.schedulable_requests()]))
        assert len(degraded) == cold


# ----------------------------------------------------------------------
# The injector: seeded, replayable, transient repairs ride the timeline
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        m = MRSIN(omega(8))
        histories = []
        for _ in range(2):
            inj = FaultInjector(m, rng=42, fault_rate=0.5)
            history = []
            for t in range(1, 101):
                history.extend(inj.events_until(float(t)))
            histories.append(history)
        assert histories[0] == histories[1]
        assert len(histories[0]) > 0

    def test_events_arrive_in_time_order(self):
        inj = FaultInjector(MRSIN(omega(8)), rng=7, fault_rate=1.0)
        events = inj.events_until(50.0)
        assert events == sorted(events, key=lambda e: e.time)

    def test_transient_faults_schedule_repairs(self):
        inj = FaultInjector(
            MRSIN(omega(8)), rng=1, fault_rate=1.0,
            transient_fraction=1.0, mean_repair=1.0,
        )
        events = inj.events_until(200.0)
        faults = [e for e in events if not e.repair]
        repairs = [e for e in events if e.repair]
        assert all(e.transient for e in faults)
        # Every fault's repair eventually lands on the same target.
        assert {(e.kind, e.target) for e in repairs} <= {(e.kind, e.target) for e in faults}
        assert len(repairs) > 0

    def test_permanent_faults_never_heal(self):
        inj = FaultInjector(
            MRSIN(omega(8)), rng=1, fault_rate=1.0, transient_fraction=0.0,
        )
        events = inj.events_until(100.0)
        assert events and all(not e.repair and not e.transient for e in events)

    def test_apply_event_round_trip(self):
        m = MRSIN(omega(8))
        fail = FaultEvent(time=0.0, kind="link", target=3)
        heal = FaultEvent(time=1.0, kind="link", target=3, repair=True)
        assert apply_event(m, fail) is True
        assert m.network.links[3].failed
        assert apply_event(m, fail) is False  # idempotent
        assert apply_event(m, heal) is True
        assert not m.network.links[3].failed

    def test_apply_event_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            apply_event(MRSIN(omega(4)), FaultEvent(time=0.0, kind="bus", target=0))

    def test_injector_validates_parameters(self):
        m = MRSIN(omega(4))
        with pytest.raises(ValueError):
            FaultInjector(m, fault_rate=0.0)
        with pytest.raises(ValueError):
            FaultInjector(m, transient_fraction=1.5)
        with pytest.raises(ValueError):
            FaultInjector(m, mean_repair=-1.0)
        with pytest.raises(ValueError):
            FaultInjector(m, kinds=("link", "bus"))


# ----------------------------------------------------------------------
# Chaos: churn with hard invariants (CI runs the full 2000-tick job)
# ----------------------------------------------------------------------
class TestChaos:
    def test_chaos_invariants_hold_on_omega(self):
        report = run_chaos(topology="omega", ports=16, ticks=400, seed=5)
        assert report.allocated > 0
        assert report.released > 0
        assert report.faults_injected > 0
        assert report.differential_checks == 400

    def test_chaos_exercises_revocation(self):
        # Seed/rate chosen so faults actually sever live circuits.
        report = run_chaos(
            topology="omega", ports=16, ticks=400, seed=5, fault_rate=0.2,
        )
        assert report.revoked > 0

    @pytest.mark.parametrize("topology", ["benes", "clos"])
    def test_chaos_invariants_hold_on_rearrangeable_nets(self, topology):
        report = run_chaos(topology=topology, ports=8, ticks=150, seed=9)
        assert report.allocated > 0

    def test_chaos_is_deterministic(self):
        a = run_chaos(topology="omega", ports=8, ticks=120, seed=3)
        b = run_chaos(topology="omega", ports=8, ticks=120, seed=3)
        assert a == b

    def test_chaos_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="unknown chaos topology"):
            run_chaos(topology="crossbar", ticks=10)
        with pytest.raises(ValueError, match="ticks"):
            run_chaos(ticks=0)
        with pytest.raises(ValueError, match="check_every"):
            run_chaos(ticks=10, check_every=0)


# ----------------------------------------------------------------------
# Property: apply_mapping round-trips exactly (fault-free bookkeeping
# is what revocation accounting builds on)
# ----------------------------------------------------------------------
class TestApplyMappingRoundTrip:
    @given(seed=st.integers(0, 10**6), n_failed=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_apply_then_release_restores_state(self, seed, n_failed):
        """apply_mapping → complete_service(each) restores every link's
        occupancy and the free-resource pool bit for bit, including on
        a degraded network."""
        m = MRSIN(benes(8) if seed % 2 else omega(8))
        for idx in range(n_failed):
            m.fail_resource((seed + idx) % 8)
        m.fail_link(seed % len(m.network.links))
        for p in range(8):
            m.submit(Request(p))
        occupancy_before = [link.occupied for link in m.network.links]
        free_before = [res.index for res in m.free_resources()]
        mapping = OptimalScheduler().schedule(m)
        m.apply_mapping(mapping)
        for a in mapping.assignments:
            m.complete_service(a.resource.index)
        assert [link.occupied for link in m.network.links] == occupancy_before
        assert [res.index for res in m.free_resources()] == free_before
        assert m.severed_resources() == []

"""Tests for the gamma network (redundant paths, 3x3 switchboxes)."""

import numpy as np
import pytest

from repro.core import MRSIN, OptimalScheduler, Request
from repro.distributed import DistributedScheduler
from repro.networks import gamma
from repro.networks.routing import destination_tag_path, reachable_resources


class TestStructure:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_full_access(self, n):
        net = gamma(n)
        for p in range(n):
            assert reachable_resources(net, p) == frozenset(range(n))

    def test_stage_shapes(self):
        net = gamma(8)
        assert [len(s) for s in net.stages] == [8, 8, 8, 8]
        assert (net.box(0, 0).n_in, net.box(0, 0).n_out) == (1, 3)
        assert (net.box(1, 0).n_in, net.box(1, 0).n_out) == (3, 3)
        assert (net.box(3, 0).n_in, net.box(3, 0).n_out) == (3, 1)

    def test_redundant_path_counts(self):
        """Gamma path multiplicity equals the number of signed-digit
        representations of (dest - src) mod N with digits {-1,0,1} and
        place values 1, 2, 4 (N=8): distance 0 -> 1 way; distance 1 ->
        +1 | +2-1 | -4-2-1 | +4+... enumerated below."""
        net = gamma(8)

        def signed_reps(delta: int) -> int:
            count = 0
            for d0 in (-1, 0, 1):
                for d1 in (-1, 0, 1):
                    for d2 in (-1, 0, 1):
                        if (d0 + 2 * d1 + 4 * d2 - delta) % 8 == 0:
                            count += 1
            return count

        for src in range(8):
            for dst in range(8):
                expected = signed_reps((dst - src) % 8)
                assert net.count_paths(src, dst) == expected, (src, dst)

    def test_multipath_beats_unique_path_on_conflicts(self):
        """With redundancy, destination-tag routing can dodge an
        occupied straight link."""
        net = gamma(8)
        net.establish_circuit(destination_tag_path(net, 0, 1))
        # 1 -> 2 shares structure with 0 -> 1 in a unique-path network;
        # gamma finds an alternative.
        assert destination_tag_path(net, 1, 2) is not None


class TestScheduling:
    def test_optimal_full_allocation(self):
        m = MRSIN(gamma(8))
        for p in range(8):
            m.submit(Request(p))
        mapping = OptimalScheduler().schedule(m)
        assert len(mapping) == 8
        mapping.validate(m)
        m.apply_mapping(mapping)

    @pytest.mark.parametrize("seed", range(10))
    def test_distributed_matches_optimal_on_gamma(self, seed):
        """The token architecture is topology-independent: it must
        find the software optimum on 3x3-switch networks too."""
        rng = np.random.default_rng(seed)
        net = gamma(8)
        m = MRSIN(net)
        for link in net.links:
            if rng.random() < 0.2:
                link.occupied = True
        for r in range(8):
            if rng.random() < 0.25:
                m.resources[r].busy = True
        for p in range(8):
            if rng.random() < 0.8 and not net.processor_link(p).occupied:
                m.submit(Request(p))
        optimal = len(OptimalScheduler().schedule(m))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == optimal
        outcome.mapping.validate(m)

    def test_priority_scheduling_on_gamma(self):
        m = MRSIN(gamma(8), preferences=[1, 9, 1, 1, 5, 1, 1, 1])
        m.submit(Request(0, priority=5))
        mapping = OptimalScheduler().schedule(m)
        assert len(mapping) == 1
        assert mapping.assignments[0].resource.index == 1  # preferred


class TestDataManipulator:
    """The descending-stride member of the PM2I family."""

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_full_access(self, n):
        from repro.networks import data_manipulator

        net = data_manipulator(n)
        for p in range(n):
            assert reachable_resources(net, p) == frozenset(range(n))

    def test_same_path_multiplicity_as_gamma(self):
        """Stride order does not change the number of signed-digit
        representations, so path counts match the gamma's."""
        from repro.networks import data_manipulator

        g, dm = gamma(8), data_manipulator(8)
        for src in range(8):
            for dst in range(8):
                assert g.count_paths(src, dst) == dm.count_paths(src, dst)

    def test_wiring_differs_from_gamma(self):
        from repro.networks import data_manipulator

        g, dm = gamma(8), data_manipulator(8)
        g_dsts = [l.dst for l in g.links]
        dm_dsts = [l.dst for l in dm.links]
        assert g_dsts != dm_dsts  # genuinely different interstage wiring

    def test_distributed_equivalence(self):
        from repro.networks import data_manipulator

        m = MRSIN(data_manipulator(8))
        for p in range(8):
            m.submit(Request(p))
        optimal = len(OptimalScheduler().schedule(m))
        outcome = DistributedScheduler().schedule(m)
        assert len(outcome.mapping) == optimal == 8

"""Stateful property testing of circuit switching.

A hypothesis rule-based state machine drives a MultistageNetwork
through arbitrary interleavings of circuit establishment, release, and
path search, checking after every step that the physical invariants
hold:

- every switchbox remains an injective partial matching;
- the set of occupied links is exactly the union of active circuits'
  links (no leaks, no double-occupancy);
- `find_free_path` never returns occupied links or busy ports;
- a full `release_all` returns the network to pristine state.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.networks import benes, gamma, omega


class CircuitMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.net = None
        self.circuits = []

    @rule(kind=st.sampled_from(["omega", "benes", "gamma"]))
    @precondition(lambda self: self.net is None)
    def build(self, kind):
        self.net = {"omega": omega, "benes": benes, "gamma": gamma}[kind](8)
        self.circuits = []

    @rule(p=st.integers(0, 7), r=st.integers(0, 7))
    @precondition(lambda self: self.net is not None)
    def establish(self, p, r):
        path = self.net.find_free_path(p, r)
        if path is None:
            return
        # The path handed back must be entirely free right now.
        assert all(not link.occupied for link in path)
        circuit = self.net.establish_circuit(path)
        self.circuits.append(circuit)

    @rule(idx=st.integers(0, 30))
    @precondition(lambda self: self.net is not None and self.circuits)
    def release(self, idx):
        circuit = self.circuits.pop(idx % len(self.circuits))
        self.net.release_circuit(circuit)

    @rule()
    @precondition(lambda self: self.net is not None)
    def release_everything(self):
        self.net.release_all()
        self.circuits = []
        assert self.net.occupancy() == 0.0
        assert all(box.n_connected == 0 for box in self.net.boxes())

    @invariant()
    def switchboxes_are_matchings(self):
        if self.net is None:
            return
        for box in self.net.boxes():
            conn = box.connections
            assert len(set(conn.values())) == len(conn)

    @invariant()
    def occupancy_equals_circuit_links(self):
        if self.net is None:
            return
        from_circuits = set()
        for c in self.net.circuits:
            for link in c.links:
                assert link.index not in from_circuits, "link shared by circuits"
                from_circuits.add(link.index)
        occupied = {l.index for l in self.net.links if l.occupied}
        assert occupied == from_circuits

    @invariant()
    def circuit_count_consistent(self):
        if self.net is None:
            return
        assert len(self.net.circuits) == len(self.circuits)


TestCircuitMachine = CircuitMachine.TestCase
TestCircuitMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)

"""Permutation routing: rearrangeability via multicommodity flow.

The paper's background: the Beneš network is rearrangeable (any
permutation realisable), the Omega is not.  We verify both facts with
our own machinery by casting "realise permutation σ" as an integral
multicommodity flow problem — one commodity per (p, σ(p)) pair with
demand 1 over the unit-capacity link graph — which doubles as a
cross-subsystem test of the LP/branch-and-bound stack on genuinely
hard routing instances.
"""

import numpy as np
import pytest

from repro.core import MRSIN, TransformedProblem
from repro.core.transform import _add_structure_arcs  # type: ignore[attr-defined]
from repro.flows.graph import FlowNetwork
from repro.flows.lp import LPStatus
from repro.flows.multicommodity import (
    Commodity,
    MultiCommodityProblem,
    solve_integral_multicommodity,
)
from repro.networks import benes, omega


def permutation_problem(net_builder, permutation) -> MultiCommodityProblem:
    """One unit commodity per (p, sigma(p)) pair over the link graph."""
    mrsin = MRSIN(net_builder(len(permutation)))
    net = FlowNetwork()
    problem = TransformedProblem(net=net, source="s", sink="t")
    _add_structure_arcs(net, mrsin, problem)
    commodities = []
    for p, r in enumerate(permutation):
        src, dst = ("src", p), ("dst", r)
        net.add_arc(src, ("p", p), capacity=1)
        net.add_arc(("r", r), dst, capacity=1)
        commodities.append(Commodity((p, r), src, dst))
    return MultiCommodityProblem(net, commodities)


def routable(net_builder, permutation) -> bool:
    problem = permutation_problem(net_builder, permutation)
    result = solve_integral_multicommodity(problem, max_nodes=4000)
    if result.status is not LPStatus.OPTIMAL:
        return False
    return result.total_flow >= len(permutation) - 1e-6


class TestBenesRearrangeability:
    def test_identity_8(self):
        assert routable(benes, list(range(8)))

    def test_reversal(self):
        assert routable(benes, list(reversed(range(4))))

    @pytest.mark.parametrize("seed", range(3))
    def test_random_permutations(self, seed):
        rng = np.random.default_rng(seed)
        perm = list(rng.permutation(4))
        assert routable(benes, [int(x) for x in perm])

    def test_every_permutation_of_4(self):
        """Full rearrangeability at N=4: all 24 permutations route."""
        from itertools import permutations as iter_perms

        for perm in iter_perms(range(4)):
            assert routable(benes, list(perm)), perm


class TestOmegaBlocking:
    def test_identity_routable(self):
        assert routable(omega, list(range(4)))

    def test_some_permutation_blocks(self):
        """The Omega passes only N^(N/2)-ish of the N! permutations;
        a blocking one exists among the 4! permutations of omega(4)."""
        from itertools import permutations as iter_perms

        blocked = [
            perm for perm in iter_perms(range(4)) if not routable(omega, list(perm))
        ]
        assert blocked, "omega(4) must block at least one permutation"
        # Known property: omega passes exactly N^(N/2) = 16 of 24.
        assert len(blocked) == 24 - 16

"""Unit and property tests for the interstage wiring permutations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks.permutations import (
    bit_reversal,
    blockwise,
    butterfly,
    identity,
    inverse_shuffle,
    log2_exact,
    perfect_shuffle,
    transpose,
)

SIZES = [2, 4, 8, 16, 32]


class TestLog2Exact:
    @pytest.mark.parametrize("size,expected", [(1, 0), (2, 1), (8, 3), (1024, 10)])
    def test_powers(self, size, expected):
        assert log2_exact(size) == expected

    @pytest.mark.parametrize("size", [0, -4, 3, 6, 12])
    def test_non_powers_rejected(self, size):
        with pytest.raises(ValueError):
            log2_exact(size)


class TestShuffles:
    def test_shuffle_known_values(self):
        # N=8: sigma interleaves halves: 0->0, 1->2, 2->4, 3->6, 4->1 ...
        assert [perfect_shuffle(i, 8) for i in range(8)] == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_unshuffle_known_values(self):
        assert [inverse_shuffle(i, 8) for i in range(8)] == [0, 4, 1, 5, 2, 6, 3, 7]

    @pytest.mark.parametrize("size", SIZES)
    def test_inverse_relationship(self, size):
        for i in range(size):
            assert inverse_shuffle(perfect_shuffle(i, size), size) == i
            assert perfect_shuffle(inverse_shuffle(i, size), size) == i

    @pytest.mark.parametrize("size", SIZES)
    def test_shuffle_is_doubling_mod_n_minus_1(self, size):
        for i in range(1, size - 1):
            assert perfect_shuffle(i, size) == (2 * i) % (size - 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            perfect_shuffle(8, 8)


class TestButterfly:
    def test_bit0_is_identity(self):
        assert [butterfly(i, 8, 0) for i in range(8)] == list(range(8))

    def test_swaps_bits(self):
        # k=2 on N=8: swap bit 2 and bit 0: 1 (001) <-> 4 (100).
        assert butterfly(1, 8, 2) == 4
        assert butterfly(4, 8, 2) == 1
        assert butterfly(5, 8, 2) == 5  # 101 symmetric

    @pytest.mark.parametrize("size", SIZES)
    def test_involution(self, size):
        n = log2_exact(size)
        for k in range(n):
            for i in range(size):
                assert butterfly(butterfly(i, size, k), size, k) == i

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            butterfly(0, 8, 3)


class TestBitReversal:
    def test_known_values(self):
        assert [bit_reversal(i, 8) for i in range(8)] == [0, 4, 2, 6, 1, 5, 3, 7]

    @pytest.mark.parametrize("size", SIZES)
    def test_involution(self, size):
        for i in range(size):
            assert bit_reversal(bit_reversal(i, size), size) == i


class TestBlockwise:
    def test_applies_within_blocks(self):
        f = blockwise(perfect_shuffle, 4)
        assert [f(i, 8) for i in range(8)] == [0, 2, 1, 3, 4, 6, 5, 7]

    def test_size_must_be_multiple(self):
        f = blockwise(identity, 4)
        with pytest.raises(ValueError):
            f(0, 6)


class TestTranspose:
    def test_known_values(self):
        f = transpose(2, 3)
        # (r, c) -> c * 2 + r
        assert [f(i, 6) for i in range(6)] == [0, 2, 4, 1, 3, 5]

    def test_round_trip(self):
        fwd = transpose(3, 4)
        back = transpose(4, 3)
        for i in range(12):
            assert back(fwd(i, 12), 12) == i

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            transpose(2, 3)(0, 7)


@given(size_log=st.integers(1, 6), k=st.integers(0, 5))
@settings(max_examples=50, deadline=None)
def test_property_all_wirings_are_bijections(size_log, k):
    """Property: every wiring function permutes [0, N) bijectively."""
    size = 1 << size_log
    fns = [
        lambda i: identity(i, size),
        lambda i: perfect_shuffle(i, size),
        lambda i: inverse_shuffle(i, size),
        lambda i: bit_reversal(i, size),
    ]
    if k < size_log:
        fns.append(lambda i: butterfly(i, size, k))
    for fn in fns:
        image = {fn(i) for i in range(size)}
        assert image == set(range(size))

"""Tests for destination-tag (address-mapped) routing."""

import pytest

from repro.networks import baseline, benes, crossbar, omega
from repro.networks.routing import (
    clear_reachability_cache,
    destination_tag_path,
    reachable_resources,
)


class TestDestinationTag:
    def test_routes_everywhere_on_free_omega(self):
        net = omega(8)
        for p in range(8):
            for r in range(8):
                path = destination_tag_path(net, p, r)
                assert path is not None
                assert path[0].src.box == p
                assert path[-1].dst.box == r

    def test_path_is_establishable(self):
        net = omega(8)
        path = destination_tag_path(net, 2, 6)
        circuit = net.establish_circuit(path)
        assert (circuit.processor, circuit.resource) == (2, 6)

    def test_respects_occupancy(self):
        net = omega(8)
        net.establish_circuit(destination_tag_path(net, 0, 0))
        # Processor 0's own link is now occupied.
        assert destination_tag_path(net, 0, 1) is None

    def test_blocked_by_internal_conflict(self):
        """On a unique-path network, two circuits sharing an internal
        link cannot coexist; routing must report a block."""
        net = omega(8)
        blocked = 0
        routed = 0
        for p in range(8):
            path = destination_tag_path(net, p, p)
            if path is None:
                blocked += 1
            else:
                net.establish_circuit(path)
                routed += 1
        assert routed + blocked == 8
        assert routed >= 1

    def test_multipath_fallback_on_benes(self):
        """Benes offers alternatives: after one circuit, other pairs
        can usually still route by taking another middle path."""
        net = benes(8)
        net.establish_circuit(destination_tag_path(net, 0, 0))
        success = sum(
            destination_tag_path(net, p, p) is not None for p in range(1, 8)
        )
        assert success == 7  # Benes is rearrangeable; identity routes greedily

    def test_crossbar_never_blocks_free_pairs(self):
        net = crossbar(4, 4)
        net.establish_circuit(destination_tag_path(net, 0, 3))
        for p in range(1, 4):
            assert destination_tag_path(net, p, p - 1) is not None


class TestReachability:
    def test_reachable_resources_full_access(self):
        net = baseline(16)
        for p in range(16):
            assert reachable_resources(net, p) == frozenset(range(16))

    def test_cache_survives_occupancy(self):
        net = omega(8)
        before = reachable_resources(net, 0)
        net.establish_circuit(net.find_free_path(0, 0))
        # Structural reachability ignores occupancy by design.
        assert reachable_resources(net, 0) == before

    def test_cache_clear(self):
        net = omega(8)
        reachable_resources(net, 0)
        assert "_reach_table" in net.__dict__
        clear_reachability_cache(net)
        assert "_reach_table" not in net.__dict__

"""Unit tests for the non-broadcast switchbox."""

import pytest

from repro.networks.switchbox import Switchbox


class TestConnections:
    def test_connect_and_query(self):
        box = Switchbox(0, 0, 2, 2)
        box.connect(0, 1)
        assert box.output_for(0) == 1
        assert box.input_for(1) == 0
        assert not box.input_free(0)
        assert not box.output_free(1)
        assert box.input_free(1)
        assert box.output_free(0)

    def test_non_broadcast_input(self):
        box = Switchbox(0, 0, 2, 2)
        box.connect(0, 0)
        with pytest.raises(ValueError, match="non-broadcast"):
            box.connect(0, 1)

    def test_non_broadcast_output(self):
        box = Switchbox(0, 0, 2, 2)
        box.connect(0, 0)
        with pytest.raises(ValueError, match="non-broadcast"):
            box.connect(1, 0)

    def test_disconnect(self):
        box = Switchbox(0, 0, 2, 2)
        box.connect(0, 1)
        box.disconnect(0)
        assert box.input_free(0) and box.output_free(1)
        with pytest.raises(ValueError, match="not connected"):
            box.disconnect(0)

    def test_reset(self):
        box = Switchbox(0, 0, 2, 2)
        box.connect(0, 1)
        box.connect(1, 0)
        box.reset()
        assert box.n_connected == 0

    def test_port_bounds(self):
        box = Switchbox(0, 0, 2, 3)
        with pytest.raises(ValueError):
            box.connect(2, 0)
        with pytest.raises(ValueError):
            box.connect(0, 3)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            Switchbox(0, 0, 0, 2)


class TestNamedSettings:
    def test_straight_and_exchange(self):
        box = Switchbox(0, 0, 2, 2)
        box.connect(0, 0)
        box.connect(1, 1)
        assert box.is_straight and not box.is_exchange
        box.reset()
        box.connect(0, 1)
        box.connect(1, 0)
        assert box.is_exchange and not box.is_straight

    def test_non_2x2_never_straight(self):
        box = Switchbox(0, 0, 3, 3)
        box.connect(0, 0)
        box.connect(1, 1)
        assert not box.is_straight


class TestLegalSettings:
    def test_2x2_has_two_complete_settings(self):
        box = Switchbox(0, 0, 2, 2)
        settings = list(box.legal_settings())
        assert {frozenset(s.items()) for s in settings} == {
            frozenset({(0, 0), (1, 1)}),
            frozenset({(0, 1), (1, 0)}),
        }

    def test_rectangular_counts(self):
        # 2x3: inject 2 inputs into 3 outputs: 3P2 = 6 settings.
        assert len(list(Switchbox(0, 0, 2, 3).legal_settings())) == 6
        # 3x2: choose which 2 inputs map onto the 2 outputs: 3P2 = 6.
        assert len(list(Switchbox(0, 0, 3, 2).legal_settings())) == 6

    def test_settings_are_injective_matchings(self):
        box = Switchbox(0, 0, 3, 3)
        for setting in box.legal_settings():
            assert len(set(setting.values())) == len(setting)
            box.reset()
            for i, o in setting.items():
                box.connect(i, o)  # must never raise

"""Tests for the generic MultistageNetwork model and circuit switching."""

import pytest

from repro.networks.omega import omega
from repro.networks.crossbar import crossbar
from repro.networks.permutations import identity
from repro.networks.topology import MultistageNetwork, PortRef, assemble


def tiny() -> MultistageNetwork:
    """A 2x2 single-box network."""
    return assemble("tiny", 2, 2, [[(2, 2)]], [identity, identity])


class TestAssembly:
    def test_counts(self):
        net = omega(8)
        assert net.n_stages == 3
        assert len(net.stages[0]) == 4
        # 8 proc links + 2*8 interstage + 8 resource links.
        assert len(net.links) == 32

    def test_boundary_count_enforced(self):
        with pytest.raises(ValueError, match="boundaries"):
            assemble("bad", 2, 2, [[(2, 2)]], [identity])

    def test_wire_count_mismatch_detected(self):
        with pytest.raises(ValueError, match="source wires"):
            assemble("bad", 4, 2, [[(2, 2)]], [identity, identity])

    def test_every_port_wired_once(self):
        net = omega(8)
        srcs = [link.src for link in net.links]
        dsts = [link.dst for link in net.links]
        assert len(set(srcs)) == len(srcs)
        assert len(set(dsts)) == len(dsts)

    def test_duplicate_wiring_rejected(self):
        net = MultistageNetwork("x", 1, 1)
        net.add_stage([(1, 1)])
        net.add_link(PortRef.processor(0), PortRef.box_in(0, 0, 0))
        with pytest.raises(ValueError, match="already wired"):
            net.add_link(PortRef.processor(0), PortRef.box_in(0, 0, 0))

    def test_terminal_links(self):
        net = omega(8)
        for p in range(8):
            assert net.processor_link(p).src == PortRef.processor(p)
        for r in range(8):
            assert net.resource_link(r).dst == PortRef.resource(r)


class TestCircuits:
    def test_establish_sets_switches_and_occupancy(self):
        net = tiny()
        path = net.find_free_path(0, 1)
        assert path is not None
        circuit = net.establish_circuit(path)
        assert circuit.processor == 0 and circuit.resource == 1
        assert all(link.occupied for link in path)
        assert net.box(0, 0).output_for(0) == 1

    def test_conflicting_circuit_rejected(self):
        net = tiny()
        net.establish_circuit(net.find_free_path(0, 1))
        # Processor 1 can still reach resource 0 ...
        path = net.find_free_path(1, 0)
        assert path is not None
        net.establish_circuit(path)
        # ... but nothing else remains.
        assert net.find_free_path(0, 0) is None

    def test_occupied_link_rejected(self):
        net = tiny()
        path = net.find_free_path(0, 0)
        net.establish_circuit(path)
        with pytest.raises(ValueError, match="occupied"):
            net.establish_circuit(path)

    def test_busy_switch_port_rejected(self):
        net = crossbar(2, 2)
        p0 = net.find_free_path(0, 0)
        net.establish_circuit(p0)
        # Hand-build the illegal path 1 -> 0 after clearing occupancy
        # flags but not the switch: the port check must still fire.
        path = [net.processor_link(1), net.resource_link(0)]
        with pytest.raises(ValueError, match="busy|occupied"):
            net.establish_circuit(path)

    def test_release_restores_state(self):
        net = tiny()
        circuit = net.establish_circuit(net.find_free_path(0, 1))
        net.release_circuit(circuit)
        assert net.occupancy() == 0.0
        assert net.box(0, 0).n_connected == 0
        assert net.find_free_path(0, 1) is not None

    def test_release_unknown_circuit(self):
        net = tiny()
        circuit = net.establish_circuit(net.find_free_path(0, 1))
        net.release_circuit(circuit)
        with pytest.raises(ValueError):
            net.release_circuit(circuit)

    def test_release_all(self):
        net = omega(8)
        net.establish_circuit(net.find_free_path(0, 3))
        net.establish_circuit(net.find_free_path(1, 5))
        net.release_all()
        assert net.occupancy() == 0.0
        assert net.circuits == []

    def test_path_validation_rejects_garbage(self):
        net = omega(8)
        with pytest.raises(ValueError, match="empty"):
            net.establish_circuit([])
        with pytest.raises(ValueError, match="start at a processor"):
            net.establish_circuit([net.resource_link(0)])
        # Two links that do not meet at a box.
        with pytest.raises(ValueError):
            net.establish_circuit([net.processor_link(0), net.resource_link(0)])


class TestPathSearch:
    def test_full_access_when_free(self):
        net = omega(8)
        for p in range(8):
            for r in range(8):
                assert net.find_free_path(p, r) is not None

    def test_blocked_when_processor_link_used(self):
        net = omega(8)
        net.establish_circuit(net.find_free_path(0, 0))
        assert net.find_free_path(0, 1) is None

    def test_unique_path_count_in_omega(self):
        net = omega(8)
        for p in range(8):
            for r in range(8):
                assert net.count_paths(p, r) == 1

    def test_occupancy_metric(self):
        net = tiny()
        assert net.occupancy() == 0.0
        net.establish_circuit(net.find_free_path(0, 0))
        assert net.occupancy() == pytest.approx(2 / 4)

    def test_paper_fig2_blocking_example(self):
        """Fig. 2(a): with p2->r6 and p4->r4 circuits up, the mapping
        {(p1,r1),(p3,r5),(p5,r3),(p7,r7)} blocks p8 from r8, while an
        optimal mapping serves all five requesters.  Here we verify the
        structural fact that established circuits can block a later
        request in an Omega network."""
        net = omega(8)
        blocked_somewhere = False
        # Occupy two circuits, then check some pair became unreachable.
        net.establish_circuit(net.find_free_path(1, 5))
        net.establish_circuit(net.find_free_path(3, 3))
        for p in (0, 2, 4, 6, 7):
            for r in (0, 2, 4, 6, 7):
                if net.find_free_path(p, r) is None:
                    blocked_somewhere = True
        assert blocked_somewhere

"""Cross-topology structural tests: every builder, every invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.networks import (
    baseline,
    benes,
    clos,
    crossbar,
    cube,
    delta,
    extra_stage_omega,
    flip,
    omega,
)
from repro.networks.routing import reachable_resources

SQUARE_BUILDERS = [omega, flip, cube, delta, baseline, benes]


@pytest.mark.parametrize("builder", SQUARE_BUILDERS)
@pytest.mark.parametrize("n", [2, 4, 8, 16])
class TestSquareTopologies:
    def test_full_access(self, builder, n):
        """Every processor reaches every resource in a free network."""
        net = builder(n)
        for p in range(n):
            assert reachable_resources(net, p) == frozenset(range(n))

    def test_shapes(self, builder, n):
        net = builder(n)
        assert net.n_processors == n and net.n_resources == n
        for box in net.boxes():
            assert (box.n_in, box.n_out) == (2, 2)

    def test_find_path_everywhere(self, builder, n):
        net = builder(n)
        for p in range(n):
            path = net.find_free_path(p, (p + 1) % n)
            assert path is not None
            assert len(path) == net.n_stages + 1


@pytest.mark.parametrize("builder", [omega, flip, cube, delta, baseline])
def test_unique_path_networks(builder):
    """The log-stage networks have exactly one path per (p, r) pair."""
    net = builder(8)
    assert net.n_stages == 3
    for p in range(8):
        for r in range(8):
            assert net.count_paths(p, r) == 1


def test_benes_path_multiplicity():
    """Benes(N) has 2^(log N - 1) = N/2 paths per pair."""
    net = benes(8)
    assert net.n_stages == 5
    for p in range(8):
        for r in range(8):
            assert net.count_paths(p, r) == 4


def test_extra_stage_doubles_paths():
    for extra in (0, 1, 2):
        net = extra_stage_omega(8, extra)
        assert net.n_stages == 3 + extra
        assert net.count_paths(0, 5) == 2 ** extra
    with pytest.raises(ValueError):
        extra_stage_omega(8, -1)


class TestClos:
    def test_shapes(self):
        net = clos(m=3, n=2, r=4)
        assert net.n_processors == 8 and net.n_resources == 8
        assert [len(stage) for stage in net.stages] == [4, 3, 4]
        assert (net.box(0, 0).n_in, net.box(0, 0).n_out) == (2, 3)
        assert (net.box(1, 0).n_in, net.box(1, 0).n_out) == (4, 4)
        assert (net.box(2, 0).n_in, net.box(2, 0).n_out) == (3, 2)

    def test_full_access(self):
        net = clos(m=2, n=2, r=3)
        for p in range(6):
            assert reachable_resources(net, p) == frozenset(range(6))

    def test_path_count_equals_middle_boxes(self):
        net = clos(m=3, n=2, r=2)
        for p in range(4):
            for r in range(4):
                assert net.count_paths(p, r) == 3

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            clos(0, 2, 2)


class TestCrossbar:
    def test_rectangular(self):
        net = crossbar(3, 5)
        assert net.n_processors == 3 and net.n_resources == 5
        for p in range(3):
            assert reachable_resources(net, p) == frozenset(range(5))

    def test_square_default(self):
        net = crossbar(4)
        assert net.n_resources == 4

    def test_nonblocking(self):
        """Any free processor can reach any free resource regardless of
        existing circuits — the crossbar control case."""
        net = crossbar(4, 4)
        net.establish_circuit(net.find_free_path(0, 1))
        net.establish_circuit(net.find_free_path(1, 0))
        for p in (2, 3):
            for r in (2, 3):
                assert net.find_free_path(p, r) is not None

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            crossbar(0)


@given(
    builder=st.sampled_from(SQUARE_BUILDERS),
    n_log=st.integers(1, 4),
    pairs=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=8),
)
@settings(max_examples=40, deadline=None)
def test_property_circuits_never_violate_switch_invariants(builder, n_log, pairs):
    """Property: establishing any sequence of free paths keeps every
    switchbox a partial matching, and releasing everything restores a
    pristine network."""
    n = 1 << n_log
    net = builder(n)
    established = 0
    for p, r in pairs:
        path = net.find_free_path(p % n, r % n)
        if path is None:
            continue
        net.establish_circuit(path)
        established += 1
    for box in net.boxes():
        conn = box.connections
        assert len(set(conn.values())) == len(conn)
    assert len(net.circuits) == established
    net.release_all()
    assert net.occupancy() == 0.0
    assert all(box.n_connected == 0 for box in net.boxes())

"""Tests for the command-line interface and the ASCII renderer."""

import pytest

from repro.cli import TOPOLOGIES, build_parser, main
from repro.core import MRSIN, OptimalScheduler, Request
from repro.networks import omega
from repro.networks.render import render_circuits, render_network


class TestRenderer:
    def test_free_network_render(self):
        net = omega(4)
        text = render_network(net)
        assert text.count("\n") == 3  # one row per processor
        assert "p0" in text and "r0" in text
        assert "==>" not in text  # nothing occupied

    def test_occupied_links_marked(self):
        net = omega(4)
        net.establish_circuit(net.find_free_path(0, 0))
        text = render_network(net, busy_resources={0})
        assert "==>" in text
        assert "*busy*" in text

    def test_box_connections_shown(self):
        net = omega(4)
        net.establish_circuit(net.find_free_path(1, 2))
        text = render_network(net)
        assert "-" in text  # an a-b connection glyph somewhere

    def test_render_circuits(self):
        net = omega(4)
        assert render_circuits(net) == "(no circuits established)"
        net.establish_circuit(net.find_free_path(2, 3))
        out = render_circuits(net)
        assert out.startswith("p2 -> links[")
        assert out.endswith("-> r3")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_topology_registry_all_build(self):
        for name, builder in TOPOLOGIES.items():
            net = builder(8)
            assert net.n_processors == 8, name

    def test_unknown_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--network", "hypercube9"])


class TestCommands:
    def test_schedule(self, capsys):
        assert main(["schedule", "--network", "omega", "--ports", "8"]) == 0
        out = capsys.readouterr().out
        assert "optimal allocated 8" in out

    def test_schedule_render(self, capsys):
        assert main(["schedule", "--render", "--request-density", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "p0" in out

    @pytest.mark.parametrize("policy", ["distributed", "greedy", "random_binding", "arbitrary"])
    def test_schedule_policies(self, capsys, policy):
        assert main(["schedule", "--policy", policy, "--ports", "4"]) == 0
        assert f"{policy} allocated" in capsys.readouterr().out

    def test_blocking(self, capsys):
        assert main(["blocking", "--policy", "optimal", "--trials", "5"]) == 0
        assert "P(block)" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main([
            "sweep", "--trials", "5", "--densities", "0.5", "1.0",
            "--policies", "optimal", "random_binding",
        ]) == 0
        out = capsys.readouterr().out
        assert "d=0.5" in out and "d=1" in out

    def test_queueing(self, capsys):
        assert main(["queueing", "--rate", "0.3", "--horizon", "50"]) == 0
        out = capsys.readouterr().out
        assert "resource utilization" in out

    def test_tokens(self, capsys):
        assert main(["tokens", "--ports", "4", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "request-token-propagation" in out
        assert "clk" in out

    def test_chaos(self, capsys):
        assert main([
            "chaos", "--network", "omega", "--ports", "8",
            "--ticks", "60", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "invariants" in out and "all held" in out
        assert "faults_injected" in out

    def test_chaos_deterministic_output(self, capsys):
        argv = ["chaos", "--ports", "8", "--ticks", "40", "--seed", "6"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_chaos_rejects_bad_ticks(self):
        with pytest.raises(SystemExit, match="ticks"):
            main(["chaos", "--ticks", "0"])

    def test_lint_real_tree_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_reports_findings_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(x):\n    assert x\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "bad.py:2" in out

    def test_lint_json_format(self, tmp_path, capsys):
        import json

        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\n")
        assert main(["lint", "--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["findings"] == 1
        assert doc["findings"][0]["rule"] == "R002"

    def test_lint_stats_summary(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import random\n"
            "def f(x):\n"
            "    assert x  # repro: noqa R001 -- CLI stats fixture\n"
        )
        assert main(["lint", "--stats", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R002: 1" in out
        assert "R001 (suppressed): 1" in out
        assert "1 suppressed" in out

    def test_lint_select_subset(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\ndef f(x):\n    assert x\n")
        assert main(["lint", "--select", "R002", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R002" in out and "R001" not in out

    def test_lint_unknown_rule_rejected(self):
        with pytest.raises(SystemExit, match="unknown rule"):
            main(["lint", "--select", "R999"])

    def test_lint_missing_path_rejected(self):
        with pytest.raises(SystemExit, match="no such file"):
            main(["lint", "/no/such/path/at/all"])

    def test_typecheck_gated(self, capsys):
        """Exit 0/1/2 with mypy installed, EXIT_UNAVAILABLE without."""
        from repro.analysis.typing_gate import EXIT_UNAVAILABLE, mypy_available

        code = main(["typecheck"])
        if mypy_available():
            assert code in (0, 1, 2)
        else:
            assert code == EXIT_UNAVAILABLE
            assert "mypy" in capsys.readouterr().out

    def test_serve_faulted_service_exits_nonzero(self, monkeypatch):
        """A faulted run must surface as a one-line diagnostic and a
        nonzero exit, not a metrics table from a broken service."""
        import repro.service.driver as driver
        from repro.service.server import ServiceFaulted

        def faulted_run(*args, **kwargs):
            failure = ServiceFaulted("service faulted during run")
            failure.__cause__ = RuntimeError("solver exploded")
            raise failure

        monkeypatch.setattr(driver, "run_service", faulted_run)
        with pytest.raises(SystemExit, match="service faulted"):
            main(["serve", "--horizon", "5"])


class TestServeJson:
    def test_serve_json_emits_one_object(self, capsys):
        assert main([
            "serve", "--horizon", "30", "--seed", "3", "--rate", "0.5", "--json",
        ]) == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["allocated"] > 0
        assert "wait_histogram" in doc
        assert set(doc["wait_percentiles"]) == {"p50", "p90", "p99", "p999"}

    def test_serve_json_matches_table_run(self, capsys):
        """--json and the table view come from the same snapshot."""
        import json

        argv = ["serve", "--horizon", "30", "--seed", "3", "--rate", "0.5"]
        assert main(argv + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        table = capsys.readouterr().out
        assert "allocated" in table
        assert str(doc["allocated"]) in table


class TestWireCommands:
    def test_wire_serve_and_loadgen_end_to_end(self, capsys):
        """Both halves of the two-terminal quickstart, in one process:
        wire-serve on a real port in a thread, loadgen against it."""
        import json
        import socket
        import threading
        import time

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        server_rc = []
        server = threading.Thread(
            target=lambda: server_rc.append(main([
                "wire-serve", "--network", "omega", "--ports", "8",
                "--port", str(port), "--tick", "0.005",
                "--duration", "1.5", "--fault-rate", "2.0", "--seed", "11",
                "--json",
            ]))
        )
        server.start()
        try:
            time.sleep(0.4)  # let the server bind and print its address
            rc = main([
                "loadgen", "--port", str(port), "--rate", "150",
                "--duration", "0.5", "--processors", "8",
                "--seed", "5", "--connections", "2", "--json",
            ])
        finally:
            server.join(timeout=10)
        assert rc == 0
        assert server_rc == [0]
        out = capsys.readouterr().out
        assert "listening on" in out
        documents = [json.loads(l) for l in out.splitlines() if l.startswith("{")]
        assert len(documents) == 2
        loadgen_doc = next(d for d in documents if "throughput_per_sec" in d)
        serve_doc = next(d for d in documents if "wire" in d)
        assert loadgen_doc["completed"] > 0
        assert loadgen_doc["errors"] == 0
        assert set(loadgen_doc["latency_ms"]) == {"p50", "p90", "p99", "p999"}
        assert serve_doc["wire"]["protocol_errors"] == 0
        assert serve_doc["wire"]["leases_granted"] >= loadgen_doc["completed"]
        assert serve_doc["active_leases"] == 0

    def test_loadgen_unreachable_server_is_clear_error(self):
        with pytest.raises(SystemExit, match="cannot reach"):
            main([
                "loadgen", "--port", "1", "--rate", "10",
                "--duration", "0.1", "--processors", "4",
            ])

    def test_loadgen_rejects_bad_config(self):
        with pytest.raises(SystemExit, match="rate"):
            main(["loadgen", "--port", "1", "--rate", "0"])

    def test_wire_serve_rejects_bad_config(self):
        with pytest.raises(SystemExit, match="tick_interval"):
            main(["wire-serve", "--tick", "0", "--duration", "0.1"])


def test_scheduler_handles_rendered_instance():
    """Rendering must not disturb scheduling state."""
    m = MRSIN(omega(8))
    m.submit(Request(0))
    render_network(m.network)
    mapping = OptimalScheduler().schedule(m)
    assert len(mapping) == 1


def test_report_command(capsys):
    assert main(["report", "--trials", "10"]) == 0
    out = capsys.readouterr().out
    assert "reproduction snapshot" in out
    assert "heuristic blocking" in out
    assert "instances agree" in out


class TestRendererAcrossTopologies:
    @pytest.mark.parametrize("builder_name", ["gamma", "clos", "benes", "crossbar"])
    def test_render_handles_rectangular_boxes(self, builder_name):
        net = TOPOLOGIES[builder_name](8)
        text = render_network(net)
        assert text.count("\n") == net.n_processors - 1
        # Establish something and re-render.
        path = net.find_free_path(0, 3)
        net.establish_circuit(path)
        text2 = render_network(net, busy_resources={3})
        assert "==>" in text2 and "*busy*" in text2
